//! `spg` — command-line interface for the coarsening-partitioning
//! allocator: generate datasets, train models, allocate graphs, evaluate
//! methods, and inspect training telemetry.
//!
//! ```text
//! spg generate --setting medium --count 20 --seed 1 --out ds.json
//! spg train    --dataset ds.json --epochs 10 --metrics run.jsonl --out model.json
//! spg evaluate --dataset ds.json --model model.json
//! spg allocate --dataset ds.json --model model.json --index 0
//! spg report   run.jsonl
//! ```
//!
//! Argument parsing lives in [`spg::cli`]; this file only maps parsed
//! commands onto the library.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::cli::{
    AllocateArgs, BenchMatmulArgs, BenchServeArgs, CliError, Command, EvaluateArgs, GenerateArgs,
    ReallocArgs, ReportArgs, ServeArgs, TrainArgs,
};
use spg::eval::evaluate_allocator;
use spg::gen::DatasetSpec;
use spg::graph::serialize::{Dataset, DatasetError};
use spg::graph::Allocator;
use spg::model::checkpoint::Checkpoint;
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::obs::{Summary, TelemetrySink};
use spg::partition::MetisAllocator;
use spg::sim::inject;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match Command::parse(&args) {
        Ok(cmd) => cmd,
        Err(CliError::Help(text)) => {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
        Err(CliError::Usage(text)) => {
            eprintln!("{text}");
            return ExitCode::from(2);
        }
    };
    match cmd {
        Command::Generate(args) => generate(args),
        Command::Train(args) => train(args),
        Command::Evaluate(args) => evaluate(args),
        Command::Allocate(args) => allocate(args),
        Command::Report(args) => report(args),
        Command::Serve(args) => serve(args),
        Command::Realloc(args) => realloc(args),
        Command::BenchServe(args) => bench_serve(args),
        Command::BenchMatmul(args) => bench_matmul(args),
    }
}

fn load_dataset(path: &Path) -> Result<Dataset, ExitCode> {
    Dataset::load(path).map_err(|e| {
        match &e {
            // Io/Parse messages already name the offending path.
            DatasetError::Io { .. } | DatasetError::Parse { .. } => eprintln!("{e}"),
            _ => eprintln!("{}: {e}", path.display()),
        }
        ExitCode::FAILURE
    })
}

fn load_checkpoint(path: &Path) -> Result<Checkpoint, ExitCode> {
    Checkpoint::load(path).map_err(|e| {
        eprintln!("failed to read {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

fn generate(args: GenerateArgs) -> ExitCode {
    let spec = if args.scaled {
        DatasetSpec::scaled_down(args.setting)
    } else {
        DatasetSpec::for_setting(args.setting)
    };
    let ds = spg::gen::generate_dataset(&spec, args.count, args.seed);
    if let Err(e) = ds.save(&args.out) {
        eprintln!("failed to write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} graphs ({}-{} nodes, {} devices, {}/s) to {}",
        args.count,
        spec.growth.node_range.0,
        spec.growth.node_range.1,
        spec.devices,
        spec.source_rate,
        args.out.display()
    );
    ExitCode::SUCCESS
}

/// Arm the process-global fault injector from the `--inject-*` rate
/// flags. The returned guard keeps it armed for the duration of training.
fn arm_injector(args: &TrainArgs) -> Option<inject::ArmedGuard> {
    if args.inject_nan_rewards <= 0.0 && args.inject_worker_panics <= 0.0 {
        return None;
    }
    let mut plan = inject::FaultInjector::new(args.seed);
    if args.inject_nan_rewards > 0.0 {
        plan = plan.rate(
            inject::Site::Rollout,
            inject::Fault::NanReward,
            args.inject_nan_rewards,
        );
    }
    if args.inject_worker_panics > 0.0 {
        plan = plan.rate(
            inject::Site::Rollout,
            inject::Fault::WorkerPanic,
            args.inject_worker_panics,
        );
    }
    Some(inject::armed(plan))
}

/// Arm the process-global fault injector from the `spg serve --inject-*`
/// rate flags. The returned guard keeps it armed while the server runs.
fn arm_serve_injector(args: &ServeArgs) -> Option<inject::ArmedGuard> {
    use inject::{Fault, Site};
    let rates = [
        (
            Site::ReplicaWork,
            Fault::WorkerPanic,
            args.inject_replica_panics,
        ),
        (Site::ReplicaWork, Fault::Kill, args.inject_replica_kills),
        (Site::ReplicaWork, Fault::Stall, args.inject_replica_stalls),
        (Site::ConnWrite, Fault::ConnDrop, args.inject_conn_drops),
        (Site::ConnWrite, Fault::TornWrite, args.inject_torn_writes),
    ];
    if rates.iter().all(|&(_, _, p)| p <= 0.0) {
        return None;
    }
    let mut plan = inject::FaultInjector::new(args.seed);
    for &(site, fault, p) in &rates {
        if p > 0.0 {
            plan = plan.rate(site, fault, p);
        }
    }
    Some(inject::armed(plan))
}

fn train(args: TrainArgs) -> ExitCode {
    let ds = match load_dataset(&args.dataset) {
        Ok(ds) => ds,
        Err(code) => return code,
    };
    let sink = match &args.metrics {
        Some(path) => match TelemetrySink::jsonl_file(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("failed to open {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => TelemetrySink::disabled(),
    };
    let _inject_guard = arm_injector(&args);
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut options = TrainOptions::new()
        .metis_guided(args.guide)
        .seed(args.seed)
        .fault_policy(args.fault_policy)
        .checkpoint_every(args.checkpoint_every)
        .checkpoint_keep(args.checkpoint_keep);
    if let Some(workers) = args.workers {
        options = options.num_workers(workers);
    }
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(args.seed ^ 1))
        .dataset(ds)
        .options(options)
        .telemetry(sink)
        .build();
    let manager = trainer.checkpoint_manager(&args.out);

    if let Some(path) = &args.resume {
        let ck = match load_checkpoint(path) {
            Ok(ck) => ck,
            Err(code) => return code,
        };
        if let Err(e) = trainer.resume_from(&ck) {
            eprintln!("cannot resume from {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "resumed from {} at epoch {}",
            path.display(),
            trainer.epochs_run()
        );
    }

    while trainer.epochs_run() < args.epochs as u64 {
        let e = trainer.epochs_run();
        let stats = match trainer.try_train_epoch() {
            Ok(stats) => stats,
            Err(fault) => {
                trainer.telemetry().flush();
                eprintln!("training aborted: {fault}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "epoch {e:>3}: mean reward {:.3}  best-in-buffer {:.3}",
            stats.mean_reward, stats.mean_best
        );
        let epoch = trainer.epochs_run();
        match manager.maybe_save(&trainer.checkpoint(), epoch) {
            Ok(Some(path)) => println!("snapshot written to {}", path.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("failed to write snapshot for epoch {epoch}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.inject_kill_after == Some(epoch) {
            trainer.telemetry().flush();
            eprintln!("injected crash after epoch {epoch} (--inject-kill-after)");
            return ExitCode::FAILURE;
        }
    }
    trainer.telemetry().flush();
    let faults = trainer.fault_stats();
    if faults.skipped_samples + faults.quarantined_graphs + faults.rollbacks > 0 {
        println!(
            "faults recovered: {} samples skipped, {} graphs quarantined \
             ({:?}), {} epoch rollbacks",
            faults.skipped_samples,
            faults.quarantined_graphs,
            trainer.quarantined_graphs(),
            faults.rollbacks
        );
    }
    let ckpt = trainer.checkpoint();
    if let Err(e) = ckpt.save(&args.out) {
        eprintln!("failed to write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let model = trainer.into_model();
    println!(
        "saved model ({} parameters) to {}",
        model.num_parameters(),
        args.out.display()
    );
    if let Some(path) = &args.metrics {
        println!("telemetry written to {}", path.display());
    }
    ExitCode::SUCCESS
}

fn evaluate(args: EvaluateArgs) -> ExitCode {
    let ds = match load_dataset(&args.dataset) {
        Ok(ds) => ds,
        Err(code) => return code,
    };
    let mut results = Vec::new();
    results.push(evaluate_allocator(
        &MetisAllocator::new(1) as &dyn Allocator,
        &ds,
    ));
    if let Some(model_path) = &args.model {
        let ck = match load_checkpoint(model_path) {
            Ok(ck) => ck,
            Err(code) => return code,
        };
        let alloc = CoarsenAllocator::new(ck.into_model(), MetisCoarsePlacer::new(2));
        results.push(evaluate_allocator(&alloc as &dyn Allocator, &ds));
    }
    println!(
        "{}",
        spg::eval::render_table(
            &format!("evaluation on {}", args.dataset.display()),
            &results
        )
    );
    ExitCode::SUCCESS
}

fn allocate(args: AllocateArgs) -> ExitCode {
    let ds = match load_dataset(&args.dataset) {
        Ok(ds) => ds,
        Err(code) => return code,
    };
    let Some(graph) = ds.graphs.get(args.index) else {
        eprintln!(
            "dataset has {} graphs; index {} out of range",
            ds.graphs.len(),
            args.index
        );
        return ExitCode::FAILURE;
    };
    let ck = match load_checkpoint(&args.model) {
        Ok(ck) => ck,
        Err(code) => return code,
    };
    let alloc = CoarsenAllocator::new(ck.into_model(), MetisCoarsePlacer::new(3));
    let placement = alloc.allocate(graph, &ds.cluster, ds.source_rate);
    let sim = spg::sim::analytic::simulate(graph, &ds.cluster, &placement, ds.source_rate);
    println!(
        "graph {}: {} nodes, {} edges",
        args.index,
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "throughput {:.0}/s of {:.0}/s (relative {:.3}), bottleneck {:?}",
        sim.throughput, ds.source_rate, sim.relative, sim.bottleneck
    );
    println!("devices used: {}", placement.devices_used());
    println!("placement: {:?}", placement.as_slice());
    ExitCode::SUCCESS
}

fn serve(args: ServeArgs) -> ExitCode {
    let ck = match load_checkpoint(&args.model) {
        Ok(ck) => ck,
        Err(code) => return code,
    };
    let sink = match &args.metrics {
        Some(path) => match TelemetrySink::jsonl_file(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("failed to open {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => TelemetrySink::disabled(),
    };
    let spec = DatasetSpec::for_setting(args.setting);
    let _inject_guard = arm_serve_injector(&args);
    let mut builder = spg::serve::ServeConfig::builder()
        .addr(args.addr.clone())
        .replicas(args.replicas)
        .max_batch(args.max_batch)
        .queue_capacity(args.queue)
        .request_timeout_ms(args.timeout_ms)
        .cache_capacity(args.cache)
        .shed_watermark(args.shed_watermark)
        .precision(args.precision)
        .seed(args.seed);
    if let Some(workers) = args.workers {
        builder = builder.workers(workers);
    }
    let cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let server = match spg::serve::Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // The exact `listening on ADDR` shape is what scripts/ci.sh and
        // harnesses parse to find a port-0 server.
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("failed to resolve listen address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run(ck, spec.cluster(), spec.source_rate, &sink) {
        Ok(report) => {
            println!(
                "drained: {} responses, {} errors, {} batches, \
                 cache {} hits / {} misses",
                report.responses,
                report.errors,
                report.batches,
                report.cache_hits,
                report.cache_misses
            );
            println!(
                "time split: encode {:.3} ms, rollout {:.3} ms \
                 ({} union cache hits)",
                report.encode_ns as f64 / 1e6,
                report.rollout_ns as f64 / 1e6,
                report.union_cache_hits
            );
            if report.per_replica.len() > 1 {
                for (shard, r) in report.per_replica.iter().enumerate() {
                    println!(
                        "  replica {shard}: {} responses, {} batches, \
                         cache {} hits / {} misses",
                        r.responses, r.batches, r.cache_hits, r.cache_misses
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Demo client for the incremental re-allocation path: alloc one seeded
/// graph, build a drift delta against it, realloc warm-started from the
/// prior placement, and print what the server did.
fn realloc(args: ReallocArgs) -> ExitCode {
    use spg::graph::wire::{shutdown_line, AllocRequest, ReallocRequest, WireResponse};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let spec = DatasetSpec::scaled_down(spg::gen::Setting::Small);
    let devices = spec.cluster().devices;
    let rate = spec.source_rate;
    let graph = spg::gen::generate_graph(&spec, args.seed);
    let scenario = match args.drift {
        Some(kind) => spg::gen::DriftScenario {
            kind,
            delta: spg::gen::drift_delta(&graph, kind, devices, rate, args.seed),
        },
        None => spg::gen::drift_scenario(&graph, devices, rate, args.seed),
    };

    let stream = match TcpStream::connect(&args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to connect to {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = stream.set_read_timeout(Some(std::time::Duration::from_secs(30))) {
        eprintln!("failed to set read timeout: {e}");
        return ExitCode::FAILURE;
    }
    let _ = stream.set_nodelay(true);
    let mut out = match stream.try_clone() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("failed to clone connection: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: String| -> Result<spg::graph::wire::AllocResponse, String> {
        out.write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(0) => return Err("server closed the connection".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        match WireResponse::parse(buf.trim()) {
            Ok(WireResponse::Ok(r)) => Ok(r),
            Ok(WireResponse::Err(e)) => Err(format!("server error: {} ({})", e.error, e.detail)),
            Err(e) => Err(format!("unparseable response: {e}")),
        }
    };

    let prior = match roundtrip(
        AllocRequest {
            id: "realloc-prior".to_string(),
            graph: graph.clone(),
            source_rate: Some(rate),
            devices: Some(devices),
            v: Some(2),
            deadline_ms: None,
        }
        .to_line(),
    ) {
        Ok(r) => r,
        Err(why) => {
            eprintln!("alloc failed: {why}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "alloc: {} nodes on {} devices, relative {:.3}",
        graph.num_nodes(),
        devices,
        prior.relative_throughput
    );
    println!(
        "drift: {} (churn {:.3})",
        scenario.kind.slug(),
        scenario.delta.churn(&graph)
    );

    let realloc = match roundtrip(
        ReallocRequest {
            id: "realloc-drift".to_string(),
            graph,
            prior_placement: prior.placement.clone(),
            delta: scenario.delta,
            source_rate: Some(rate),
            devices: Some(devices),
            v: Some(2),
            deadline_ms: None,
        }
        .to_line(),
    ) {
        Ok(r) => r,
        Err(why) => {
            eprintln!("realloc failed: {why}");
            return ExitCode::FAILURE;
        }
    };
    let moved = if realloc.placement.len() == prior.placement.len() {
        realloc
            .placement
            .iter()
            .zip(&prior.placement)
            .filter(|(a, b)| a != b)
            .count()
    } else {
        realloc.placement.len()
    };
    println!(
        "realloc ({}): relative {:.3}, {} of {} operators moved",
        realloc.realloc.as_deref().unwrap_or("unchanged"),
        realloc.relative_throughput,
        moved,
        realloc.placement.len()
    );

    if args.shutdown {
        let _ = out
            .write_all(shutdown_line().as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush());
    }
    ExitCode::SUCCESS
}

fn bench_serve(args: BenchServeArgs) -> ExitCode {
    use serde::{Serialize, Value};
    // `--out` holds an object of `"r<replicas>c<connections>"` rows (the
    // shape perf_gate compares); sweep runs merge into whatever rows the
    // file already has, replacing same-keyed ones.
    let mut rows: Vec<(String, Value)> = match std::fs::read_to_string(&args.out) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Object(entries))
                if entries.iter().all(|(_, v)| matches!(v, Value::Object(_))) =>
            {
                entries
            }
            // Flat pre-sweep report or unparsable content: start fresh.
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };

    if args.drift {
        let cfg = spg::serve::BenchConfig {
            addr: args.addr.clone(),
            replicas: args.replicas,
            connections: 1,
            requests: args.requests,
            graphs: args.graphs,
            seed: args.seed,
            rate: args.rate,
            shutdown: args.shutdown,
            serve_metrics: args.serve_metrics.clone(),
        };
        let report = match spg::serve::run_drift_bench(&cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench-serve --drift failed against {}: {e}", cfg.addr);
                return ExitCode::FAILURE;
            }
        };
        println!(
            "drift: {}/{} warm-started ({} full re-allocs ok, {} errors), \
             warm p50 {:.1} ms vs full p50 {:.1} ms (ratio {:.2}), \
             min reward ratio {:.3}, replay consistent: {}",
            report.warm_ok,
            report.scenarios,
            report.full_ok,
            report.errors,
            report.latency_p50_ms,
            report.full_p50_ms,
            report.latency_ratio,
            report.min_reward_ratio,
            report.consistent
        );
        if let (Some(e), Some(r)) = (report.encode_ms, report.rollout_ms) {
            println!("server time split: encode {e:.1} ms, rollout {r:.1} ms");
        }
        let failure = if !report.consistent {
            Some("empty-delta realloc diverged from the prior response")
        } else if report.warm_ok == 0 {
            Some("no realloc took the warm-start path")
        } else if report.errors > 0 {
            Some("drift scenarios returned errors")
        } else {
            None
        };
        rows.retain(|(k, _)| k != "drift");
        rows.push(("drift".to_string(), report.serialize()));
        rows.sort_by(|(a, _), (b, _)| a.cmp(b));
        let json = serde_json::to_string_pretty(&Value::Object(rows))
            .expect("report serialization is infallible");
        if let Err(e) = std::fs::write(&args.out, json + "\n") {
            eprintln!("failed to write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", args.out.display());
        if let Some(why) = failure {
            eprintln!("FAIL: {why}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if args.chaos {
        let cfg = spg::serve::BenchConfig {
            addr: args.addr.clone(),
            replicas: args.replicas,
            connections: args.connections[0],
            requests: args.requests,
            graphs: args.graphs,
            seed: args.seed,
            rate: args.rate,
            shutdown: args.shutdown,
            serve_metrics: args.serve_metrics.clone(),
        };
        let report = match spg::serve::run_bench(&cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench-serve --chaos failed against {}: {e}", cfg.addr);
                return ExitCode::FAILURE;
            }
        };
        println!(
            "chaos: {}/{} ok, {} errors ({} timeouts, {} short reads, \
             {} parse errors) in {:.2}s — consistent: {}",
            report.ok,
            report.requests,
            report.errors,
            report.timeouts,
            report.short_reads,
            report.parse_errors,
            report.elapsed_s,
            report.consistent
        );
        // The fault invariant: every request gets exactly one response or
        // a named connection-level failure — never a hang. Errors are
        // EXPECTED here (the server is injecting faults); hangs and
        // unaccounted requests are not.
        let failure = if report.timeouts > 0 {
            Some("requests hung under injected faults (timeouts)")
        } else if report.ok + report.errors != report.requests {
            Some("chaos accounting broke: ok + errors != requests")
        } else if report.ok == 0 {
            Some("no successful responses under chaos")
        } else if !report.consistent {
            Some("identical requests received different placements under chaos")
        } else {
            None
        };
        rows.retain(|(k, _)| k != "chaos");
        rows.push(("chaos".to_string(), report.serialize()));
        rows.sort_by(|(a, _), (b, _)| a.cmp(b));
        let json = serde_json::to_string_pretty(&Value::Object(rows))
            .expect("report serialization is infallible");
        if let Err(e) = std::fs::write(&args.out, json + "\n") {
            eprintln!("failed to write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", args.out.display());
        if let Some(why) = failure {
            eprintln!("FAIL: {why}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let mut failure = None;
    let last = args.connections.len() - 1;
    for (i, &connections) in args.connections.iter().enumerate() {
        let cfg = spg::serve::BenchConfig {
            addr: args.addr.clone(),
            replicas: args.replicas,
            connections,
            requests: args.requests,
            graphs: args.graphs,
            seed: args.seed,
            rate: args.rate,
            // Only the final run may take the server down (and harvest
            // its drained telemetry).
            shutdown: args.shutdown && i == last,
            serve_metrics: args.serve_metrics.clone().filter(|_| i == last),
        };
        let report = match spg::serve::run_bench(&cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench-serve failed against {}: {e}", cfg.addr);
                return ExitCode::FAILURE;
            }
        };
        // An int8 sweep is one gated row (`q8`), comparable against the
        // f32 `r<replicas>c<conns>` rows it shares the file with.
        let key = match args.precision {
            spg::serve::Precision::Int8 => "q8".to_string(),
            spg::serve::Precision::F32 => format!("r{}c{}", args.replicas, connections),
        };
        println!(
            "{key}: {}/{} ok ({} cached, {} errors) in {:.2}s — {:.1} req/s \
             sustained, latency p50 {:.1} ms / p99 {:.1} ms",
            report.ok,
            report.requests,
            report.cached,
            report.errors,
            report.elapsed_s,
            report.sustained_rps,
            report.latency_p50_ms,
            report.latency_p99_ms
        );
        if let (Some(e), Some(r)) = (report.encode_ms, report.rollout_ms) {
            println!("server time split: encode {e:.1} ms, rollout {r:.1} ms");
        }
        if !report.consistent {
            failure = Some("identical requests received different placements");
        }
        if report.ok == 0 {
            failure = Some("no successful responses");
        }
        rows.retain(|(k, _)| *k != key);
        rows.push((key, report.serialize()));
    }

    rows.sort_by(|(a, _), (b, _)| a.cmp(b));
    let json = serde_json::to_string_pretty(&Value::Object(rows))
        .expect("report serialization is infallible");
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("failed to write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("report written to {}", args.out.display());
    if let Some(why) = failure {
        eprintln!("FAIL: {why}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn bench_matmul(args: BenchMatmulArgs) -> ExitCode {
    use spg::nn::{MatmulMode, Matrix};
    let (n, k, m) = (args.n, args.k, args.m);
    if args.precision == spg::serve::Precision::Int8 {
        return bench_matmul_int8(&args);
    }
    let mode = if args.fast {
        MatmulMode::Fast
    } else {
        MatmulMode::Strict
    };
    // The train-epoch bench's deterministic fill, generalised to ragged
    // shapes: small signed values so products stay well-conditioned.
    let a = Matrix::from_vec(
        n,
        k,
        (0..n * k).map(|i| ((i % 17) as f32 - 8.0) * 0.1).collect(),
    );
    let b = Matrix::from_vec(
        k,
        m,
        (0..k * m).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect(),
    );
    let mut out = Matrix::zeros(n, m);
    // Warm up: page in the buffers and settle the CPU-feature dispatch.
    for _ in 0..3 {
        a.matmul_into_mode(&b, &mut out, mode);
    }
    let start = std::time::Instant::now();
    for _ in 0..args.iters {
        a.matmul_into_mode(&b, &mut out, mode);
        std::hint::black_box(&out);
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / args.iters as f64;
    let gflops = 2.0 * (n as f64) * (k as f64) * (m as f64) / ns_per_iter;
    println!(
        "matmul {n}x{k}x{m} ({}): {ns_per_iter:.0} ns/iter, {gflops:.2} GFLOP/s \
         over {} iters",
        if args.fast { "fast" } else { "strict" },
        args.iters
    );
    ExitCode::SUCCESS
}

/// Time the integer-accumulated i8×i8→i32 kernel behind the quantized
/// serving path. The f32 operands are the same deterministic fills as
/// the strict bench, quantized per-row exactly as inference does, so
/// the shapes and value distributions match across the precision rows.
fn bench_matmul_int8(args: &BenchMatmulArgs) -> ExitCode {
    use spg::nn::quant::{gemm_i8, padded_width, quantize_rows_i8_padded};
    let (n, k, m) = (args.n, args.k, args.m);
    let a: Vec<f32> = (0..n * k).map(|i| ((i % 17) as f32 - 8.0) * 0.1).collect();
    let b: Vec<f32> = (0..k * m).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
    // gemm_i8 wants the right operand pre-transposed to [m×k], the
    // layout quantized weights are stored in. Rows are zero-padded to
    // the SIMD step, exactly as the quantized layers run (zero codes
    // add zero products, so the sums are unchanged).
    let mut bt = vec![0.0f32; k * m];
    for r in 0..k {
        for c in 0..m {
            bt[c * k + r] = b[r * m + c];
        }
    }
    let kp = padded_width(k);
    let (mut a_q, mut a_scale) = (Vec::new(), Vec::new());
    let (mut bt_q, mut bt_scale) = (Vec::new(), Vec::new());
    quantize_rows_i8_padded(&a, n, k, kp, &mut a_q, &mut a_scale);
    quantize_rows_i8_padded(&bt, m, k, kp, &mut bt_q, &mut bt_scale);
    let mut out = vec![0i32; n * m];
    for _ in 0..3 {
        gemm_i8(&a_q, &bt_q, &mut out, n, kp, m);
    }
    let start = std::time::Instant::now();
    for _ in 0..args.iters {
        gemm_i8(&a_q, &bt_q, &mut out, n, kp, m);
        std::hint::black_box(&out);
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / args.iters as f64;
    let gflops = 2.0 * (n as f64) * (k as f64) * (m as f64) / ns_per_iter;
    println!(
        "matmul {n}x{k}x{m} (int8): {ns_per_iter:.0} ns/iter, {gflops:.2} GFLOP/s \
         over {} iters",
        args.iters
    );
    ExitCode::SUCCESS
}

fn report(args: ReportArgs) -> ExitCode {
    let text = match std::fs::read_to_string(&args.metrics) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.metrics.display());
            return ExitCode::FAILURE;
        }
    };
    match Summary::from_lines(text.lines()) {
        Ok(summary) => {
            println!("telemetry report for {}", args.metrics.display());
            println!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}: {e}", args.metrics.display());
            ExitCode::FAILURE
        }
    }
}
