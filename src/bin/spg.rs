//! `spg` — command-line interface for the coarsening-partitioning
//! allocator: generate datasets, train models, allocate graphs, evaluate
//! methods.
//!
//! ```text
//! spg generate --setting medium --count 20 --seed 1 --out ds.json
//! spg train    --dataset ds.json --epochs 10 --out model.json
//! spg evaluate --dataset ds.json --model model.json
//! spg allocate --dataset ds.json --model model.json --index 0
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::eval::evaluate_allocator;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::serialize::Dataset;
use spg::graph::Allocator;
use spg::model::checkpoint::Checkpoint;
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::partition::MetisAllocator;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  spg generate --setting <small|medium-5dev|medium|large|xlarge|excess> \\\n               [--count N] [--seed S] [--scaled] --out FILE\n  spg train    --dataset FILE [--epochs N] [--seed S] [--no-guide] --out FILE\n  spg evaluate --dataset FILE [--model FILE]\n  spg allocate --dataset FILE --model FILE [--index I]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let boolean = matches!(name, "scaled" | "no-guide");
            if boolean {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                eprintln!("flag --{name} needs a value");
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn setting_from(name: &str) -> Option<Setting> {
    Setting::all().into_iter().find(|s| s.slug() == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);

    match cmd.as_str() {
        "generate" => {
            let Some(setting) = flags.get("setting").and_then(|s| setting_from(s)) else {
                eprintln!(
                    "--setting required (one of: {})",
                    Setting::all().map(|s| s.slug()).join(", ")
                );
                return usage();
            };
            let count: usize = flags
                .get("count")
                .and_then(|c| c.parse().ok())
                .unwrap_or(20);
            let seed: u64 = flags.get("seed").and_then(|c| c.parse().ok()).unwrap_or(0);
            let spec = if flags.contains_key("scaled") {
                DatasetSpec::scaled_down(setting)
            } else {
                DatasetSpec::for_setting(setting)
            };
            let Some(out) = flags.get("out") else {
                return usage();
            };
            let ds = spg::gen::generate_dataset(&spec, count, seed);
            if let Err(e) = ds.save(Path::new(out)) {
                eprintln!("failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {count} graphs ({}-{} nodes, {} devices, {}/s) to {out}",
                spec.growth.node_range.0, spec.growth.node_range.1, spec.devices, spec.source_rate
            );
            ExitCode::SUCCESS
        }
        "train" => {
            let Some(ds_path) = flags.get("dataset") else {
                return usage();
            };
            let Some(out) = flags.get("out") else {
                return usage();
            };
            let epochs: usize = flags
                .get("epochs")
                .and_then(|c| c.parse().ok())
                .unwrap_or(10);
            let seed: u64 = flags.get("seed").and_then(|c| c.parse().ok()).unwrap_or(0);
            let ds = match Dataset::load(Path::new(ds_path)) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("failed to read {ds_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
            let mut trainer = ReinforceTrainer::new(
                model,
                MetisCoarsePlacer::new(seed ^ 1),
                ds.graphs,
                ds.cluster,
                ds.source_rate,
                TrainOptions {
                    metis_guided: !flags.contains_key("no-guide"),
                    seed,
                    ..Default::default()
                },
            );
            for e in 0..epochs {
                let stats = trainer.train_epoch();
                println!(
                    "epoch {e:>3}: mean reward {:.3}  best-in-buffer {:.3}",
                    stats.mean_reward, stats.mean_best
                );
            }
            let model = trainer.into_model();
            if let Err(e) = Checkpoint::from_model(&model).save(Path::new(out)) {
                eprintln!("failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "saved model ({} parameters) to {out}",
                model.num_parameters()
            );
            ExitCode::SUCCESS
        }
        "evaluate" => {
            let Some(ds_path) = flags.get("dataset") else {
                return usage();
            };
            let ds = match Dataset::load(Path::new(ds_path)) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("failed to read {ds_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut results = Vec::new();
            results.push(evaluate_allocator(
                &MetisAllocator::new(1) as &dyn Allocator,
                &ds,
            ));
            if let Some(model_path) = flags.get("model") {
                match Checkpoint::load(Path::new(model_path)) {
                    Ok(ck) => {
                        let alloc =
                            CoarsenAllocator::new(ck.into_model(), MetisCoarsePlacer::new(2));
                        results.push(evaluate_allocator(&alloc as &dyn Allocator, &ds));
                    }
                    Err(e) => {
                        eprintln!("failed to read {model_path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            println!(
                "{}",
                spg::eval::render_table(&format!("evaluation on {ds_path}"), &results)
            );
            ExitCode::SUCCESS
        }
        "allocate" => {
            let (Some(ds_path), Some(model_path)) = (flags.get("dataset"), flags.get("model"))
            else {
                return usage();
            };
            let index: usize = flags.get("index").and_then(|c| c.parse().ok()).unwrap_or(0);
            let ds = match Dataset::load(Path::new(ds_path)) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("failed to read {ds_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(graph) = ds.graphs.get(index) else {
                eprintln!(
                    "dataset has {} graphs; index {index} out of range",
                    ds.graphs.len()
                );
                return ExitCode::FAILURE;
            };
            let ck = match Checkpoint::load(Path::new(model_path)) {
                Ok(ck) => ck,
                Err(e) => {
                    eprintln!("failed to read {model_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let alloc = CoarsenAllocator::new(ck.into_model(), MetisCoarsePlacer::new(3));
            let placement = alloc.allocate(graph, &ds.cluster, ds.source_rate);
            let sim = spg::sim::analytic::simulate(graph, &ds.cluster, &placement, ds.source_rate);
            println!(
                "graph {index}: {} nodes, {} edges",
                graph.num_nodes(),
                graph.num_edges()
            );
            println!(
                "throughput {:.0}/s of {:.0}/s (relative {:.3}), bottleneck {:?}",
                sim.throughput, ds.source_rate, sim.relative, sim.bottleneck
            );
            println!("devices used: {}", placement.devices_used());
            println!("placement: {:?}", placement.as_slice());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
