//! Typed command-line parsing for the `spg` binary.
//!
//! Each subcommand parses into its own args struct, so the binary's `main`
//! works with fields, not a stringly `HashMap`. Unknown flags and missing
//! values are hard errors that name the offending flag, and every
//! subcommand answers `--help` with its own usage text (the same text the
//! README's CLI section is generated from).

use spg_core::FaultPolicy;
use spg_gen::{DriftKind, Setting};
use spg_serve::Precision;
use std::fmt;
use std::path::PathBuf;

/// A parsed invocation of the `spg` binary.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `spg generate` — synthesize a dataset of stream graphs.
    Generate(GenerateArgs),
    /// `spg train` — train the RL coarsening model on a dataset.
    Train(TrainArgs),
    /// `spg evaluate` — compare allocators on a dataset.
    Evaluate(EvaluateArgs),
    /// `spg allocate` — place one graph with a trained model.
    Allocate(AllocateArgs),
    /// `spg report` — summarize a training telemetry JSONL file.
    Report(ReportArgs),
    /// `spg serve` — run the long-lived allocation service.
    Serve(ServeArgs),
    /// `spg realloc` — demo client for the incremental re-allocation path.
    Realloc(ReallocArgs),
    /// `spg bench-serve` — open-loop load generator against `spg serve`.
    BenchServe(BenchServeArgs),
    /// `spg bench-matmul` — matmul kernel microbenchmark.
    BenchMatmul(BenchMatmulArgs),
}

/// Arguments of `spg generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Paper setting that fixes graph sizes, devices and source rate.
    pub setting: Setting,
    /// Number of graphs to generate.
    pub count: usize,
    /// Generator seed.
    pub seed: u64,
    /// Use the scaled-down variant of the setting.
    pub scaled: bool,
    /// Output dataset path (JSON).
    pub out: PathBuf,
}

/// Arguments of `spg train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    /// Dataset produced by `spg generate`.
    pub dataset: PathBuf,
    /// Output model checkpoint path.
    pub out: PathBuf,
    /// Training epochs.
    pub epochs: usize,
    /// Training seed.
    pub seed: u64,
    /// Metis-guided buffer seeding (cleared by `--no-guide`).
    pub guide: bool,
    /// Rollout worker threads (`None` = auto).
    pub workers: Option<usize>,
    /// Telemetry JSONL output path (`None` = telemetry disabled).
    pub metrics: Option<PathBuf>,
    /// Checkpoint to resume training from (`--resume`).
    pub resume: Option<PathBuf>,
    /// Periodic snapshot interval in epochs (0 = disabled).
    pub checkpoint_every: usize,
    /// How many periodic snapshots to keep.
    pub checkpoint_keep: usize,
    /// What to do when a training-time fault is detected.
    pub fault_policy: FaultPolicy,
    /// Fault injection: simulate a crash after this epoch completes.
    pub inject_kill_after: Option<u64>,
    /// Fault injection: probability of a NaN rollout reward per sample.
    pub inject_nan_rewards: f64,
    /// Fault injection: probability of a rollout worker panic per sample.
    pub inject_worker_panics: f64,
}

/// Arguments of `spg evaluate`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateArgs {
    /// Dataset to evaluate on.
    pub dataset: PathBuf,
    /// Trained model to evaluate alongside the Metis baseline.
    pub model: Option<PathBuf>,
}

/// Arguments of `spg allocate`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocateArgs {
    /// Dataset holding the graph.
    pub dataset: PathBuf,
    /// Trained model checkpoint.
    pub model: PathBuf,
    /// Index of the graph within the dataset.
    pub index: usize,
}

/// Arguments of `spg report`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// Telemetry JSONL file written by `spg train --metrics`.
    pub metrics: PathBuf,
}

/// Arguments of `spg serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Trained model checkpoint to serve.
    pub model: PathBuf,
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Paper setting whose cluster and source rate are the request
    /// defaults.
    pub setting: Setting,
    /// Shared-nothing replica workers (model copy + batcher + LRU shard
    /// each).
    pub replicas: usize,
    /// Maximum requests coalesced into one encoder forward pass.
    pub max_batch: usize,
    /// Bounded request-queue depth (`overloaded` beyond it).
    pub queue: usize,
    /// Per-request timeout in milliseconds.
    pub timeout_ms: u64,
    /// Placement-cache capacity (0 disables caching).
    pub cache: usize,
    /// Rollout worker threads (`None` = auto).
    pub workers: Option<usize>,
    /// Placement seed.
    pub seed: u64,
    /// Telemetry JSONL output path (`None` = telemetry disabled).
    pub metrics: Option<PathBuf>,
    /// Inference precision (`f32` default; `int8` is the opt-in
    /// quantized path).
    pub precision: Precision,
    /// Queue depth at which a replica stops admitting cache misses and
    /// sheds them `overloaded` (0 disables the watermark).
    pub shed_watermark: usize,
    /// Chaos: probability a replica panics while handling a request.
    pub inject_replica_panics: f64,
    /// Chaos: probability a replica dies (and is respawned) mid-request.
    pub inject_replica_kills: f64,
    /// Chaos: probability a replica stalls before handling a request.
    pub inject_replica_stalls: f64,
    /// Chaos: probability a client connection is dropped at first write.
    pub inject_conn_drops: f64,
    /// Chaos: probability a response write is torn mid-line, then the
    /// connection dropped.
    pub inject_torn_writes: f64,
}

/// Arguments of `spg realloc`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReallocArgs {
    /// Address of a running `spg serve`.
    pub addr: String,
    /// Graph-generator / drift seed.
    pub seed: u64,
    /// Drift kind to exercise (`None` = cycled by seed).
    pub drift: Option<DriftKind>,
    /// Send a shutdown command to the server afterwards.
    pub shutdown: bool,
}

/// Arguments of `spg bench-serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchServeArgs {
    /// Address of a running `spg serve`.
    pub addr: String,
    /// Replica count of the server under test (labels the report rows).
    pub replicas: usize,
    /// Connection counts to sweep (one bench run per entry).
    pub connections: Vec<usize>,
    /// Total requests across all connections.
    pub requests: usize,
    /// Distinct seeded graphs cycled through the request stream.
    pub graphs: usize,
    /// Graph-generator seed.
    pub seed: u64,
    /// Offered load in requests/second (open loop).
    pub rate: f64,
    /// Send a shutdown command to the server after the run.
    pub shutdown: bool,
    /// Run the drift bench (warm-start realloc vs full re-allocation)
    /// instead of the open-loop load sweep.
    pub drift: bool,
    /// Where to write the JSON report.
    pub out: PathBuf,
    /// Telemetry JSONL file written by the server (`spg serve --metrics`);
    /// after shutdown the report extracts the encode/rollout time split
    /// from it.
    pub serve_metrics: Option<PathBuf>,
    /// Precision of the server under test; `int8` keys the merged sweep
    /// row `q8` instead of `r<replicas>c<conns>`.
    pub precision: Precision,
    /// Chaos audit: assert every request gets exactly one response or
    /// named error (no hangs) against a fault-injecting server; the
    /// report row is keyed `chaos`.
    pub chaos: bool,
}

/// Arguments of `spg bench-matmul`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMatmulArgs {
    /// Problem shape: `[n x k]·[k x m]`.
    pub n: usize,
    pub k: usize,
    pub m: usize,
    /// Timed iterations.
    pub iters: usize,
    /// Benchmark the fast-math kernels instead of the strict default.
    pub fast: bool,
    /// Kernel precision: `f32` times the float matmul, `int8` the
    /// integer-accumulated quantized kernel.
    pub precision: Precision,
}

/// Why parsing stopped without producing a [`Command`].
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The user asked for help; print to stdout and exit 0.
    Help(String),
    /// The invocation is malformed; print to stderr and exit 2.
    Usage(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Help(text) | CliError::Usage(text) => f.write_str(text),
        }
    }
}

/// Top-level usage text (`spg --help`).
pub fn general_help() -> String {
    "spg — coarsening-partitioning allocator for stream processing graphs\n\
     \n\
     usage: spg <command> [options]\n\
     \n\
     commands:\n\
     \x20 generate   synthesize a dataset of stream graphs\n\
     \x20 train      train the RL coarsening model on a dataset\n\
     \x20 evaluate   compare allocators on a dataset\n\
     \x20 allocate   place one graph with a trained model\n\
     \x20 report     summarize a training telemetry JSONL file\n\
     \x20 serve      run the long-lived allocation service (JSONL over TCP)\n\
     \x20 realloc    demo client for incremental re-allocation under drift\n\
     \x20 bench-serve  open-loop load generator against a running `spg serve`\n\
     \x20 bench-matmul matmul kernel microbenchmark (strict or fast-math)\n\
     \n\
     run `spg <command> --help` for command options"
        .to_string()
}

fn settings_list() -> String {
    Setting::all().map(|s| s.slug()).join("|")
}

/// Parse a `--setting` value by its slug.
fn parse_setting(name: &str) -> Result<Setting, CliError> {
    Setting::all()
        .into_iter()
        .find(|s| s.slug() == name)
        .ok_or_else(|| {
            CliError::Usage(format!(
                "invalid value `{name}` for --setting (one of: {})",
                settings_list()
            ))
        })
}

/// Usage text of one subcommand (`spg <cmd> --help`).
pub fn command_help(cmd: &str) -> String {
    match cmd {
        "generate" => format!(
            "usage: spg generate --setting <S> --out FILE [options]\n\
             \n\
             required:\n\
             \x20 --setting <{}>\n\
             \x20 --out FILE     where to write the dataset (JSON)\n\
             \n\
             options:\n\
             \x20 --count N      graphs to generate (default 20)\n\
             \x20 --seed S       generator seed (default 0)\n\
             \x20 --scaled       use the scaled-down variant of the setting",
            settings_list()
        ),
        "train" => "usage: spg train --dataset FILE --out FILE [options]\n\
             \n\
             required:\n\
             \x20 --dataset FILE  dataset produced by `spg generate`\n\
             \x20 --out FILE      where to write the model checkpoint\n\
             \n\
             options:\n\
             \x20 --epochs N      training epochs (default 10)\n\
             \x20 --seed S        training seed (default 0)\n\
             \x20 --no-guide      disable Metis-guided buffer seeding\n\
             \x20 --workers N     rollout worker threads (default: auto)\n\
             \x20 --metrics FILE  write telemetry events (JSONL) to FILE\n\
             \n\
             fault tolerance:\n\
             \x20 --resume FILE           resume from a checkpoint written by a crashed\n\
             \x20                         or interrupted run (same seed and dataset)\n\
             \x20 --checkpoint-every N    write FILE.epoch-<E> snapshots every N epochs\n\
             \x20 --checkpoint-keep K     keep only the newest K snapshots (default 3)\n\
             \x20 --fault-policy P        skip | rollback | abort (default abort)\n\
             \n\
             fault injection (testing the recovery paths):\n\
             \x20 --inject-kill-after E       exit(1) after epoch E completes\n\
             \x20 --inject-nan-rewards P      NaN rollout rewards at rate P (seeded)\n\
             \x20 --inject-worker-panics P    rollout worker panics at rate P (seeded)"
            .to_string(),
        "evaluate" => "usage: spg evaluate --dataset FILE [--model FILE]\n\
             \n\
             required:\n\
             \x20 --dataset FILE  dataset to evaluate on\n\
             \n\
             options:\n\
             \x20 --model FILE    also evaluate this trained model (otherwise Metis only)"
            .to_string(),
        "allocate" => "usage: spg allocate --dataset FILE --model FILE [--index I]\n\
             \n\
             required:\n\
             \x20 --dataset FILE  dataset holding the graph\n\
             \x20 --model FILE    trained model checkpoint\n\
             \n\
             options:\n\
             \x20 --index I       graph index within the dataset (default 0)"
            .to_string(),
        "report" => "usage: spg report METRICS.jsonl\n\
             \n\
             Summarize a telemetry stream written by `spg train --metrics`:\n\
             per-phase time breakdown, counters (reward-cache hit rate,\n\
             simulator calls), histograms, and the reward curve."
            .to_string(),
        "serve" => format!(
            "usage: spg serve --model FILE [options]\n\
             \n\
             Long-running allocation service: loads the checkpoint once, then\n\
             answers line-delimited JSON allocation requests over TCP with\n\
             batched inference and a placement cache. Prints one\n\
             `listening on ADDR` line once ready; a `{{\"cmd\":\"shutdown\"}}`\n\
             request drains in-flight work and exits.\n\
             \n\
             required:\n\
             \x20 --model FILE    trained model checkpoint\n\
             \n\
             options:\n\
             \x20 --addr A        listen address (default 127.0.0.1:0)\n\
             \x20 --setting <{}>\n\
             \x20                 cluster + source-rate request defaults (default small)\n\
             \x20 --replicas N    shared-nothing replica workers, each with its own\n\
             \x20                 model copy, batcher and LRU shard (default 1)\n\
             \x20 --max-batch N   max requests per encoder forward pass (default 8)\n\
             \x20 --queue N       bounded per-replica queue depth; `overloaded`\n\
             \x20                 beyond it (default 64)\n\
             \x20 --timeout-ms N  per-request timeout (default 5000)\n\
             \x20 --cache N       placement-cache entries, 0 disables (default 256)\n\
             \x20 --workers N     rollout worker threads (default: auto)\n\
             \x20 --seed S        placement seed (default 7)\n\
             \x20 --metrics FILE  write telemetry events (JSONL) to FILE\n\
             \x20 --precision P   f32 | int8 (default f32); int8 serves the\n\
             \x20                 quantized inference path — deterministic, but\n\
             \x20                 cache-isolated from f32 placements\n\
             \x20 --shed-watermark N\n\
             \x20                 queue depth past which replicas serve only\n\
             \x20                 cache hits and shed the rest `overloaded`\n\
             \x20                 (default 0 = disabled)\n\
             \n\
             seeded fault injection (for chaos drills; probabilities in [0,1]):\n\
             \x20 --inject-replica-panics P  replica panics mid-request (caught)\n\
             \x20 --inject-replica-kills P   replica dies and is respawned\n\
             \x20 --inject-replica-stalls P  replica stalls before a request\n\
             \x20 --inject-conn-drops P      connection dropped at first write\n\
             \x20 --inject-torn-writes P     response torn mid-line, conn dropped",
            settings_list()
        ),
        "realloc" => "usage: spg realloc --addr A [options]\n\
             \n\
             Demo client for the incremental re-allocation path: allocates one\n\
             seeded graph (protocol v2), builds a drift delta against it, asks\n\
             the server to re-allocate warm-started from the prior placement,\n\
             and prints both responses plus the path taken (warm|full).\n\
             \n\
             required:\n\
             \x20 --addr A      address of a running `spg serve`\n\
             \n\
             options:\n\
             \x20 --seed S      graph/drift seed (default 0)\n\
             \x20 --drift K     drift kind: rate-ramp | hot-swap | device-loss\n\
             \x20               (default: cycled by seed)\n\
             \x20 --shutdown    send a shutdown command afterwards"
            .to_string(),
        "bench-serve" => "usage: spg bench-serve --addr A [options]\n\
             \n\
             Open-loop seeded load generator: fires allocation requests at a\n\
             fixed rate over concurrent connections, checks that identical\n\
             requests receive bitwise-identical placements, and writes a JSON\n\
             report with sustained req/s and latency percentiles.\n\
             \n\
             required:\n\
             \x20 --addr A         address of a running `spg serve`\n\
             \n\
             options:\n\
             \x20 --connections N[,M...]\n\
             \x20                  connection counts to sweep, one run per entry\n\
             \x20                  (default 4)\n\
             \x20 --replicas N     replica count of the server under test; labels\n\
             \x20                  the report rows `r<N>c<conns>` (default 1)\n\
             \x20 --requests N     total requests per run (default 64)\n\
             \x20 --graphs N       distinct graphs cycled through (default 8)\n\
             \x20 --seed S         graph-generator seed (default 0)\n\
             \x20 --rate R         offered load in req/s (default 200)\n\
             \x20 --shutdown       send a shutdown command after the last run\n\
             \x20 --chaos          audit a fault-injecting server: assert every\n\
             \x20                  request gets exactly one response or named\n\
             \x20                  error (no hangs); the report row is keyed\n\
             \x20                  `chaos`\n\
             \x20 --drift          run the drift bench instead of the load sweep:\n\
             \x20                  per seeded scenario, a warm-start realloc races a\n\
             \x20                  full re-allocation of the mutated graph; the report\n\
             \x20                  row is keyed `drift`\n\
             \x20 --out FILE       report path; rows keyed `r<replicas>c<conns>`\n\
             \x20                  are merged into an existing file\n\
             \x20                  (default BENCH_serve.json)\n\
             \x20 --serve-metrics FILE\n\
             \x20                  telemetry JSONL written by `spg serve --metrics FILE`;\n\
             \x20                  after shutdown, fold the server's encode/rollout\n\
             \x20                  time split into the report\n\
             \x20 --precision P    f32 | int8 (default f32): precision of the server\n\
             \x20                  under test; int8 keys the merged row `q8`"
            .to_string(),
        "bench-matmul" => "usage: spg bench-matmul [options]\n\
             \n\
             Time a matmul kernel at a given shape and print ns/iter and\n\
             GFLOP/s. Strict (bitwise-deterministic) f32 kernels by default;\n\
             --fast times the FMA/reassociated variants, --precision int8\n\
             the integer-accumulated quantized kernel.\n\
             \n\
             options:\n\
             \x20 --shape NxKxM  problem shape [n x k]·[k x m]; `NxK` means\n\
             \x20                NxKxN, a bare `N` means NxNxN (default 128)\n\
             \x20 --iters N      timed iterations (default 50)\n\
             \x20 --fast         use the fast-math f32 kernels\n\
             \x20 --precision P  f32 | int8 (default f32); int8 times the\n\
             \x20                i8×i8→i32 kernel behind `spg serve --precision int8`"
            .to_string(),
        other => panic!("no help for unknown command `{other}`"),
    }
}

/// Walks the raw argument list of one subcommand.
struct Args<'a> {
    cmd: &'static str,
    rest: std::slice::Iter<'a, String>,
}

impl<'a> Args<'a> {
    fn new(cmd: &'static str, rest: &'a [String]) -> Self {
        Self {
            cmd,
            rest: rest.iter(),
        }
    }

    /// Value of a `--flag VALUE` pair, or a usage error naming the flag.
    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        match self.rest.next() {
            Some(v) => Ok(v),
            None => Err(CliError::Usage(format!(
                "flag --{flag} needs a value (see `spg {} --help`)",
                self.cmd
            ))),
        }
    }

    fn unknown(&self, arg: &str) -> CliError {
        CliError::Usage(format!(
            "unknown argument `{arg}` for `spg {}` (see `spg {} --help`)",
            self.cmd, self.cmd
        ))
    }

    fn missing(&self, flag: &str) -> CliError {
        CliError::Usage(format!(
            "--{flag} is required (see `spg {} --help`)",
            self.cmd
        ))
    }
}

fn parse_num<T: std::str::FromStr>(cmd: &str, flag: &str, text: &str) -> Result<T, CliError>
where
    T::Err: fmt::Display,
{
    text.parse().map_err(|e| {
        CliError::Usage(format!(
            "invalid value `{text}` for --{flag}: {e} (see `spg {cmd} --help`)"
        ))
    })
}

/// Parse an injection-rate flag value: a probability in `[0, 1]`.
fn parse_rate(cmd: &str, flag: &str, a: &mut Args<'_>) -> Result<f64, CliError> {
    let p: f64 = parse_num(cmd, flag, a.value(flag)?)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::Usage(format!(
            "invalid value `{p}` for --{flag}: must be a probability in [0, 1] \
             (see `spg {cmd} --help`)"
        )));
    }
    Ok(p)
}

impl Command {
    /// Parse the argument list after the program name.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let Some(cmd) = args.first() else {
            return Err(CliError::Usage(general_help()));
        };
        let rest = &args[1..];
        match cmd.as_str() {
            "help" | "--help" | "-h" => Err(CliError::Help(general_help())),
            "generate" => Self::parse_generate(rest),
            "train" => Self::parse_train(rest),
            "evaluate" => Self::parse_evaluate(rest),
            "allocate" => Self::parse_allocate(rest),
            "report" => Self::parse_report(rest),
            "serve" => Self::parse_serve(rest),
            "realloc" => Self::parse_realloc(rest),
            "bench-serve" => Self::parse_bench_serve(rest),
            "bench-matmul" => Self::parse_bench_matmul(rest),
            other => Err(CliError::Usage(format!(
                "unknown command `{other}`\n\n{}",
                general_help()
            ))),
        }
    }

    fn parse_generate(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("generate", rest);
        let (mut setting, mut out) = (None, None);
        let (mut count, mut seed, mut scaled) = (20usize, 0u64, false);
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("generate"))),
                "--setting" => setting = Some(parse_setting(a.value("setting")?)?),
                "--count" => count = parse_num("generate", "count", a.value("count")?)?,
                "--seed" => seed = parse_num("generate", "seed", a.value("seed")?)?,
                "--scaled" => scaled = true,
                "--out" => out = Some(PathBuf::from(a.value("out")?)),
                other => return Err(a.unknown(other)),
            }
        }
        Ok(Command::Generate(GenerateArgs {
            setting: setting.ok_or_else(|| a.missing("setting"))?,
            count,
            seed,
            scaled,
            out: out.ok_or_else(|| a.missing("out"))?,
        }))
    }

    fn parse_train(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("train", rest);
        let (mut dataset, mut out, mut workers, mut metrics) = (None, None, None, None);
        let (mut epochs, mut seed, mut guide) = (10usize, 0u64, true);
        let (mut resume, mut checkpoint_every, mut checkpoint_keep) = (None, 0usize, 3usize);
        let mut fault_policy = FaultPolicy::default();
        let mut inject_kill_after = None;
        let (mut inject_nan_rewards, mut inject_worker_panics) = (0.0f64, 0.0f64);
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("train"))),
                "--dataset" => dataset = Some(PathBuf::from(a.value("dataset")?)),
                "--out" => out = Some(PathBuf::from(a.value("out")?)),
                "--epochs" => epochs = parse_num("train", "epochs", a.value("epochs")?)?,
                "--seed" => seed = parse_num("train", "seed", a.value("seed")?)?,
                "--no-guide" => guide = false,
                "--workers" => workers = Some(parse_num("train", "workers", a.value("workers")?)?),
                "--metrics" => metrics = Some(PathBuf::from(a.value("metrics")?)),
                "--resume" => resume = Some(PathBuf::from(a.value("resume")?)),
                "--checkpoint-every" => {
                    checkpoint_every =
                        parse_num("train", "checkpoint-every", a.value("checkpoint-every")?)?
                }
                "--checkpoint-keep" => {
                    checkpoint_keep =
                        parse_num("train", "checkpoint-keep", a.value("checkpoint-keep")?)?
                }
                "--fault-policy" => {
                    fault_policy = parse_num("train", "fault-policy", a.value("fault-policy")?)?
                }
                "--inject-kill-after" => {
                    inject_kill_after = Some(parse_num(
                        "train",
                        "inject-kill-after",
                        a.value("inject-kill-after")?,
                    )?)
                }
                "--inject-nan-rewards" => {
                    inject_nan_rewards = parse_rate("train", "inject-nan-rewards", &mut a)?
                }
                "--inject-worker-panics" => {
                    inject_worker_panics = parse_rate("train", "inject-worker-panics", &mut a)?
                }
                other => return Err(a.unknown(other)),
            }
        }
        Ok(Command::Train(TrainArgs {
            dataset: dataset.ok_or_else(|| a.missing("dataset"))?,
            out: out.ok_or_else(|| a.missing("out"))?,
            epochs,
            seed,
            guide,
            workers,
            metrics,
            resume,
            checkpoint_every,
            checkpoint_keep,
            fault_policy,
            inject_kill_after,
            inject_nan_rewards,
            inject_worker_panics,
        }))
    }

    fn parse_evaluate(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("evaluate", rest);
        let (mut dataset, mut model) = (None, None);
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("evaluate"))),
                "--dataset" => dataset = Some(PathBuf::from(a.value("dataset")?)),
                "--model" => model = Some(PathBuf::from(a.value("model")?)),
                other => return Err(a.unknown(other)),
            }
        }
        Ok(Command::Evaluate(EvaluateArgs {
            dataset: dataset.ok_or_else(|| a.missing("dataset"))?,
            model,
        }))
    }

    fn parse_allocate(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("allocate", rest);
        let (mut dataset, mut model) = (None, None);
        let mut index = 0usize;
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("allocate"))),
                "--dataset" => dataset = Some(PathBuf::from(a.value("dataset")?)),
                "--model" => model = Some(PathBuf::from(a.value("model")?)),
                "--index" => index = parse_num("allocate", "index", a.value("index")?)?,
                other => return Err(a.unknown(other)),
            }
        }
        Ok(Command::Allocate(AllocateArgs {
            dataset: dataset.ok_or_else(|| a.missing("dataset"))?,
            model: model.ok_or_else(|| a.missing("model"))?,
            index,
        }))
    }

    fn parse_report(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("report", rest);
        let mut metrics = None;
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("report"))),
                other if other.starts_with('-') => return Err(a.unknown(other)),
                path => {
                    if metrics.is_some() {
                        return Err(CliError::Usage(
                            "spg report takes exactly one METRICS.jsonl path (see `spg report --help`)"
                                .to_string(),
                        ));
                    }
                    metrics = Some(PathBuf::from(path));
                }
            }
        }
        Ok(Command::Report(ReportArgs {
            metrics: metrics.ok_or_else(|| {
                CliError::Usage(
                    "spg report needs a METRICS.jsonl path (see `spg report --help`)".to_string(),
                )
            })?,
        }))
    }

    fn parse_serve(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("serve", rest);
        let (mut model, mut workers, mut metrics) = (None, None, None);
        let mut addr = String::from("127.0.0.1:0");
        let mut setting = Setting::Small;
        let mut replicas = 1usize;
        let (mut max_batch, mut queue, mut cache) = (8usize, 64usize, 256usize);
        let (mut timeout_ms, mut seed) = (5000u64, 7u64);
        let mut precision = Precision::F32;
        let mut shed_watermark = 0usize;
        let (mut inject_replica_panics, mut inject_replica_kills) = (0.0f64, 0.0f64);
        let (mut inject_replica_stalls, mut inject_conn_drops) = (0.0f64, 0.0f64);
        let mut inject_torn_writes = 0.0f64;
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("serve"))),
                "--model" => model = Some(PathBuf::from(a.value("model")?)),
                "--addr" => addr = a.value("addr")?.to_string(),
                "--setting" => setting = parse_setting(a.value("setting")?)?,
                "--replicas" => {
                    replicas = parse_num("serve", "replicas", a.value("replicas")?)?;
                    if replicas == 0 {
                        return Err(CliError::Usage(
                            "invalid value `0` for --replicas: must be >= 1 \
                             (see `spg serve --help`)"
                                .to_string(),
                        ));
                    }
                }
                "--max-batch" => {
                    max_batch = parse_num("serve", "max-batch", a.value("max-batch")?)?
                }
                "--queue" => queue = parse_num("serve", "queue", a.value("queue")?)?,
                "--timeout-ms" => {
                    timeout_ms = parse_num("serve", "timeout-ms", a.value("timeout-ms")?)?
                }
                "--cache" => cache = parse_num("serve", "cache", a.value("cache")?)?,
                "--workers" => workers = Some(parse_num("serve", "workers", a.value("workers")?)?),
                "--seed" => seed = parse_num("serve", "seed", a.value("seed")?)?,
                "--metrics" => metrics = Some(PathBuf::from(a.value("metrics")?)),
                "--precision" => {
                    precision = parse_num("serve", "precision", a.value("precision")?)?
                }
                "--shed-watermark" => {
                    shed_watermark =
                        parse_num("serve", "shed-watermark", a.value("shed-watermark")?)?
                }
                "--inject-replica-panics" => {
                    inject_replica_panics = parse_rate("serve", "inject-replica-panics", &mut a)?
                }
                "--inject-replica-kills" => {
                    inject_replica_kills = parse_rate("serve", "inject-replica-kills", &mut a)?
                }
                "--inject-replica-stalls" => {
                    inject_replica_stalls = parse_rate("serve", "inject-replica-stalls", &mut a)?
                }
                "--inject-conn-drops" => {
                    inject_conn_drops = parse_rate("serve", "inject-conn-drops", &mut a)?
                }
                "--inject-torn-writes" => {
                    inject_torn_writes = parse_rate("serve", "inject-torn-writes", &mut a)?
                }
                other => return Err(a.unknown(other)),
            }
        }
        Ok(Command::Serve(ServeArgs {
            model: model.ok_or_else(|| a.missing("model"))?,
            addr,
            setting,
            replicas,
            max_batch,
            queue,
            timeout_ms,
            cache,
            workers,
            seed,
            metrics,
            precision,
            shed_watermark,
            inject_replica_panics,
            inject_replica_kills,
            inject_replica_stalls,
            inject_conn_drops,
            inject_torn_writes,
        }))
    }

    fn parse_realloc(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("realloc", rest);
        let (mut addr, mut drift) = (None, None);
        let (mut seed, mut shutdown) = (0u64, false);
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("realloc"))),
                "--addr" => addr = Some(a.value("addr")?.to_string()),
                "--seed" => seed = parse_num("realloc", "seed", a.value("seed")?)?,
                "--drift" => {
                    let text = a.value("drift")?;
                    drift = Some(DriftKind::from_slug(text).ok_or_else(|| {
                        CliError::Usage(format!(
                            "invalid value `{text}` for --drift (one of: rate-ramp|hot-swap|\
                             device-loss; see `spg realloc --help`)"
                        ))
                    })?);
                }
                "--shutdown" => shutdown = true,
                other => return Err(a.unknown(other)),
            }
        }
        Ok(Command::Realloc(ReallocArgs {
            addr: addr.ok_or_else(|| a.missing("addr"))?,
            seed,
            drift,
            shutdown,
        }))
    }

    fn parse_bench_serve(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("bench-serve", rest);
        let mut addr = None;
        let (mut requests, mut graphs) = (64usize, 8usize);
        let mut connections = vec![4usize];
        let mut replicas = 1usize;
        let (mut seed, mut rate, mut shutdown) = (0u64, 200.0f64, false);
        let (mut drift, mut chaos) = (false, false);
        let mut out = PathBuf::from("BENCH_serve.json");
        let mut serve_metrics = None;
        let mut precision = Precision::F32;
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("bench-serve"))),
                "--addr" => addr = Some(a.value("addr")?.to_string()),
                "--connections" => {
                    let text = a.value("connections")?;
                    connections = text
                        .split(',')
                        .map(|c| parse_num("bench-serve", "connections", c.trim()))
                        .collect::<Result<_, _>>()?;
                    if connections.is_empty() || connections.contains(&0) {
                        return Err(CliError::Usage(format!(
                            "invalid value `{text}` for --connections: expected a \
                             comma-separated list of positive counts \
                             (see `spg bench-serve --help`)"
                        )));
                    }
                }
                "--replicas" => {
                    replicas = parse_num("bench-serve", "replicas", a.value("replicas")?)?;
                    if replicas == 0 {
                        return Err(CliError::Usage(
                            "invalid value `0` for --replicas: must be >= 1 \
                             (see `spg bench-serve --help`)"
                                .to_string(),
                        ));
                    }
                }
                "--requests" => {
                    requests = parse_num("bench-serve", "requests", a.value("requests")?)?
                }
                "--graphs" => graphs = parse_num("bench-serve", "graphs", a.value("graphs")?)?,
                "--seed" => seed = parse_num("bench-serve", "seed", a.value("seed")?)?,
                "--rate" => {
                    rate = parse_num("bench-serve", "rate", a.value("rate")?)?;
                    if !(rate > 0.0 && rate.is_finite()) {
                        return Err(CliError::Usage(format!(
                            "invalid value `{rate}` for --rate: must be a positive req/s \
                             (see `spg bench-serve --help`)"
                        )));
                    }
                }
                "--shutdown" => shutdown = true,
                "--drift" => drift = true,
                "--chaos" => chaos = true,
                "--out" => out = PathBuf::from(a.value("out")?),
                "--serve-metrics" => serve_metrics = Some(PathBuf::from(a.value("serve-metrics")?)),
                "--precision" => {
                    precision = parse_num("bench-serve", "precision", a.value("precision")?)?
                }
                other => return Err(a.unknown(other)),
            }
        }
        if drift && chaos {
            return Err(CliError::Usage(
                "--drift and --chaos are mutually exclusive (see `spg bench-serve --help`)"
                    .to_string(),
            ));
        }
        Ok(Command::BenchServe(BenchServeArgs {
            addr: addr.ok_or_else(|| a.missing("addr"))?,
            replicas,
            connections,
            requests,
            graphs,
            seed,
            rate,
            shutdown,
            drift,
            out,
            serve_metrics,
            precision,
            chaos,
        }))
    }

    fn parse_bench_matmul(rest: &[String]) -> Result<Self, CliError> {
        let mut a = Args::new("bench-matmul", rest);
        let (mut n, mut k, mut m) = (128usize, 128usize, 128usize);
        let (mut iters, mut fast) = (50usize, false);
        let mut precision = Precision::F32;
        while let Some(arg) = a.rest.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help(command_help("bench-matmul"))),
                "--shape" => {
                    let text = a.value("shape")?;
                    let dims: Vec<usize> = text
                        .split('x')
                        .map(|d| parse_num("bench-matmul", "shape", d))
                        .collect::<Result<_, _>>()?;
                    (n, k, m) = match dims.as_slice() {
                        [s] => (*s, *s, *s),
                        [n, k] => (*n, *k, *n),
                        [n, k, m] => (*n, *k, *m),
                        _ => {
                            return Err(CliError::Usage(format!(
                                "invalid value `{text}` for --shape: expected N, NxK or \
                                 NxKxM (see `spg bench-matmul --help`)"
                            )))
                        }
                    };
                    if n == 0 || k == 0 || m == 0 {
                        return Err(CliError::Usage(format!(
                            "invalid value `{text}` for --shape: dimensions must be \
                             positive (see `spg bench-matmul --help`)"
                        )));
                    }
                }
                "--iters" => {
                    iters = parse_num("bench-matmul", "iters", a.value("iters")?)?;
                    if iters == 0 {
                        return Err(CliError::Usage(
                            "invalid value `0` for --iters: must be positive \
                             (see `spg bench-matmul --help`)"
                                .to_string(),
                        ));
                    }
                }
                "--fast" => fast = true,
                "--precision" => {
                    precision = parse_num("bench-matmul", "precision", a.value("precision")?)?
                }
                other => return Err(a.unknown(other)),
            }
        }
        if fast && precision == Precision::Int8 {
            return Err(CliError::Usage(
                "--fast applies only to the f32 kernels; drop it with --precision int8 \
                 (see `spg bench-matmul --help`)"
                    .to_string(),
            ));
        }
        Ok(Command::BenchMatmul(BenchMatmulArgs {
            n,
            k,
            m,
            iters,
            fast,
            precision,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Command, CliError> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        Command::parse(&args)
    }

    #[test]
    fn generate_full_invocation() {
        let cmd =
            parse("generate --setting medium --count 5 --seed 7 --scaled --out ds.json").unwrap();
        let Command::Generate(g) = cmd else {
            panic!("expected generate, got {cmd:?}")
        };
        assert_eq!(g.setting.slug(), "medium");
        assert_eq!(g.count, 5);
        assert_eq!(g.seed, 7);
        assert!(g.scaled);
        assert_eq!(g.out, PathBuf::from("ds.json"));
    }

    #[test]
    fn generate_defaults() {
        let Command::Generate(g) = parse("generate --setting small --out x.json").unwrap() else {
            panic!()
        };
        assert_eq!((g.count, g.seed, g.scaled), (20, 0, false));
    }

    #[test]
    fn generate_rejects_bad_setting() {
        let Err(CliError::Usage(msg)) = parse("generate --setting tiny --out x.json") else {
            panic!("bad setting must be a usage error")
        };
        assert!(msg.contains("`tiny`") && msg.contains("small"), "{msg}");
    }

    #[test]
    fn train_full_invocation() {
        let cmd = parse(
            "train --dataset ds.json --out m.json --epochs 3 --seed 2 --no-guide \
             --workers 4 --metrics ev.jsonl",
        )
        .unwrap();
        let Command::Train(t) = cmd else { panic!() };
        assert_eq!(t.dataset, PathBuf::from("ds.json"));
        assert_eq!(t.out, PathBuf::from("m.json"));
        assert_eq!((t.epochs, t.seed, t.guide), (3, 2, false));
        assert_eq!(t.workers, Some(4));
        assert_eq!(t.metrics, Some(PathBuf::from("ev.jsonl")));
    }

    #[test]
    fn train_defaults() {
        let Command::Train(t) = parse("train --dataset d --out m").unwrap() else {
            panic!()
        };
        assert_eq!((t.epochs, t.seed, t.guide), (10, 0, true));
        assert_eq!((t.workers, t.metrics), (None, None));
        assert_eq!(t.resume, None);
        assert_eq!((t.checkpoint_every, t.checkpoint_keep), (0, 3));
        assert_eq!(t.fault_policy, FaultPolicy::Abort);
        assert_eq!(t.inject_kill_after, None);
        assert_eq!((t.inject_nan_rewards, t.inject_worker_panics), (0.0, 0.0));
    }

    #[test]
    fn train_fault_tolerance_flags() {
        let cmd = parse(
            "train --dataset d --out m --resume m.epoch-4 --checkpoint-every 2 \
             --checkpoint-keep 5 --fault-policy rollback --inject-kill-after 4 \
             --inject-nan-rewards 0.25 --inject-worker-panics 0.5",
        )
        .unwrap();
        let Command::Train(t) = cmd else { panic!() };
        assert_eq!(t.resume, Some(PathBuf::from("m.epoch-4")));
        assert_eq!((t.checkpoint_every, t.checkpoint_keep), (2, 5));
        assert_eq!(t.fault_policy, FaultPolicy::RollbackToSnapshot);
        assert_eq!(t.inject_kill_after, Some(4));
        assert_eq!((t.inject_nan_rewards, t.inject_worker_panics), (0.25, 0.5));
    }

    #[test]
    fn train_rejects_bad_fault_policy_and_rates() {
        let Err(CliError::Usage(msg)) = parse("train --dataset d --out m --fault-policy yolo")
        else {
            panic!()
        };
        assert!(msg.contains("`yolo`") && msg.contains("rollback"), "{msg}");
        let Err(CliError::Usage(msg)) = parse("train --dataset d --out m --inject-nan-rewards 2")
        else {
            panic!()
        };
        assert!(msg.contains("probability"), "{msg}");
    }

    #[test]
    fn train_missing_required_flag_names_it() {
        let Err(CliError::Usage(msg)) = parse("train --dataset d") else {
            panic!()
        };
        assert!(msg.contains("--out is required"), "{msg}");
    }

    #[test]
    fn train_missing_value_names_the_flag() {
        let Err(CliError::Usage(msg)) = parse("train --dataset d --out m --epochs") else {
            panic!()
        };
        assert!(msg.contains("--epochs needs a value"), "{msg}");
    }

    #[test]
    fn train_bad_number_is_reported() {
        let Err(CliError::Usage(msg)) = parse("train --dataset d --out m --epochs ten") else {
            panic!()
        };
        assert!(msg.contains("`ten`") && msg.contains("--epochs"), "{msg}");
    }

    #[test]
    fn unknown_flag_is_an_error_naming_it() {
        let Err(CliError::Usage(msg)) = parse("train --dataset d --out m --bogus 1") else {
            panic!()
        };
        assert!(
            msg.contains("`--bogus`") && msg.contains("spg train"),
            "{msg}"
        );
    }

    #[test]
    fn evaluate_with_and_without_model() {
        let Command::Evaluate(e) = parse("evaluate --dataset d").unwrap() else {
            panic!()
        };
        assert_eq!(e.model, None);
        let Command::Evaluate(e) = parse("evaluate --dataset d --model m").unwrap() else {
            panic!()
        };
        assert_eq!(e.model, Some(PathBuf::from("m")));
    }

    #[test]
    fn allocate_parses_index() {
        let Command::Allocate(al) = parse("allocate --dataset d --model m --index 3").unwrap()
        else {
            panic!()
        };
        assert_eq!(al.index, 3);
        let Err(CliError::Usage(msg)) = parse("allocate --dataset d") else {
            panic!()
        };
        assert!(msg.contains("--model is required"), "{msg}");
    }

    #[test]
    fn report_takes_one_positional() {
        let Command::Report(r) = parse("report ev.jsonl").unwrap() else {
            panic!()
        };
        assert_eq!(r.metrics, PathBuf::from("ev.jsonl"));
        assert!(matches!(parse("report"), Err(CliError::Usage(_))));
        assert!(matches!(parse("report a b"), Err(CliError::Usage(_))));
        assert!(matches!(
            parse("report --frobnicate"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_everywhere() {
        assert!(matches!(parse("--help"), Err(CliError::Help(_))));
        assert!(matches!(parse("help"), Err(CliError::Help(_))));
        for cmd in [
            "generate",
            "train",
            "evaluate",
            "allocate",
            "report",
            "serve",
            "realloc",
            "bench-serve",
        ] {
            let Err(CliError::Help(text)) = parse(&format!("{cmd} --help")) else {
                panic!("{cmd} --help must be a help error")
            };
            assert!(text.contains(&format!("spg {cmd}")), "{cmd}: {text}");
        }
    }

    #[test]
    fn serve_defaults_and_full_invocation() {
        let Command::Serve(s) = parse("serve --model m.json").unwrap() else {
            panic!()
        };
        assert_eq!(s.model, PathBuf::from("m.json"));
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.setting.slug(), "small");
        assert_eq!(s.replicas, 1);
        assert_eq!((s.max_batch, s.queue, s.cache), (8, 64, 256));
        assert_eq!((s.timeout_ms, s.seed), (5000, 7));
        assert_eq!((s.workers, s.metrics), (None, None));
        assert_eq!(s.precision, Precision::F32, "int8 must be opt-in");
        assert_eq!(s.shed_watermark, 0);
        assert_eq!(
            (
                s.inject_replica_panics,
                s.inject_replica_kills,
                s.inject_replica_stalls,
                s.inject_conn_drops,
                s.inject_torn_writes
            ),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );

        let Command::Serve(s) = parse(
            "serve --model m --addr 0.0.0.0:9000 --setting large --replicas 2 --max-batch 4 \
             --queue 16 --timeout-ms 250 --cache 0 --workers 2 --seed 5 --metrics t.jsonl \
             --precision int8",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.addr, "0.0.0.0:9000");
        assert_eq!(s.setting.slug(), "large");
        assert_eq!(s.replicas, 2);
        assert_eq!((s.max_batch, s.queue, s.cache), (4, 16, 0));
        assert_eq!((s.timeout_ms, s.seed), (250, 5));
        assert_eq!(s.workers, Some(2));
        assert_eq!(s.metrics, Some(PathBuf::from("t.jsonl")));
        assert_eq!(s.precision, Precision::Int8);

        let Err(CliError::Usage(msg)) = parse("serve") else {
            panic!()
        };
        assert!(msg.contains("--model is required"), "{msg}");
        let Err(CliError::Usage(msg)) = parse("serve --model m --replicas 0") else {
            panic!()
        };
        assert!(msg.contains("--replicas"), "{msg}");
        let Err(CliError::Usage(msg)) = parse("serve --model m --precision fp16") else {
            panic!()
        };
        assert!(msg.contains("`fp16`") && msg.contains("int8"), "{msg}");
    }

    #[test]
    fn bench_serve_defaults_and_full_invocation() {
        let Command::BenchServe(b) = parse("bench-serve --addr 127.0.0.1:9000").unwrap() else {
            panic!()
        };
        assert_eq!(b.addr, "127.0.0.1:9000");
        assert_eq!(b.connections, vec![4]);
        assert_eq!(b.replicas, 1);
        assert_eq!((b.requests, b.graphs), (64, 8));
        assert_eq!((b.seed, b.rate, b.shutdown), (0, 200.0, false));
        assert!(!b.drift);
        assert_eq!(b.precision, Precision::F32);
        assert_eq!(b.out, PathBuf::from("BENCH_serve.json"));

        let Command::BenchServe(b) = parse(
            "bench-serve --addr h:1 --connections 2 --replicas 2 --requests 10 --graphs 3 \
             --seed 9 --rate 50 --shutdown --out r.json --serve-metrics m.jsonl \
             --precision int8",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(b.connections, vec![2]);
        assert_eq!(b.replicas, 2);
        assert_eq!((b.requests, b.graphs), (10, 3));
        assert_eq!((b.seed, b.rate, b.shutdown), (9, 50.0, true));
        assert_eq!(b.out, PathBuf::from("r.json"));
        assert_eq!(b.serve_metrics, Some(PathBuf::from("m.jsonl")));
        assert_eq!(b.precision, Precision::Int8);

        let Err(CliError::Usage(msg)) = parse("bench-serve --addr h:1 --rate -3") else {
            panic!()
        };
        assert!(msg.contains("positive"), "{msg}");
        let Err(CliError::Usage(msg)) = parse("bench-serve") else {
            panic!()
        };
        assert!(msg.contains("--addr is required"), "{msg}");
    }

    #[test]
    fn bench_serve_drift_flag() {
        let Command::BenchServe(b) = parse("bench-serve --addr h:1 --drift --shutdown").unwrap()
        else {
            panic!()
        };
        assert!(b.drift && b.shutdown);
        assert!(!b.chaos);
    }

    #[test]
    fn bench_serve_chaos_flag() {
        let Command::BenchServe(b) = parse("bench-serve --addr h:1 --chaos").unwrap() else {
            panic!()
        };
        assert!(b.chaos && !b.drift);
        let Err(CliError::Usage(msg)) = parse("bench-serve --addr h:1 --chaos --drift") else {
            panic!("chaos+drift must be a usage error")
        };
        assert!(msg.contains("mutually exclusive"), "{msg}");
    }

    #[test]
    fn serve_fault_injection_flags() {
        let Command::Serve(s) = parse(
            "serve --model m --shed-watermark 32 --inject-replica-panics 0.05 \
             --inject-replica-kills 0.02 --inject-replica-stalls 0.1 \
             --inject-conn-drops 0.04 --inject-torn-writes 0.03",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.shed_watermark, 32);
        assert_eq!(s.inject_replica_panics, 0.05);
        assert_eq!(s.inject_replica_kills, 0.02);
        assert_eq!(s.inject_replica_stalls, 0.1);
        assert_eq!(s.inject_conn_drops, 0.04);
        assert_eq!(s.inject_torn_writes, 0.03);

        let Err(CliError::Usage(msg)) = parse("serve --model m --inject-conn-drops 1.5") else {
            panic!("out-of-range rate must be a usage error")
        };
        assert!(
            msg.contains("probability") && msg.contains("spg serve"),
            "{msg}"
        );
    }

    #[test]
    fn realloc_defaults_drift_kinds_and_errors() {
        let Command::Realloc(r) = parse("realloc --addr h:1").unwrap() else {
            panic!()
        };
        assert_eq!(r.addr, "h:1");
        assert_eq!((r.seed, r.drift, r.shutdown), (0, None, false));

        let Command::Realloc(r) =
            parse("realloc --addr h:1 --seed 3 --drift device-loss --shutdown").unwrap()
        else {
            panic!()
        };
        assert_eq!(r.seed, 3);
        assert_eq!(r.drift, Some(DriftKind::DeviceLoss));
        assert!(r.shutdown);

        let Err(CliError::Usage(msg)) = parse("realloc") else {
            panic!()
        };
        assert!(msg.contains("--addr is required"), "{msg}");
        let Err(CliError::Usage(msg)) = parse("realloc --addr h:1 --drift sideways") else {
            panic!()
        };
        assert!(
            msg.contains("`sideways`") && msg.contains("hot-swap"),
            "{msg}"
        );
    }

    #[test]
    fn bench_serve_connection_sweeps() {
        let Command::BenchServe(b) = parse("bench-serve --addr h:1 --connections 1,4,16").unwrap()
        else {
            panic!()
        };
        assert_eq!(b.connections, vec![1, 4, 16]);

        for bad in [
            "bench-serve --addr h:1 --connections 0",
            "bench-serve --addr h:1 --connections 2,0",
            "bench-serve --addr h:1 --connections ,",
            "bench-serve --addr h:1 --replicas 0",
        ] {
            assert!(
                matches!(parse(bad), Err(CliError::Usage(_))),
                "`{bad}` should be a usage error"
            );
        }
    }

    #[test]
    fn bench_matmul_shapes_and_errors() {
        let Command::BenchMatmul(b) = parse("bench-matmul").unwrap() else {
            panic!()
        };
        assert_eq!((b.n, b.k, b.m), (128, 128, 128));
        assert_eq!((b.iters, b.fast), (50, false));

        let Command::BenchMatmul(b) = parse("bench-matmul --shape 64").unwrap() else {
            panic!()
        };
        assert_eq!((b.n, b.k, b.m), (64, 64, 64));
        let Command::BenchMatmul(b) = parse("bench-matmul --shape 320x28").unwrap() else {
            panic!()
        };
        assert_eq!((b.n, b.k, b.m), (320, 28, 320));
        let Command::BenchMatmul(b) =
            parse("bench-matmul --shape 320x28x24 --iters 7 --fast").unwrap()
        else {
            panic!()
        };
        assert_eq!((b.n, b.k, b.m), (320, 28, 24));
        assert_eq!((b.iters, b.fast), (7, true));
        assert_eq!(b.precision, Precision::F32);

        let Command::BenchMatmul(b) = parse("bench-matmul --precision int8 --shape 64").unwrap()
        else {
            panic!()
        };
        assert_eq!(b.precision, Precision::Int8);
        assert_eq!((b.n, b.k, b.m), (64, 64, 64));

        for bad in [
            "bench-matmul --shape 0x3x3",
            "bench-matmul --shape 1x2x3x4",
            "bench-matmul --shape axb",
            "bench-matmul --iters 0",
            "bench-matmul --fast --precision int8",
            "bench-matmul --precision fp16",
        ] {
            assert!(
                matches!(parse(bad), Err(CliError::Usage(_))),
                "`{bad}` should be a usage error"
            );
        }
    }

    #[test]
    fn no_args_and_unknown_command_are_usage_errors() {
        assert!(matches!(Command::parse(&[]), Err(CliError::Usage(_))));
        let Err(CliError::Usage(msg)) = parse("frobnicate") else {
            panic!()
        };
        assert!(msg.contains("`frobnicate`"), "{msg}");
    }
}
