//! # spg — stream processing graph allocation
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of
//! *"Generalizable Reinforcement Learning-Based Coarsening Model for Resource
//! Allocation over Large and Diverse Stream Processing Graphs"* (IPDPS 2023).
//!
//! The sub-crates:
//!
//! * [`graph`] — stream DAGs, coarsenings, placements, cluster specs.
//! * [`gen`] — the paper's recursive synthetic graph generator (Fig. 4).
//! * [`sim`] — CEPSim-like throughput simulators (analytic + discrete-time).
//! * [`partition`] — a Metis-style multilevel k-way partitioner.
//! * [`nn`] — minimal reverse-mode autograd for the CPU RL models.
//! * [`model`] — the paper's contribution: the edge-collapsing RL coarsening
//!   model and coarsening-partitioning framework.
//! * [`baselines`] — Graph-enc-dec, GDP-lite, Hierarchical, heuristics.
//! * [`eval`] — CDF/AUC metrics and the experiment harness.
//! * [`obs`] — opt-in telemetry: spans, counters, JSONL event streams.
//! * [`serve`] — long-running allocation service (batched, cached
//!   inference over a JSONL/TCP protocol) and its load generator.
//!
//! The [`cli`] module holds the typed argument parser behind the `spg`
//! binary.

pub mod cli;

pub use spg_baselines as baselines;
pub use spg_core as model;
pub use spg_eval as eval;
pub use spg_gen as gen;
pub use spg_graph as graph;
pub use spg_nn as nn;
pub use spg_obs as obs;
pub use spg_partition as partition;
pub use spg_serve as serve;
pub use spg_sim as sim;

pub use spg_graph::{Allocator, ClusterSpec, Placement, StreamGraph};
