#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, root-package tests.
# Mirrors .github/workflows/ci.yml so it can run locally or in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# End-to-end smoke: generate -> train (with telemetry) -> report on a tiny
# dataset, exercising the CLI surface and the JSONL metrics pipeline.
SPG=target/release/spg
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$SPG" generate --setting small --scaled --count 3 --seed 1 --out "$SMOKE_DIR/ds.json"
"$SPG" train --dataset "$SMOKE_DIR/ds.json" --epochs 1 --seed 1 \
    --metrics "$SMOKE_DIR/metrics.jsonl" --out "$SMOKE_DIR/model.json"
"$SPG" report "$SMOKE_DIR/metrics.jsonl"
"$SPG" evaluate --dataset "$SMOKE_DIR/ds.json" --model "$SMOKE_DIR/model.json"
echo "e2e smoke OK"

# Fault-tolerance: the dedicated injection/resume test suite, then a
# kill-and-resume smoke through the binary — a run killed after epoch 2
# and resumed from its snapshot must produce a checkpoint byte-identical
# to an uninterrupted 4-epoch run.
cargo test -q --test fault_tolerance
"$SPG" train --dataset "$SMOKE_DIR/ds.json" --epochs 4 --seed 2 \
    --out "$SMOKE_DIR/straight.json"
if "$SPG" train --dataset "$SMOKE_DIR/ds.json" --epochs 4 --seed 2 \
    --checkpoint-every 2 --inject-kill-after 2 --out "$SMOKE_DIR/crashed.json"; then
    echo "expected the injected crash to exit nonzero" >&2
    exit 1
fi
test ! -e "$SMOKE_DIR/crashed.json"   # died before the final save
"$SPG" train --dataset "$SMOKE_DIR/ds.json" --epochs 4 --seed 2 \
    --checkpoint-every 2 --resume "$SMOKE_DIR/crashed.json.epoch-2" \
    --out "$SMOKE_DIR/crashed.json"
cmp "$SMOKE_DIR/straight.json" "$SMOKE_DIR/crashed.json"
echo "kill-and-resume smoke OK"

# Serving: a 1-replica and a 2-replica server, each on a random port,
# hammered by the open-loop load generator (the 2-replica run sweeps
# connection counts concurrently against one server instance).
# bench-serve exits nonzero unless all 64/64 responses parse and
# identical requests get bitwise-identical placements; `wait` under
# `set -e` requires the shutdown-triggered drain to reach a clean exit
# 0. Cross-replica bitwise identity and the 1000-idle-connection soak
# are pinned by tests/serve_cluster.rs in the `cargo test` run above.
# The sweep matches the checked-in BENCH_serve.json rows so the perf
# gate below compares like with like. Each smoke gets its own metrics
# file so one server's drained telemetry never pollutes another's
# encode/rollout time split.
serve_smoke() {
    local replicas=$1 connections=$2 precision=${3:-f32}
    local metrics="$SMOKE_DIR/serve_metrics_${precision}_r${replicas}.jsonl"
    "$SPG" serve --model "$SMOKE_DIR/model.json" --addr 127.0.0.1:0 \
        --replicas "$replicas" --precision "$precision" \
        --metrics "$metrics" \
        > "$SMOKE_DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    ADDR=""
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log")
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$ADDR" ]; then
        echo "spg serve never printed its listen address" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    "$SPG" bench-serve --addr "$ADDR" --replicas "$replicas" \
        --connections "$connections" --requests 64 \
        --graphs 8 --rate 200 --seed 0 --shutdown \
        --precision "$precision" \
        --serve-metrics "$metrics" \
        --out "$SMOKE_DIR/bench_serve.json"
    wait "$SERVE_PID"   # clean drain must exit 0
}
serve_smoke 1 4
serve_smoke 2 2,4
echo "serve smoke OK"

# Quantized serving: the placement-agreement harness (int8 vs f32 over
# the seeded corpus, pinned agreement + reward-ratio floors), then an
# int8 serve → bench → drain smoke writing the `q8` row the perf gate
# compares. int8 is opt-in: everything above ran the default f32 path.
cargo test -q --test quantized_agreement
serve_smoke 1 4 int8
echo "int8 serve smoke OK"

# Realloc smoke: a fresh server, the `spg realloc` demo client (alloc ->
# drift -> warm realloc), then the drift bench, which replays an empty
# delta (must reproduce the prior response byte-for-byte), races the
# warm-start realloc against a full re-allocation per scenario, and
# merges the `drift` row into the bench_serve.json the perf gate below
# reads. bench-serve --drift exits nonzero if any scenario errors, no
# scenario takes the warm path, or the empty-delta replay diverges.
"$SPG" serve --model "$SMOKE_DIR/model.json" --addr 127.0.0.1:0 \
    --metrics "$SMOKE_DIR/drift_metrics.jsonl" \
    > "$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "spg serve never printed its listen address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
"$SPG" realloc --addr "$ADDR" --seed 1
"$SPG" realloc --addr "$ADDR" --seed 2 --drift device-loss
"$SPG" bench-serve --addr "$ADDR" --drift --graphs 4 --seed 0 \
    --shutdown --serve-metrics "$SMOKE_DIR/drift_metrics.jsonl" \
    --out "$SMOKE_DIR/bench_serve.json"
wait "$SERVE_PID"   # clean drain must exit 0
echo "realloc smoke OK"

# Chaos smoke: a 2-replica server with seeded fault injection at every
# serve site — replica panics, replica kills (respawn from checkpoint),
# dropped and torn connection writes — audited by bench-serve --chaos,
# which exits nonzero unless every request got exactly one well-formed
# response or a named error (errors are expected; hangs and accounting
# gaps are not). The server process itself must still drain to exit 0.
"$SPG" serve --model "$SMOKE_DIR/model.json" --addr 127.0.0.1:0 \
    --replicas 2 \
    --metrics "$SMOKE_DIR/chaos_metrics.jsonl" \
    --inject-replica-panics 0.05 --inject-replica-kills 0.02 \
    --inject-replica-stalls 0.02 \
    --inject-conn-drops 0.05 --inject-torn-writes 0.05 \
    > "$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "spg serve never printed its listen address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
"$SPG" bench-serve --addr "$ADDR" --chaos --replicas 2 --connections 4 \
    --requests 64 --graphs 8 --rate 200 --seed 0 --shutdown \
    --serve-metrics "$SMOKE_DIR/chaos_metrics.jsonl" \
    --out "$SMOKE_DIR/bench_serve.json"
wait "$SERVE_PID"   # a chaos-drilled server must still drain to exit 0
echo "chaos smoke OK"

# Perf-regression gate: re-measure the criterion microbenches (fast
# sampling) plus the serve latency above, then compare against the
# checked-in baselines. More than 25% slower on any tracked metric fails
# the gate on multi-core machines; on 1-core containers (or with
# SPG_PERF_STRICT=0) it only warns, because single-core microbench noise
# would make a hard gate flaky. SPG_PERF_STRICT=1 always enforces.
GATE=target/release/perf_gate
cp BENCH_train.json "$SMOKE_DIR/baseline_train.json"
SPG_BENCH_FAST=1 cargo bench -q -p spg-bench --bench train_epoch
mv BENCH_train.json "$SMOKE_DIR/new_train.json"
cp "$SMOKE_DIR/baseline_train.json" BENCH_train.json
"$GATE" --baseline BENCH_train.json --new "$SMOKE_DIR/new_train.json"
"$GATE" --baseline BENCH_serve.json --new "$SMOKE_DIR/bench_serve.json" \
    --metric latency_p50_ms --metric latency_p99_ms
echo "perf gate OK"
