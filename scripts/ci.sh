#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, root-package tests.
# Mirrors .github/workflows/ci.yml so it can run locally or in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
