//! The int8 serving path's acceptance contract: quantized inference is
//! deterministic, and its end-to-end placements agree with f32 on at
//! least a pinned fraction of a seeded corpus, never losing more than a
//! pinned sliver of reward on the rest. Placements are compared through
//! the same decode → place → simulate pipeline the serve replicas run,
//! over the paper-setting corpus plus the degenerate pins (single node,
//! edgeless pair, single edge) from `tests/infer.rs`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{
    Channel, ClusterSpec, GraphFeatures, Operator, Placement, StreamGraph, StreamGraphBuilder,
    TupleRates,
};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{
    CoarsePlacer, CoarsenConfig, CoarsenModel, CoarseningPolicy, DecodeMode, InferenceScratch,
    QuantScratch,
};

/// Exact-placement agreement the int8 path must reach over this corpus.
/// Measured 5/10 on the seeded corpus (both paths are bitwise
/// deterministic, so the measurement is machine-independent); pinned one
/// graph of slack below so a kernel or scale-selection change that
/// degrades agreement fails loudly.
const MIN_AGREEMENT: f64 = 0.4;
/// Worst tolerated per-graph reward ratio int8/f32 where placements
/// differ. Measured worst case 0.9433; anything below this pin means
/// quantization noise started costing real throughput.
const MIN_REWARD_RATIO: f64 = 0.92;
/// Collapse probabilities must stay this close to f32 everywhere —
/// int8's quantization error bound for these layer widths.
const MAX_PROB_DIFF: f32 = 0.05;

fn corpus() -> Vec<(StreamGraph, ClusterSpec, f64)> {
    let mut graphs = Vec::new();
    for setting in [Setting::Small, Setting::Medium, Setting::Large] {
        let spec = DatasetSpec::scaled_down(setting);
        let cluster = spec.cluster();
        for seed in 0..3u64 {
            graphs.push((
                spg::gen::generate_graph(&spec, seed),
                cluster,
                spec.source_rate,
            ));
        }
    }
    // Degenerate pins: single node (no edges), edgeless pair, single edge.
    let cluster = ClusterSpec::paper_medium(3);
    let mut one = StreamGraphBuilder::new();
    one.add_node(Operator::new(5.0));
    graphs.push((one.finish().unwrap(), cluster, 1e4));
    let mut pair = StreamGraphBuilder::new();
    pair.add_node(Operator::new(1.0));
    pair.add_node(Operator::new(2.0));
    graphs.push((pair.finish().unwrap(), cluster, 1e4));
    let mut edge = StreamGraphBuilder::new();
    let a = edge.add_node(Operator::new(100.0));
    let b = edge.add_node(Operator::new(200.0));
    edge.add_edge(a, b, Channel::new(10.0)).unwrap();
    graphs.push((edge.finish().unwrap(), cluster, 1e4));
    graphs
}

/// A briefly-trained model, the same recipe as the serve-cluster
/// harness: serving always runs a trained checkpoint, and training
/// sharpens collapse probabilities away from the 0.5 decision
/// threshold, which is what makes int8-vs-f32 agreement a meaningful
/// contract rather than a coin flip on random weights.
fn model() -> CoarsenModel {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, 9 + s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = spg::model::ReinforceTrainer::builder(model, MetisCoarsePlacer::new(9))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(spg::model::TrainOptions::new().seed(9))
        .build();
    trainer.train_epoch();
    trainer.into_model()
}

/// The serve replica's rollout for one graph: greedy decode, coarse
/// placement, lift, analytic reward.
fn rollout(
    model: &CoarsenModel,
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    rate: f64,
    probs: &[f32],
) -> (Vec<u32>, f64) {
    let policy = CoarseningPolicy::from_config(&model.config);
    let placer = MetisCoarsePlacer::new(7);
    let rates = TupleRates::compute(graph, rate);
    // Greedy decoding ignores the RNG, matching the serve path.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let decisions = policy.decode(probs, DecodeMode::Greedy, &mut rng);
    let coarsening = policy.apply(graph, &rates, cluster, &decisions, probs);
    let coarse = placer.place_coarse(&coarsening.coarse, cluster);
    let placement = Placement::lift(&coarse, &coarsening.node_map);
    let relative =
        spg::sim::reward::relative_throughput_with_rates(graph, cluster, &placement, &rates);
    (placement.as_slice().to_vec(), relative)
}

#[test]
fn quantized_probs_stay_within_quantization_error_of_f32() {
    let model = model();
    let qmodel = model.quantize();
    let mut scratch = InferenceScratch::new();
    let mut qscratch = QuantScratch::new();
    for (i, (graph, cluster, rate)) in corpus().iter().enumerate() {
        let feats = GraphFeatures::extract(graph, cluster, *rate);
        let f32_probs = model.infer_probs(graph, &feats, &mut scratch);
        let q_probs = qmodel.infer_probs(graph, &feats, &mut scratch, &mut qscratch);
        assert_eq!(q_probs.len(), graph.num_edges(), "graph {i} length");
        let worst = f32_probs
            .iter()
            .zip(&q_probs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= MAX_PROB_DIFF,
            "graph {i} ({} nodes, {} edges): max prob diff {worst} exceeds {MAX_PROB_DIFF}",
            graph.num_nodes(),
            graph.num_edges()
        );
    }
}

#[test]
fn quantized_inference_is_deterministic_across_fresh_state() {
    let model = model();
    // Two independent quantizations of the same weights plus fresh
    // scratch state must produce bitwise-identical probabilities — the
    // property that makes int8 placements cacheable and replica-count
    // independent.
    let qa = model.quantize();
    let qb = model.quantize();
    let mut scratch_a = InferenceScratch::new();
    let mut scratch_b = InferenceScratch::new();
    let mut qscratch_a = QuantScratch::new();
    let mut qscratch_b = QuantScratch::new();
    for (i, (graph, cluster, rate)) in corpus().iter().enumerate() {
        let feats = GraphFeatures::extract(graph, cluster, *rate);
        let first = qa.infer_probs(graph, &feats, &mut scratch_a, &mut qscratch_a);
        let second = qb.infer_probs(graph, &feats, &mut scratch_b, &mut qscratch_b);
        assert_eq!(
            first.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "graph {i}: quantized inference not deterministic"
        );
    }
}

#[test]
fn quantized_placements_agree_with_f32_within_pinned_bounds() {
    let model = model();
    let qmodel = model.quantize();
    let mut scratch = InferenceScratch::new();
    let mut qscratch = QuantScratch::new();
    let corpus = corpus();
    let mut agree = 0usize;
    let mut edged = 0usize;
    for (i, (graph, cluster, rate)) in corpus.iter().enumerate() {
        let feats = GraphFeatures::extract(graph, cluster, *rate);
        let f32_probs = model.infer_probs(graph, &feats, &mut scratch);
        let q_probs = qmodel.infer_probs(graph, &feats, &mut scratch, &mut qscratch);
        let (f32_placement, f32_reward) = rollout(&model, graph, cluster, *rate, &f32_probs);
        let (q_placement, q_reward) = rollout(&model, graph, cluster, *rate, &q_probs);
        if graph.num_edges() == 0 {
            // Edgeless graphs have no collapse decisions: the pipelines
            // are probability-independent and must agree exactly.
            assert_eq!(
                q_placement, f32_placement,
                "graph {i}: edgeless placement diverged"
            );
            continue;
        }
        edged += 1;
        if q_placement == f32_placement {
            agree += 1;
        } else {
            assert!(
                f32_reward <= 0.0 || q_reward / f32_reward >= MIN_REWARD_RATIO,
                "graph {i} ({} nodes): int8 reward {q_reward:.4} vs f32 {f32_reward:.4} \
                 below ratio {MIN_REWARD_RATIO}",
                graph.num_nodes()
            );
        }
    }
    let fraction = agree as f64 / edged as f64;
    println!("agreement: {agree}/{edged} = {fraction:.3}");
    assert!(
        fraction >= MIN_AGREEMENT,
        "int8 placements agree with f32 on only {agree}/{edged} graphs \
         (pinned floor {MIN_AGREEMENT})"
    );
}

#[test]
fn quantized_batch_matches_solo_quantized_inference() {
    let model = model();
    let qmodel = model.quantize();
    let corpus = corpus();
    let feats: Vec<GraphFeatures> = corpus
        .iter()
        .map(|(g, c, r)| GraphFeatures::extract(g, c, *r))
        .collect();
    let items: Vec<(&StreamGraph, &GraphFeatures)> =
        corpus.iter().map(|(g, _, _)| g).zip(&feats).collect();
    let keys: Vec<u64> = (0..items.len() as u64).collect();

    let mut union = spg::model::BatchUnion::new();
    let mut scratch = InferenceScratch::new();
    let mut qscratch = QuantScratch::new();
    let batched = qmodel.predict_probs_batch_with(
        &mut union,
        &mut scratch,
        &mut qscratch,
        Some(&keys),
        &items,
    );
    for (i, ((graph, _, _), probs)) in corpus.iter().zip(&batched).enumerate() {
        let solo = qmodel.infer_probs(graph, &feats[i], &mut scratch, &mut qscratch);
        assert_eq!(
            probs.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            solo.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "graph {i}: batched quantized inference diverged from solo"
        );
    }
}
