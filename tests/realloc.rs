//! Integration tests for incremental re-allocation over the wire:
//! empty-delta byte-identity, warm-start determinism against the
//! library decision, the high-churn full-pipeline fallback, degenerate
//! deltas, and protocol-version enforcement.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{drift_scenario, DatasetSpec, Setting};
use spg::graph::wire::{shutdown_line, AllocRequest, ReallocRequest, WireResponse};
use spg::graph::{GraphDelta, Operator, StreamGraph, StreamGraphBuilder};
use spg::model::checkpoint::Checkpoint;
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::obs::TelemetrySink;
use spg::partition::{realloc_decide, IncrementalConfig, ReallocDecision};
use spg::serve::{ServeConfig, ServeReport, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn quick_checkpoint(seed: u64, extra_graphs: Vec<StreamGraph>) -> Checkpoint {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let mut graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, seed + s))
        .collect();
    graphs.extend(extra_graphs);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(seed))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(seed))
        .build();
    trainer.train_epoch();
    trainer.checkpoint()
}

fn spawn_server(
    cfg: ServeConfig,
    ck: Checkpoint,
) -> (String, std::thread::JoinHandle<ServeReport>) {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let sink = TelemetrySink::disabled();
        server
            .run(ck, spec.cluster(), spec.source_rate, &sink)
            .expect("serve run")
    });
    (addr, handle)
}

struct Client {
    out: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("read timeout");
        Self {
            out: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send_line(&mut self, line: &str) {
        self.out.write_all(line.as_bytes()).expect("write");
        self.out.write_all(b"\n").expect("write newline");
        self.out.flush().expect("flush");
    }

    /// Raw response line, trimmed — for byte-identity assertions.
    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim().to_string()
    }

    fn read_response(&mut self) -> WireResponse {
        let line = self.read_line();
        WireResponse::parse(&line).expect("parse response")
    }

    fn shutdown(mut self) {
        self.send_line(shutdown_line());
    }
}

fn alloc_v2(id: &str, graph: &StreamGraph) -> AllocRequest {
    AllocRequest {
        id: id.to_string(),
        graph: graph.clone(),
        source_rate: None,
        devices: None,
        v: Some(2),
        deadline_ms: None,
    }
}

fn realloc_v2(id: &str, graph: &StreamGraph, prior: &[u32], delta: GraphDelta) -> ReallocRequest {
    ReallocRequest {
        id: id.to_string(),
        graph: graph.clone(),
        prior_placement: prior.to_vec(),
        delta,
        source_rate: None,
        devices: None,
        v: Some(2),
        deadline_ms: None,
    }
}

#[test]
fn empty_delta_realloc_reproduces_prior_response_bytes() {
    let ck = quick_checkpoint(21, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 77);

    let mut client = Client::connect(&addr);
    client.send_line(&alloc_v2("same", &g).to_line());
    let prior_line = client.read_line();
    let WireResponse::Ok(prior) = WireResponse::parse(&prior_line).expect("parse") else {
        panic!("alloc must succeed: {prior_line}")
    };

    // Same id, empty delta: the response must be the prior response,
    // byte for byte — same placement, same relative-throughput bits,
    // no cache flag, no realloc marker.
    client.send_line(&realloc_v2("same", &g, &prior.placement, GraphDelta::default()).to_line());
    let replay_line = client.read_line();
    assert_eq!(
        replay_line, prior_line,
        "empty-delta realloc must reproduce the prior response bytes"
    );
    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 2);
    assert_eq!(report.reallocs, 1);
    assert_eq!(report.warm_starts, 0, "empty delta is not a warm start");
}

#[test]
fn sub_threshold_drift_pins_the_library_warm_start() {
    let ck = quick_checkpoint(22, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let cluster = spec.cluster();
    let inc = IncrementalConfig::default();

    let mut client = Client::connect(&addr);
    let mut warm_seen = 0;
    for seed in 0..6u64 {
        let g = spg::gen::generate_graph(&spec, 200 + seed);
        client.send_line(&alloc_v2(&format!("p{seed}"), &g).to_line());
        let WireResponse::Ok(prior) = client.read_response() else {
            panic!("alloc {seed} must succeed")
        };

        let scenario = drift_scenario(&g, cluster.devices, spec.source_rate, seed);
        client.send_line(
            &realloc_v2(
                &format!("r{seed}"),
                &g,
                &prior.placement,
                scenario.delta.clone(),
            )
            .to_line(),
        );
        let WireResponse::Ok(resp) = client.read_response() else {
            panic!("realloc {seed} must succeed")
        };

        // The server must answer exactly what the library decides for
        // the same inputs — the wire adds no nondeterminism.
        let decision = realloc_decide(
            &g,
            &prior.placement,
            &scenario.delta,
            &cluster,
            spec.source_rate,
            &inc,
        )
        .expect("drift deltas are valid");
        match decision {
            ReallocDecision::Warm {
                placement,
                relative,
                ..
            } => {
                warm_seen += 1;
                assert_eq!(resp.realloc.as_deref(), Some("warm"), "seed {seed}");
                assert_eq!(resp.placement, placement.as_slice(), "seed {seed}");
                assert_eq!(
                    resp.relative_throughput.to_bits(),
                    relative.to_bits(),
                    "seed {seed}"
                );
            }
            ReallocDecision::Unchanged { relative } => {
                assert_eq!(resp.realloc, None, "seed {seed}");
                assert_eq!(resp.placement, prior.placement, "seed {seed}");
                assert_eq!(
                    resp.relative_throughput.to_bits(),
                    relative.to_bits(),
                    "seed {seed}"
                );
            }
            ReallocDecision::Full { .. } => {
                panic!("drift scenarios are sub-threshold by construction (seed {seed})")
            }
        }
        assert!(
            resp.relative_throughput.is_finite() && resp.relative_throughput >= 0.0,
            "seed {seed}: relative {}",
            resp.relative_throughput
        );
    }
    assert!(
        warm_seen >= 2,
        "expected several warm starts, got {warm_seen}"
    );
    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.reallocs, 6);
    assert_eq!(report.warm_starts, warm_seen);
    assert_eq!(report.errors, 0);
}

#[test]
fn high_churn_fallback_is_bitwise_identical_to_plain_alloc() {
    let ck = quick_checkpoint(23, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 301);

    // Enough added nodes to cross the churn threshold.
    let extra = (g.num_nodes() + g.num_edges()) / 2 + 1;
    let delta = GraphDelta {
        add_nodes: (0..extra).map(|i| Operator::new(40.0 + i as f64)).collect(),
        ..GraphDelta::default()
    };
    let mutated = delta.apply(&g).expect("delta applies").graph;

    let mut client = Client::connect(&addr);
    client.send_line(&alloc_v2("prior", &g).to_line());
    let WireResponse::Ok(prior) = client.read_response() else {
        panic!("alloc must succeed")
    };
    client.send_line(&realloc_v2("fb", &g, &prior.placement, delta).to_line());
    let WireResponse::Ok(fallback) = client.read_response() else {
        panic!("realloc must succeed")
    };
    assert_eq!(fallback.realloc.as_deref(), Some("full"));

    // The fallback must be indistinguishable from allocating the
    // mutated graph directly.
    client.send_line(&alloc_v2("direct", &mutated).to_line());
    let WireResponse::Ok(direct) = client.read_response() else {
        panic!("direct alloc must succeed")
    };
    assert_eq!(fallback.placement, direct.placement);
    assert_eq!(
        fallback.relative_throughput.to_bits(),
        direct.relative_throughput.to_bits()
    );
    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.warm_starts, 0);
    assert_eq!(report.errors, 0);
}

#[test]
fn degenerate_graphs_and_deltas_round_trip() {
    let one = {
        let mut b = StreamGraphBuilder::new();
        b.add_node(Operator::new(150.0));
        b.finish().expect("1-node graph is valid")
    };
    let edgeless = {
        let mut b = StreamGraphBuilder::new();
        for i in 0..3 {
            b.add_node(Operator::new(100.0 + i as f64));
        }
        b.finish().expect("edgeless graph is valid")
    };
    let ck = quick_checkpoint(24, vec![one.clone(), edgeless.clone()]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let mut client = Client::connect(&addr);

    // 1-node graph, workload-only delta.
    client.send_line(&alloc_v2("one", &one).to_line());
    let WireResponse::Ok(p1) = client.read_response() else {
        panic!("1-node alloc must succeed")
    };
    let bump = GraphDelta {
        set_ipt: vec![(0, 300.0)],
        ..GraphDelta::default()
    };
    client.send_line(&realloc_v2("one-r", &one, &p1.placement, bump).to_line());
    let WireResponse::Ok(r1) = client.read_response() else {
        panic!("1-node realloc must succeed")
    };
    assert_eq!(r1.placement.len(), 1);

    // 0-edge graph, node-add delta (still no edges).
    client.send_line(&alloc_v2("flat", &edgeless).to_line());
    let WireResponse::Ok(p2) = client.read_response() else {
        panic!("edgeless alloc must succeed")
    };
    let grow = GraphDelta {
        add_nodes: vec![Operator::new(90.0)],
        ..GraphDelta::default()
    };
    client.send_line(&realloc_v2("flat-r", &edgeless, &p2.placement, grow).to_line());
    let WireResponse::Ok(r2) = client.read_response() else {
        panic!("edgeless realloc must succeed")
    };
    assert_eq!(r2.placement.len(), 4);

    // Deleting the only node leaves an unusable graph: a named error,
    // not a dropped connection.
    let erase = GraphDelta {
        remove_nodes: vec![0],
        ..GraphDelta::default()
    };
    client.send_line(&realloc_v2("erase", &one, &p1.placement, erase).to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("emptying delta must be an error")
    };
    assert_eq!(e.error, "invalid-graph");
    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.reallocs, 3);
    assert_eq!(report.errors, 1);
}

#[test]
fn protocol_and_shape_violations_are_named_errors() {
    let ck = quick_checkpoint(25, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 55);

    let mut client = Client::connect(&addr);
    client.send_line(&alloc_v2("prior", &g).to_line());
    let WireResponse::Ok(prior) = client.read_response() else {
        panic!("alloc must succeed")
    };

    // Realloc without v:2 is refused before any work happens.
    let mut v1 = realloc_v2("v1", &g, &prior.placement, GraphDelta::default());
    v1.v = None;
    client.send_line(&v1.to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("v1 realloc must be rejected")
    };
    assert_eq!(e.error, "bad-request");
    assert!(e.detail.contains("v2"), "{}", e.detail);

    // Prior placement of the wrong length.
    let short = realloc_v2("short", &g, &prior.placement[..1], GraphDelta::default());
    client.send_line(&short.to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("short placement must be rejected")
    };
    assert_eq!(e.error, "bad-request");

    // Placement referencing a device outside the cluster.
    let mut bogus = prior.placement.clone();
    bogus[0] = 10_000;
    client.send_line(&realloc_v2("bogus", &g, &bogus, GraphDelta::default()).to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("out-of-range device must be rejected")
    };
    assert_eq!(e.error, "bad-request");

    // The connection still answers valid requests afterwards.
    client.send_line(&realloc_v2("ok", &g, &prior.placement, GraphDelta::default()).to_line());
    let WireResponse::Ok(ok) = client.read_response() else {
        panic!("valid realloc after errors must succeed")
    };
    assert_eq!(ok.placement, prior.placement);
    client.shutdown();
    handle.join().expect("server thread");
}
