//! Tape-free inference must be **bitwise** identical to the autodiff-tape
//! forward — the optimisation contract of the serve path. Checked over a
//! generated corpus spanning the paper settings, plus the degenerate pins
//! (edgeless graph, single node, single edge), with one scratch arena and
//! one union builder reused across the whole corpus the way the serve
//! batcher reuses them.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{Channel, ClusterSpec, GraphFeatures, Operator, StreamGraph, StreamGraphBuilder};
use spg::model::{BatchUnion, CoarsenConfig, CoarsenModel, InferenceScratch};
use spg::nn::{stable_sigmoid, Tape};

/// Collapse probabilities via the training path: tape forward, then the
/// same stable sigmoid over the logit values.
fn tape_probs(model: &CoarsenModel, graph: &StreamGraph, feats: &GraphFeatures) -> Vec<f32> {
    let mut tape = Tape::new();
    match model.forward(&mut tape, graph, feats) {
        Some(logits) => tape
            .value(logits)
            .data
            .iter()
            .map(|&x| stable_sigmoid(x))
            .collect(),
        None => Vec::new(),
    }
}

fn corpus() -> Vec<(StreamGraph, ClusterSpec, f64)> {
    let mut graphs = Vec::new();
    for setting in [Setting::Small, Setting::Medium, Setting::Large] {
        let spec = DatasetSpec::scaled_down(setting);
        let cluster = spec.cluster();
        for seed in 0..3u64 {
            graphs.push((
                spg::gen::generate_graph(&spec, seed),
                cluster,
                spec.source_rate,
            ));
        }
    }
    // Pins: a single node (no edges), an edgeless pair, a single edge.
    let cluster = ClusterSpec::paper_medium(3);
    let mut one = StreamGraphBuilder::new();
    one.add_node(Operator::new(5.0));
    graphs.push((one.finish().unwrap(), cluster, 1e4));
    let mut pair = StreamGraphBuilder::new();
    pair.add_node(Operator::new(1.0));
    pair.add_node(Operator::new(2.0));
    graphs.push((pair.finish().unwrap(), cluster, 1e4));
    let mut edge = StreamGraphBuilder::new();
    let a = edge.add_node(Operator::new(100.0));
    let b = edge.add_node(Operator::new(200.0));
    edge.add_edge(a, b, Channel::new(10.0)).unwrap();
    graphs.push((edge.finish().unwrap(), cluster, 1e4));
    graphs
}

#[test]
fn tape_free_forward_is_bitwise_identical_to_tape() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut scratch = InferenceScratch::new();
    for (i, (graph, cluster, rate)) in corpus().iter().enumerate() {
        let feats = GraphFeatures::extract(graph, cluster, *rate);
        let expected = tape_probs(&model, graph, &feats);
        let got = model.infer_probs(graph, &feats, &mut scratch);
        assert_eq!(got.len(), graph.num_edges(), "graph {i} length");
        assert_eq!(
            got.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "graph {i} ({} nodes, {} edges): tape-free probs diverged",
            graph.num_nodes(),
            graph.num_edges()
        );
    }
}

#[test]
fn batched_union_with_key_cache_is_bitwise_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let corpus = corpus();
    let feats: Vec<GraphFeatures> = corpus
        .iter()
        .map(|(g, c, r)| GraphFeatures::extract(g, c, *r))
        .collect();
    let items: Vec<(&StreamGraph, &GraphFeatures)> =
        corpus.iter().map(|(g, _, _)| g).zip(&feats).collect();
    let keys: Vec<u64> = (0..items.len() as u64).collect();

    let mut union = BatchUnion::new();
    let mut scratch = InferenceScratch::new();
    let first = model.predict_probs_batch_with(&mut union, &mut scratch, Some(&keys), &items);
    // Identical keys on the next batch: the union rebuild is skipped...
    let second = model.predict_probs_batch_with(&mut union, &mut scratch, Some(&keys), &items);
    assert!(
        union.cache_hits() > 0,
        "identical batch must hit the key cache"
    );
    // ...and the results must still match the solo tape forward exactly.
    for (i, ((graph, cluster, rate), probs)) in corpus.iter().zip(&second).enumerate() {
        let feats = GraphFeatures::extract(graph, cluster, *rate);
        let expected = tape_probs(&model, graph, &feats);
        assert_eq!(
            probs.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "graph {i}: cached-union batch diverged from tape"
        );
    }
    assert_eq!(first, second, "key-cached batch changed results");
}
