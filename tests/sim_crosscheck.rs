//! Cross-validation of the two simulators: the analytic bottleneck model
//! (RL reward) and the discrete-time backpressure simulator must agree on
//! generated graphs under arbitrary placements. This is the substitute for
//! the paper's CEPSim-fidelity argument.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{Allocator, Placement};
use spg::sim::des::{simulate_des, DesConfig};

fn des_cfg() -> DesConfig {
    DesConfig {
        dt: 1e-3,
        warmup_steps: 4000,
        measure_steps: 4000,
        queue_capacity: 200.0,
        ..DesConfig::default()
    }
}

#[test]
fn analytic_and_des_agree_on_random_placements() {
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let cluster = spec.cluster();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for seed in 0..4u64 {
        let g = spg::gen::generate_graph(&spec, seed);
        let p = Placement::new(
            (0..g.num_nodes())
                .map(|_| rng.gen_range(0..cluster.devices as u32))
                .collect(),
        );
        let a = spg::sim::analytic::simulate(&g, &cluster, &p, spec.source_rate);
        let d = simulate_des(&g, &cluster, &p, spec.source_rate, &des_cfg());
        // The historical 0.05..0.08 gap here was a DES measurement
        // artifact, not analytic model error: with a fixed window the DES
        // reported the pre-equilibrium accepted rate while bounded queues
        // were still absorbing the excess (backpressure reaches the
        // sources only after O(queue_capacity / excess_rate) seconds per
        // hop). The DES now extends its measurement until the accepted
        // rate and the buffered mass both settle, and the two simulators
        // agree within 0.05 on every seed.
        assert!(
            (a.relative - d.relative).abs() < 0.05,
            "seed {seed}: analytic {} vs des {}",
            a.relative,
            d.relative
        );
    }
}

#[test]
fn analytic_and_des_agree_on_metis_placements() {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let cluster = spec.cluster();
    let metis = spg::partition::MetisAllocator::new(9);
    for seed in 0..4u64 {
        let g = spg::gen::generate_graph(&spec, seed);
        let p = metis.allocate(&g, &cluster, spec.source_rate);
        let a = spg::sim::analytic::simulate(&g, &cluster, &p, spec.source_rate);
        let d = simulate_des(&g, &cluster, &p, spec.source_rate, &des_cfg());
        assert!(
            (a.relative - d.relative).abs() < 0.05,
            "seed {seed}: analytic {} vs des {}",
            a.relative,
            d.relative
        );
    }
}

#[test]
fn simulators_rank_placements_identically() {
    // The paper only needs the simulator to produce consistent *relative*
    // ranks; verify both simulators induce the same ordering.
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let cluster = spec.cluster();
    let g = spg::gen::generate_graph(&spec, 11);

    let placements = [
        Placement::all_on_one(g.num_nodes()),
        Placement::new(
            (0..g.num_nodes() as u32)
                .map(|v| v % cluster.devices as u32)
                .collect(),
        ),
        spg::partition::MetisAllocator::new(1).allocate(&g, &cluster, spec.source_rate),
    ];
    let analytic: Vec<f64> = placements
        .iter()
        .map(|p| spg::sim::analytic::simulate(&g, &cluster, p, spec.source_rate).relative)
        .collect();
    let des: Vec<f64> = placements
        .iter()
        .map(|p| simulate_des(&g, &cluster, p, spec.source_rate, &des_cfg()).relative)
        .collect();

    for i in 0..placements.len() {
        for j in 0..placements.len() {
            if analytic[i] > analytic[j] + 0.02 {
                assert!(
                    des[i] > des[j] - 0.02,
                    "rank flip between placements {i} and {j}: analytic {analytic:?} des {des:?}"
                );
            }
        }
    }
}
