//! Model-level invariants: permutation equivariance of the GNN encoder
//! and stability of the collapse predictions.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::graph::{Channel, ClusterSpec, Operator, StreamGraph, StreamGraphBuilder};
use spg::model::{CoarsenConfig, CoarsenModel};

/// Build a graph, then the same graph with nodes relabelled by `perm`
/// (node `v` becomes `perm[v]`) and edges listed in a different order.
fn permuted_pair() -> (StreamGraph, StreamGraph, Vec<usize>, Vec<usize>) {
    // Original: 0->1, 0->2, 1->3, 2->3 with distinct costs.
    let mut b = StreamGraphBuilder::new();
    let n0 = b.add_node(Operator::new(1_000.0));
    let n1 = b.add_node(Operator::new(2_000.0));
    let n2 = b.add_node(Operator::new(3_000.0));
    let n3 = b.add_node(Operator::new(4_000.0));
    b.add_edge(n0, n1, Channel::new(100.0)).unwrap();
    b.add_edge(n0, n2, Channel::new(200.0)).unwrap();
    b.add_edge(n1, n3, Channel::new(300.0)).unwrap();
    b.add_edge(n2, n3, Channel::new(400.0)).unwrap();
    let g = b.finish().unwrap();

    // Permutation 0->2, 1->0, 2->3, 3->1.
    let perm = vec![2usize, 0, 3, 1];
    let mut ops = vec![Operator::new(0.0); 4];
    for v in 0..4 {
        ops[perm[v]] = *g.op(spg::graph::NodeId(v as u32));
    }
    // Edges in a shuffled order with mapped endpoints.
    let order = [3usize, 0, 2, 1];
    let mut edges = Vec::new();
    let mut chans = Vec::new();
    for &e in &order {
        let (s, d) = g.edge_list()[e];
        edges.push((perm[s as usize] as u32, perm[d as usize] as u32));
        chans.push(g.channels()[e]);
    }
    let h = StreamGraph::from_parts(ops, edges, chans).unwrap();
    (g, h, perm, order.to_vec())
}

#[test]
fn collapse_probabilities_are_permutation_equivariant() {
    let (g, h, _perm, edge_order) = permuted_pair();
    let cluster = ClusterSpec::paper_medium(3);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);

    let pg = model.predict_probs(&g, &cluster, 1e4);
    let ph = model.predict_probs(&h, &cluster, 1e4);

    // Edge i of h corresponds to edge edge_order[i] of g.
    for (i, &orig) in edge_order.iter().enumerate() {
        assert!(
            (pg[orig] - ph[i]).abs() < 1e-4,
            "edge {orig} prob {} vs permuted {}",
            pg[orig],
            ph[i]
        );
    }
}

#[test]
fn predictions_are_stable_across_calls() {
    let (g, _, _, _) = permuted_pair();
    let cluster = ClusterSpec::paper_medium(3);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let a = model.predict_probs(&g, &cluster, 1e4);
    let b = model.predict_probs(&g, &cluster, 1e4);
    assert_eq!(a, b, "inference must be deterministic");
}

#[test]
fn probabilities_respond_to_edge_weight() {
    // Two otherwise-identical graphs, one with a far heavier edge: the
    // heavy edge's collapse probability must differ from the light one's
    // (the edge features reach the head).
    let build = |payload: f64| {
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(1_000.0));
        let t = b.add_node(Operator::new(1_000.0));
        b.add_edge(s, t, Channel::new(payload)).unwrap();
        b.finish().unwrap()
    };
    let light = build(1.0);
    let heavy = build(1e7);
    let cluster = ClusterSpec::paper_medium(3);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let pl = model.predict_probs(&light, &cluster, 1e4)[0];
    let ph = model.predict_probs(&heavy, &cluster, 1e4)[0];
    assert!(
        (pl - ph).abs() > 1e-6,
        "edge features must influence predictions ({pl} vs {ph})"
    );
}
