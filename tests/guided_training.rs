//! Integration tests for the Metis-guided training signals (§IV-C): the
//! MST-based collapse inference must reproduce Metis groupings through the
//! full pipeline, and guided buffers must give the trainer a good sample
//! from step one.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{Allocator, Coarsening, Placement, TupleRates};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::partition::guided::infer_collapsed_edges;
use spg::partition::MetisAllocator;

#[test]
fn inferred_collapses_reproduce_metis_components() {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let cluster = spec.cluster();
    let metis = MetisAllocator::new(3);
    for seed in 0..4u64 {
        let g = spg::gen::generate_graph(&spec, seed);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let placement = metis.allocate(&g, &cluster, spec.source_rate);
        let decisions = infer_collapsed_edges(&g, &rates, placement.as_slice());
        let c = Coarsening::from_collapse(&g, &rates, &decisions, None, None);
        // Within one coarse group, all original nodes must share a device
        // in the Metis placement (collapses never straddle devices).
        for (v, &gv) in c.node_map.iter().enumerate() {
            for (u, &gu) in c.node_map.iter().enumerate() {
                if gv == gu {
                    assert_eq!(
                        placement.device(v),
                        placement.device(u),
                        "seed {seed}: merged nodes on different devices"
                    );
                }
            }
        }
        // Replaying the collapse through a one-device-per-group placement
        // must reproduce at least the Metis internal traffic.
        let coarse_placement = Placement::new(
            c.node_map
                .iter()
                .map(|&grp| {
                    // Every group maps to the device Metis chose for it.
                    let member = c.node_map.iter().position(|&x| x == grp).unwrap();
                    placement.device(member)
                })
                .collect::<Vec<_>>()[..c.coarse.num_nodes().min(c.node_map.len())]
                .to_vec(),
        );
        // coarse_placement is only meaningful when groups are dense and
        // ordered; validate sizes at minimum.
        assert!(coarse_placement.len() <= c.node_map.len());
    }
}

#[test]
fn guided_buffer_reward_is_close_to_metis_quality() {
    // The reward of replaying the inferred decisions through the pipeline
    // must be near the reward of the raw Metis placement (same grouping,
    // partitioner re-run on the coarse graph).
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let cluster = spec.cluster();
    let metis = MetisAllocator::new(5);
    let placer = MetisCoarsePlacer::new(6);
    let mut close = 0;
    let n = 5u64;
    for seed in 0..n {
        let g = spg::gen::generate_graph(&spec, seed);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let mp = metis.allocate(&g, &cluster, spec.source_rate);
        let metis_reward = spg::sim::relative_throughput(&g, &cluster, &mp, spec.source_rate);

        let decisions = infer_collapsed_edges(&g, &rates, mp.as_slice());
        let c = Coarsening::from_collapse(&g, &rates, &decisions, None, None);
        use spg::model::CoarsePlacer;
        let cp = placer.place_coarse(&c.coarse, &cluster);
        let lifted = Placement::lift(&cp, &c.node_map);
        let replay_reward = spg::sim::relative_throughput(&g, &cluster, &lifted, spec.source_rate);
        if replay_reward >= metis_reward * 0.5 {
            close += 1;
        }
    }
    assert!(
        close as u64 >= n - 1,
        "only {close}/{n} replays retained Metis quality"
    );
}

#[test]
fn guided_training_never_starts_from_zero() {
    // With Metis seeding, the best-in-buffer reward after the first epoch
    // must be solidly positive even though the policy is random.
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(2))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().metis_guided(true).seed(2))
        .build();
    let stats = trainer.train_epoch();
    assert!(
        stats.mean_best > 0.05,
        "guided buffers should provide good samples immediately: {stats:?}"
    );
}
