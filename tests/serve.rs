//! Integration tests for the allocation service: protocol round trips,
//! cache determinism, malformed-input resilience, degenerate graphs,
//! concurrent clients, and graceful drain.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::wire::{shutdown_line, AllocRequest, WireResponse};
use spg::graph::{Channel, ClusterSpec, Operator, StreamGraph, StreamGraphBuilder};
use spg::model::checkpoint::Checkpoint;
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::obs::TelemetrySink;
use spg::serve::{ServeConfig, ServeReport, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn quick_checkpoint(seed: u64, extra_graphs: Vec<StreamGraph>) -> Checkpoint {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let mut graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, seed + s))
        .collect();
    graphs.extend(extra_graphs);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(seed))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(seed))
        .build();
    trainer.train_epoch();
    trainer.checkpoint()
}

/// Bind a server on a free port and run it on a background thread.
/// Returns the address and a join handle yielding the drain report.
fn spawn_server(
    cfg: ServeConfig,
    ck: Checkpoint,
) -> (String, std::thread::JoinHandle<ServeReport>) {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let sink = TelemetrySink::disabled();
        server
            .run(ck, spec.cluster(), spec.source_rate, &sink)
            .expect("serve run")
    });
    (addr, handle)
}

struct Client {
    out: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("read timeout");
        Self {
            out: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send_line(&mut self, line: &str) {
        self.out.write_all(line.as_bytes()).expect("write");
        self.out.write_all(b"\n").expect("write newline");
        self.out.flush().expect("flush");
    }

    fn read_response(&mut self) -> WireResponse {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        WireResponse::parse(line.trim()).expect("parse response")
    }

    fn shutdown(mut self) {
        self.send_line(shutdown_line());
    }
}

fn alloc_request(id: &str, graph: &StreamGraph) -> AllocRequest {
    AllocRequest {
        id: id.to_string(),
        graph: graph.clone(),
        source_rate: None,
        devices: None,
        v: None,
        deadline_ms: None,
    }
}

fn one_node_graph() -> StreamGraph {
    let mut b = StreamGraphBuilder::new();
    b.add_node(Operator::new(150.0));
    b.finish().expect("1-node graph is valid")
}

fn edgeless_graph(nodes: usize) -> StreamGraph {
    let mut b = StreamGraphBuilder::new();
    for i in 0..nodes {
        b.add_node(Operator::new(100.0 + i as f64));
    }
    b.finish().expect("edgeless graph is valid")
}

#[test]
fn identical_requests_get_bitwise_identical_placements_and_cache_hit() {
    let ck = quick_checkpoint(11, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 99);

    let mut client = Client::connect(&addr);
    // Await the first response before sending the repeat — otherwise both
    // can share a batch, where the repeat is deduped instead of cache-hit.
    client.send_line(&alloc_request("first", &g).to_line());
    let r1 = client.read_response();
    client.send_line(&alloc_request("second", &g).to_line());
    let r2 = client.read_response();
    let WireResponse::Ok(a) = r1 else {
        panic!("first response must be ok: {r1:?}")
    };
    let WireResponse::Ok(b) = r2 else {
        panic!("second response must be ok: {r2:?}")
    };
    assert_eq!(a.id, "first");
    assert_eq!(b.id, "second");
    assert_eq!(a.placement.len(), g.num_nodes());
    assert_eq!(
        a.placement, b.placement,
        "identical requests must receive bitwise-identical placements"
    );
    assert_eq!(
        a.relative_throughput.to_bits(),
        b.relative_throughput.to_bits()
    );
    assert!(b.cached, "repeat request must be served from the cache");
    client.shutdown();

    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 2);
    assert_eq!(report.errors, 0);
    assert!(report.cache_hits >= 1);
}

#[test]
fn malformed_input_gets_named_error_and_connection_survives() {
    let ck = quick_checkpoint(12, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 5);

    let mut client = Client::connect(&addr);
    client.send_line("this is not json");
    let WireResponse::Err(e) = client.read_response() else {
        panic!("garbage must produce an error response")
    };
    assert_eq!(e.error, "bad-request");

    // A structurally invalid graph (cycle) is a different named error.
    client.send_line(r#"{"id":"x","graph":{"ops":[{"ipt":1.0},{"ipt":1.0}],"edges":[[0,1],[1,0]],"channels":[{"payload":1.0,"selectivity":1.0},{"payload":1.0,"selectivity":1.0}]}}"#);
    let WireResponse::Err(e) = client.read_response() else {
        panic!("cyclic graph must produce an error response")
    };
    assert_eq!(e.error, "invalid-graph");

    // The connection must still be usable for a valid request.
    client.send_line(&alloc_request("ok", &g).to_line());
    let WireResponse::Ok(a) = client.read_response() else {
        panic!("valid request after errors must succeed")
    };
    assert_eq!(a.id, "ok");
    client.shutdown();

    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 1);
    assert_eq!(report.errors, 2, "both protocol errors must be counted");
}

#[test]
fn degenerate_graphs_round_trip_through_the_server() {
    // Train WITH the degenerate graphs in the buffer, then serve them:
    // the entire path must survive 0-edge and 1-node graphs.
    let one = one_node_graph();
    let edgeless = edgeless_graph(3);
    let ck = quick_checkpoint(13, vec![one.clone(), edgeless.clone()]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);

    let mut client = Client::connect(&addr);
    for (id, g) in [("one-node", &one), ("edgeless", &edgeless)] {
        client.send_line(&alloc_request(id, g).to_line());
        let WireResponse::Ok(a) = client.read_response() else {
            panic!("degenerate graph `{id}` must be allocatable")
        };
        assert_eq!(a.id, id);
        assert_eq!(a.placement.len(), g.num_nodes());
        assert!(
            a.relative_throughput.is_finite() && a.relative_throughput >= 0.0,
            "throughput for `{id}` must be finite, got {}",
            a.relative_throughput
        );
    }
    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 2);
    assert_eq!(report.errors, 0);
}

#[test]
fn request_overrides_devices_and_source_rate() {
    let ck = quick_checkpoint(14, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 17);

    let mut client = Client::connect(&addr);
    let mut req = alloc_request("override", &g);
    req.devices = Some(2);
    req.source_rate = Some(spec.source_rate * 2.0);
    client.send_line(&req.to_line());
    let WireResponse::Ok(a) = client.read_response() else {
        panic!("override request must succeed")
    };
    let used = a.placement.iter().collect::<std::collections::HashSet<_>>();
    assert!(
        used.len() <= 2,
        "placement must respect the devices override"
    );
    assert!(a.placement.iter().all(|&d| d < 2));

    // An unsatisfiable override is a named error, not a dropped connection.
    let mut bad = alloc_request("bad", &g);
    bad.source_rate = Some(-1.0);
    client.send_line(&bad.to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("negative rate must be rejected")
    };
    assert_eq!(e.error, "bad-request");
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn concurrent_clients_each_get_all_their_answers() {
    let ck = quick_checkpoint(15, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..3u64)
        .map(|s| spg::gen::generate_graph(&spec, 40 + s))
        .collect();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let graphs = graphs.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                for (r, g) in graphs.iter().enumerate() {
                    let id = format!("c{c}-r{r}");
                    client.send_line(&alloc_request(&id, g).to_line());
                }
                // Cache hits answer ahead of computed batch-mates, so
                // responses may arrive out of order — match them by id.
                let mut seen = std::collections::HashMap::new();
                for _ in 0..graphs.len() {
                    let WireResponse::Ok(a) = client.read_response() else {
                        panic!("client {c} got an error response")
                    };
                    seen.insert(a.id.clone(), a);
                }
                for (r, g) in graphs.iter().enumerate() {
                    let a = seen
                        .get(&format!("c{c}-r{r}"))
                        .unwrap_or_else(|| panic!("client {c} missing response {r}"));
                    assert_eq!(a.placement.len(), g.num_nodes());
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    // Repeats sharing a batch are deduped rather than cache-hit, so the
    // hit count above is racy — but by now every graph is cached, and a
    // fresh request must say so.
    let mut control = Client::connect(&addr);
    control.send_line(&alloc_request("warm", &graphs[0]).to_line());
    let WireResponse::Ok(warm) = control.read_response() else {
        panic!("post-run request failed")
    };
    assert!(warm.cached, "every graph must be cached after the run");
    control.shutdown();

    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 13);
    assert_eq!(report.errors, 0);
    assert!(
        report.cache_hits >= 1,
        "expected ≥1 cache hit, got {}",
        report.cache_hits
    );
}

#[test]
fn shutdown_drains_and_run_returns() {
    let ck = quick_checkpoint(16, vec![]);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 3);

    let mut client = Client::connect(&addr);
    client.send_line(&alloc_request("last", &g).to_line());
    let WireResponse::Ok(_) = client.read_response() else {
        panic!("request before shutdown must succeed")
    };
    client.shutdown();
    // run() returning at all IS the drain guarantee; a hang fails the
    // test harness timeout.
    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 1);

    // After drain the port is closed: new connections are refused or
    // reset rather than silently hanging.
    assert!(
        TcpStream::connect(&addr)
            .map(|s| {
                // Accepted by a lingering socket at most — writing must fail
                // or the peer closes immediately.
                let mut s2 = s;
                let _ = s2.write_all(b"{}\n");
                let mut buf = String::new();
                BufReader::new(s2)
                    .read_line(&mut buf)
                    .map(|n| n == 0)
                    .unwrap_or(true)
            })
            .unwrap_or(true),
        "server must stop answering after drain"
    );
}

#[test]
fn placements_are_bitwise_identical_across_server_restarts() {
    let ck = quick_checkpoint(18, vec![]);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 123);

    let mut placements = Vec::new();
    for _ in 0..2 {
        let (addr, handle) = spawn_server(ServeConfig::default(), ck.clone());
        let mut client = Client::connect(&addr);
        client.send_line(&alloc_request("restart", &g).to_line());
        let WireResponse::Ok(a) = client.read_response() else {
            panic!("request must succeed")
        };
        placements.push((a.placement, a.relative_throughput.to_bits()));
        client.shutdown();
        handle.join().expect("server thread");
    }
    assert_eq!(
        placements[0], placements[1],
        "same checkpoint + same config must place identically across restarts"
    );
}

#[test]
fn devices_override_keeps_cluster_capacities() {
    // A devices override must inherit the serve cluster's MIPS/link, not
    // reset them: verify via the public ClusterSpec semantics the server
    // uses (struct-update from the base cluster).
    let base = ClusterSpec::new(7, 999.0, 123.0);
    let overridden = ClusterSpec { devices: 3, ..base };
    assert_eq!(overridden.mips, 999.0);
    assert_eq!(overridden.link_mbps, 123.0);
    assert_eq!(overridden.devices, 3);
}

#[test]
fn wire_request_line_round_trips_through_parse() {
    let mut b = StreamGraphBuilder::new();
    let s = b.add_node(Operator::new(10.0));
    let t = b.add_node(Operator::new(20.0));
    b.add_edge(s, t, Channel::new(4.0)).unwrap();
    let g = b.finish().unwrap();
    let mut req = alloc_request("rt", &g);
    req.devices = Some(4);
    req.source_rate = Some(5e3);
    let line = req.to_line();
    let parsed = spg::graph::wire::parse_request(&line).expect("round trip");
    let spg::graph::wire::WireRequest::Alloc(a) = parsed else {
        panic!("expected alloc request")
    };
    assert_eq!(a.id, "rt");
    assert_eq!(a.graph.num_nodes(), 2);
    assert_eq!(a.devices, Some(4));
    assert_eq!(a.source_rate, Some(5e3));
}
