//! End-to-end integration: dataset generation → training → allocation →
//! simulation, across all workspace crates.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{Allocator, Operator, StreamGraphBuilder};
use spg::model::checkpoint::Checkpoint;
use spg::model::pipeline::{CoarsenOnlyAllocator, MetisCoarsePlacer};
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::partition::MetisAllocator;

fn quick_trained_model(epochs: usize, seed: u64) -> CoarsenModel {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..8u64)
        .map(|s| spg::gen::generate_graph(&spec, seed + s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(seed))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(seed))
        .build();
    for _ in 0..epochs {
        trainer.train_epoch();
    }
    trainer.into_model()
}

#[test]
fn training_improves_over_untrained_model() {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let test = spg::gen::generate_dataset(&spec, 10, 9999);

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let untrained = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let untrained_alloc = CoarsenAllocator::new(untrained, MetisCoarsePlacer::new(1));
    let trained_alloc = CoarsenAllocator::new(quick_trained_model(6, 7), MetisCoarsePlacer::new(1));

    let before = spg::eval::evaluate_allocator(&untrained_alloc as &dyn Allocator, &test);
    let after = spg::eval::evaluate_allocator(&trained_alloc as &dyn Allocator, &test);
    // Training must not make things worse; allow a small tolerance because
    // both pipelines share the Metis fallback structure.
    assert!(
        after.auc() <= before.auc() * 1.10,
        "training regressed AUC: {} -> {}",
        before.auc(),
        after.auc()
    );
}

#[test]
fn pipeline_matches_paper_contract_on_every_setting() {
    // Every setting must produce valid placements with rewards in [0, 1].
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let alloc = CoarsenAllocator::new(model, MetisCoarsePlacer::new(2));
    for setting in Setting::all() {
        let spec = DatasetSpec::scaled_down(setting);
        let cluster = spec.cluster();
        let g = spg::gen::generate_graph(&spec, 1);
        let p = alloc.allocate(&g, &cluster, spec.source_rate);
        assert!(
            p.validate(&g, cluster.devices),
            "invalid placement for {setting:?}"
        );
        let r = spg::sim::relative_throughput(&g, &cluster, &p, spec.source_rate);
        assert!(
            (0.0..=1.0).contains(&r),
            "reward {r} out of range for {setting:?}"
        );
    }
}

#[test]
fn best_of_n_never_loses_to_plain_greedy_by_much() {
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let test = spg::gen::generate_dataset(&spec, 6, 4242);
    let model = quick_trained_model(3, 21);

    // Cloning shares the parameter storage; both allocators only read it.
    let greedy = CoarsenAllocator::new(model.clone(), MetisCoarsePlacer::new(3));
    let best = CoarsenAllocator::new(model, MetisCoarsePlacer::new(3)).with_best_of(6);

    let rg = spg::eval::evaluate_allocator(&greedy as &dyn Allocator, &test);
    let rb = spg::eval::evaluate_allocator(&best as &dyn Allocator, &test);
    assert!(
        rb.auc() <= rg.auc() * 1.02,
        "best-of-N should not be worse: greedy {} vs best {}",
        rg.auc(),
        rb.auc()
    );
}

#[test]
fn coarsen_only_is_valid_everywhere() {
    let model = quick_trained_model(2, 33);
    let alloc = CoarsenOnlyAllocator { model };
    for setting in [Setting::Small, Setting::Medium] {
        let spec = DatasetSpec::scaled_down(setting);
        let cluster = spec.cluster();
        for seed in 0..3 {
            let g = spg::gen::generate_graph(&spec, seed);
            let p = alloc.allocate(&g, &cluster, spec.source_rate);
            assert!(p.validate(&g, cluster.devices));
            assert!(p.devices_used() <= cluster.devices);
        }
    }
}

#[test]
fn degenerate_graphs_survive_train_checkpoint_allocate_round_trip() {
    // 1-node and 0-edge graphs must flow through the full pipeline —
    // training buffer, checkpoint serialization, and allocation — without
    // panicking (the serving path is covered in tests/serve.rs).
    let one_node = {
        let mut b = StreamGraphBuilder::new();
        b.add_node(Operator::new(120.0));
        b.finish().expect("1-node graph is valid")
    };
    let edgeless = {
        let mut b = StreamGraphBuilder::new();
        for i in 0..4 {
            b.add_node(Operator::new(90.0 + i as f64));
        }
        b.finish().expect("edgeless graph is valid")
    };

    let spec = DatasetSpec::scaled_down(Setting::Small);
    let cluster = spec.cluster();
    let mut graphs = vec![one_node.clone(), edgeless.clone()];
    graphs.push(spg::gen::generate_graph(&spec, 8080));
    let mut rng = ChaCha8Rng::seed_from_u64(55);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(55))
        .graphs(graphs)
        .cluster(cluster)
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(55))
        .build();
    trainer.train_epoch();

    // Round-trip the model through its serialized checkpoint form.
    let path = std::env::temp_dir().join("spg-e2e-degenerate-ckpt.json");
    trainer.checkpoint().save(&path).expect("save checkpoint");
    let restored = Checkpoint::load(&path).expect("load checkpoint");
    let _ = std::fs::remove_file(&path);

    let alloc = CoarsenAllocator::new(restored.into_model(), MetisCoarsePlacer::new(55));
    for (name, g) in [("one-node", &one_node), ("edgeless", &edgeless)] {
        let p = alloc.allocate(g, &cluster, spec.source_rate);
        assert!(p.validate(g, cluster.devices), "invalid placement: {name}");
        let r = spg::sim::relative_throughput(g, &cluster, &p, spec.source_rate);
        assert!(
            r.is_finite() && (0.0..=1.0).contains(&r),
            "{name}: relative throughput {r} out of range"
        );
    }
}

#[test]
fn metis_strongly_beats_random_on_medium_graphs() {
    // The load-bearing baseline property behind Fig. 1 / Table I.
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let test = spg::gen::generate_dataset(&spec, 8, 777);
    let metis = MetisAllocator::new(5);
    let random = spg::baselines::RandomPlacement::new(5);
    let rm = spg::eval::evaluate_allocator(&metis as &dyn Allocator, &test);
    let rr = spg::eval::evaluate_allocator(&random as &dyn Allocator, &test);
    assert!(
        rm.auc() < rr.auc(),
        "metis (AUC {}) must beat random (AUC {})",
        rm.auc(),
        rr.auc()
    );
}
