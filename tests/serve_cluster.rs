//! Cluster-mode serving tests: routing determinism across replica
//! counts, wire protocol v2 shard reporting, graceful drain under
//! replicated load, and an idle-connection soak over the event loop.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::wire::{shutdown_line, AllocRequest, WireResponse};
use spg::graph::StreamGraph;
use spg::model::checkpoint::Checkpoint;
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg::obs::TelemetrySink;
use spg::serve::{request_fingerprint, shard_of, Precision, ServeConfig, ServeReport, Server};
use spg::sim::inject;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn quick_checkpoint(seed: u64) -> Checkpoint {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, seed + s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(seed))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(seed))
        .build();
    trainer.train_epoch();
    trainer.checkpoint()
}

fn spawn_server(
    cfg: ServeConfig,
    ck: Checkpoint,
) -> (String, std::thread::JoinHandle<ServeReport>) {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let sink = TelemetrySink::disabled();
        server
            .run(ck, spec.cluster(), spec.source_rate, &sink)
            .expect("serve run")
    });
    (addr, handle)
}

struct Client {
    out: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("read timeout");
        Self {
            out: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send_line(&mut self, line: &str) {
        self.out.write_all(line.as_bytes()).expect("write");
        self.out.write_all(b"\n").expect("write newline");
        self.out.flush().expect("flush");
    }

    /// Read one raw response line (bitwise, trailing newline stripped).
    fn read_raw_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end_matches('\n').to_string()
    }

    fn read_response(&mut self) -> WireResponse {
        WireResponse::parse(self.read_raw_line().trim()).expect("parse response")
    }

    fn shutdown(mut self) {
        self.send_line(shutdown_line());
    }
}

fn alloc_request(id: &str, graph: &StreamGraph) -> AllocRequest {
    AllocRequest {
        id: id.to_string(),
        graph: graph.clone(),
        source_rate: None,
        devices: None,
        v: None,
        deadline_ms: None,
    }
}

#[test]
fn replica_count_cannot_change_a_single_response_bit() {
    // One corpus — 8 distinct graphs plus repeats — sent sequentially
    // (await each answer, so cache-hit vs batch-dedup behavior is
    // deterministic) through 1-, 2-, and 4-replica servers. Response
    // LINES must be bitwise identical across all three: routing is an
    // implementation detail, the protocol output is pinned.
    let ck = quick_checkpoint(21);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..8u64)
        .map(|s| spg::gen::generate_graph(&spec, 300 + s))
        .collect();
    // Distinct graphs first, then repeats of the first three.
    let corpus: Vec<(String, &StreamGraph)> = (0..graphs.len())
        .map(|i| (format!("q{i}"), &graphs[i]))
        .chain((0..3).map(|i| (format!("rep{i}"), &graphs[i])))
        .collect();

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for replicas in [1usize, 2, 4] {
        let cfg = ServeConfig::builder().replicas(replicas).build().unwrap();
        let (addr, handle) = spawn_server(cfg, ck.clone());
        let mut client = Client::connect(&addr);
        let mut lines = Vec::new();
        for (id, g) in &corpus {
            client.send_line(&alloc_request(id, g).to_line());
            lines.push(client.read_raw_line());
        }
        client.shutdown();
        let report = handle.join().expect("server thread");
        assert_eq!(
            report.responses,
            corpus.len() as u64,
            "{replicas} replicas must answer the whole corpus"
        );
        assert_eq!(report.errors, 0);
        assert_eq!(report.per_replica.len(), replicas);
        let split: u64 = report.per_replica.iter().map(|r| r.responses).sum();
        assert_eq!(split, report.responses, "per-replica reports must add up");
        if replicas == 4 {
            let active = report.per_replica.iter().filter(|r| r.batches > 0).count();
            assert!(active >= 2, "corpus must actually spread across shards");
        }
        transcripts.push(lines);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "1 vs 2 replicas: responses must be bitwise identical"
    );
    assert_eq!(
        transcripts[0], transcripts[2],
        "1 vs 4 replicas: responses must be bitwise identical"
    );
    // The repeats re-hit their original shard's warm cache.
    for lines in &transcripts {
        for rep in lines.iter().rev().take(3) {
            assert!(rep.contains("\"cached\":true"), "repeat not cached: {rep}");
        }
    }
}

#[test]
fn int8_serving_is_deterministic_across_replica_counts() {
    // The quantized twin of the transcript pin above: int8 placements
    // may differ from f32 (within the bounds pinned by
    // tests/quantized_agreement.rs) but must be bitwise identical across
    // 1-, 2-, and 4-replica servers, with repeats answered from the
    // precision-tagged cache. The f32 run at the end double-checks that
    // adding the int8 path did not perturb f32 response bytes: two f32
    // servers over the same corpus still agree bit-for-bit.
    let ck = quick_checkpoint(23);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, 500 + s))
        .collect();
    let corpus: Vec<(String, &StreamGraph)> = (0..graphs.len())
        .map(|i| (format!("q{i}"), &graphs[i]))
        .chain((0..2).map(|i| (format!("rep{i}"), &graphs[i])))
        .collect();

    let run = |precision: Precision, replicas: usize| -> Vec<String> {
        let cfg = ServeConfig::builder()
            .replicas(replicas)
            .precision(precision)
            .build()
            .unwrap();
        let (addr, handle) = spawn_server(cfg, ck.clone());
        let mut client = Client::connect(&addr);
        let mut lines = Vec::new();
        for (id, g) in &corpus {
            client.send_line(&alloc_request(id, g).to_line());
            lines.push(client.read_raw_line());
        }
        client.shutdown();
        let report = handle.join().expect("server thread");
        assert_eq!(report.responses, corpus.len() as u64);
        assert_eq!(report.errors, 0, "{precision} x{replicas} errored");
        lines
    };

    let int8: Vec<Vec<String>> = [1usize, 2, 4]
        .iter()
        .map(|&r| run(Precision::Int8, r))
        .collect();
    assert_eq!(
        int8[0], int8[1],
        "int8, 1 vs 2 replicas: responses must be bitwise identical"
    );
    assert_eq!(
        int8[0], int8[2],
        "int8, 1 vs 4 replicas: responses must be bitwise identical"
    );
    for rep in int8[0].iter().rev().take(2) {
        assert!(
            rep.contains("\"cached\":true"),
            "int8 repeat missed the precision-tagged cache: {rep}"
        );
    }

    let f32_a = run(Precision::F32, 1);
    let f32_b = run(Precision::F32, 2);
    assert_eq!(f32_a, f32_b, "f32 transcripts must stay bitwise identical");
    for (ok, line) in f32_a.iter().zip(&int8[0]) {
        // Both precisions answer every request successfully; the
        // placements themselves may legitimately differ.
        assert!(ok.contains("\"placement\""), "f32 response malformed");
        assert!(line.contains("\"placement\""), "int8 response malformed");
    }
}

#[test]
fn wire_v2_reports_the_stable_shard_assignment() {
    let ck = quick_checkpoint(22);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let cluster = spec.cluster();
    let replicas = 2u32;
    let cfg = ServeConfig::builder()
        .replicas(replicas as usize)
        .build()
        .unwrap();
    let (addr, handle) = spawn_server(cfg, ck);

    // Pick one graph per shard by computing the assignment client-side —
    // the response's `shard` field must agree with the public hash.
    let mut picks: Vec<(StreamGraph, u32)> = Vec::new();
    let mut covered = [false; 2];
    for seed in 400u64..500 {
        let g = spg::gen::generate_graph(&spec, seed);
        let shard = shard_of(
            request_fingerprint(&g, cluster.devices, spec.source_rate),
            replicas,
        );
        if !covered[shard as usize] {
            covered[shard as usize] = true;
            picks.push((g, shard));
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    assert_eq!(picks.len(), 2, "100 seeds must cover both shards");

    let mut client = Client::connect(&addr);
    for (gi, (g, expected)) in picks.iter().enumerate() {
        // Same graph twice: fresh then cached, same shard both times.
        for round in 0..2 {
            let mut req = alloc_request(&format!("g{gi}-{round}"), g);
            req.v = Some(2);
            client.send_line(&req.to_line());
            let WireResponse::Ok(a) = client.read_response() else {
                panic!("v2 request must succeed")
            };
            assert_eq!(a.v, Some(2), "v2 response must echo the version");
            assert_eq!(
                a.shard,
                Some(*expected),
                "shard must match the rendezvous assignment"
            );
            assert_eq!(a.cached, round == 1);
        }
    }
    // A v1 request on the same connection stays byte-compatible: no new
    // fields leak into the default path.
    client.send_line(&alloc_request("v1", &picks[0].0).to_line());
    let line = client.read_raw_line();
    assert!(
        !line.contains("\"v\"") && !line.contains("shard"),
        "v1 responses must not grow fields: {line}"
    );
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn drain_completes_in_flight_work_and_refuses_late_arrivals() {
    let ck = quick_checkpoint(23);
    // max_batch 1 forces one inference pass per request. The timeout is
    // raised so queued backlog never expires on a slow machine.
    let cfg = ServeConfig::builder()
        .replicas(2)
        .max_batch(1)
        .request_timeout_ms(120_000)
        .build()
        .unwrap();

    let medium = DatasetSpec::scaled_down(Setting::MediumFiveDevices);
    let graphs: Vec<_> = (0..16u64)
        .map(|s| spg::gen::generate_graph(&medium, 500 + s))
        .collect();
    // Pin an injected stall on the first backlog request so its replica
    // is parked while the post-shutdown probes land — the drain window
    // is deterministically open, instead of hoping 16 release-mode
    // inferences outlast a 5 ms sleep (a real race on fast machines).
    // The stalled request still completes, so the drain guarantee below
    // is unchanged. Fingerprints use the server's defaults (the Small
    // spec from spawn_server), not the graphs' generating spec.
    let small = DatasetSpec::scaled_down(Setting::Small);
    let fp0 = request_fingerprint(&graphs[0], small.cluster().devices, small.source_rate);
    let plan =
        inject::FaultInjector::new(0).at(inject::Site::ReplicaWork, fp0, inject::Fault::Stall);
    let _guard = inject::armed(plan);
    let (addr, handle) = spawn_server(cfg, ck);

    // Pre-open the late connection before shutdown is even sent.
    let mut late = Client::connect(&addr);

    let mut client = Client::connect(&addr);
    // Pipeline the full backlog, then shutdown, then one more alloc —
    // all on one connection, so line order guarantees the last request
    // is processed after the drain began and MUST get `draining`.
    for (i, g) in graphs.iter().enumerate() {
        client.send_line(&alloc_request(&format!("in-flight-{i}"), g).to_line());
    }
    client.send_line(shutdown_line());
    client.send_line(&alloc_request("after-shutdown", &graphs[0]).to_line());

    // While replicas chew through the backlog: the pre-opened
    // connection and a brand-new connect both get refused by name.
    std::thread::sleep(std::time::Duration::from_millis(5));
    late.send_line(&alloc_request("late-conn", &graphs[1]).to_line());
    let WireResponse::Err(e) = late.read_response() else {
        panic!("pre-opened late request must be refused")
    };
    assert_eq!(e.error, "draining");
    let mut fresh = Client::connect(&addr);
    fresh.send_line(&alloc_request("late-connect", &graphs[2]).to_line());
    let WireResponse::Err(e) = fresh.read_response() else {
        panic!("late connect must be refused, not ignored")
    };
    assert_eq!(e.error, "draining");

    // Every in-flight request completes, plus exactly one refusal for
    // the post-shutdown request. The refusal is queued inline by the
    // router while the backlog is still computing, so it may arrive
    // ahead of the Ok responses — match by id, not by order.
    let mut seen = std::collections::HashMap::new();
    let mut refusals = Vec::new();
    for _ in 0..graphs.len() + 1 {
        match client.read_response() {
            WireResponse::Ok(a) => {
                seen.insert(a.id.clone(), a.placement.len());
            }
            WireResponse::Err(e) => refusals.push(e),
        }
    }
    for (i, g) in graphs.iter().enumerate() {
        assert_eq!(
            seen.get(&format!("in-flight-{i}")),
            Some(&g.num_nodes()),
            "request {i} must complete during drain"
        );
    }
    assert_eq!(
        refusals.len(),
        1,
        "exactly one request arrived post-shutdown"
    );
    assert_eq!(refusals[0].error, "draining");
    assert_eq!(refusals[0].id.as_deref(), Some("after-shutdown"));

    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, graphs.len() as u64);
    assert!(
        report.errors >= 3,
        "three named refusals, got {}",
        report.errors
    );
    let active = report
        .per_replica
        .iter()
        .filter(|r| r.responses > 0)
        .count();
    assert_eq!(active, 2, "both replicas must have drained in-flight work");
}

#[test]
fn a_killed_replica_is_respawned_and_the_retry_is_bitwise_identical() {
    let ck = quick_checkpoint(25);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 900);
    let fp = request_fingerprint(&g, spec.cluster().devices, spec.source_rate);
    let cfg = || ServeConfig::builder().replicas(2).build().unwrap();

    // Baseline: the response a healthy server gives this request. The
    // serial lock keeps concurrently injecting tests out of this run.
    let baseline = {
        let _serial = inject::test_serial();
        let (addr, handle) = spawn_server(cfg(), ck.clone());
        let mut client = Client::connect(&addr);
        client.send_line(&alloc_request("target", &g).to_line());
        let line = client.read_raw_line();
        client.shutdown();
        handle.join().expect("server thread");
        line
    };

    // Injected: the owning shard's generation-0 incarnation dies the
    // moment it dequeues this fingerprint.
    let plan = inject::FaultInjector::new(0).at(inject::Site::ReplicaWork, fp, inject::Fault::Kill);
    let _guard = inject::armed(plan);
    let (addr, handle) = spawn_server(cfg(), ck);
    let mut client = Client::connect(&addr);
    client.send_line(&alloc_request("target", &g).to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("the in-flight request must fail by name, not hang")
    };
    assert_eq!(e.error, "internal");
    assert_eq!(e.id.as_deref(), Some("target"));

    // The respawned incarnation (generation 1) no longer matches the
    // pinned fault: the retry must succeed, and — greedy decode,
    // content-seeded RNG, cold LRU both times — must reproduce the
    // healthy server's bytes exactly.
    client.send_line(&alloc_request("target", &g).to_line());
    let retry = client.read_raw_line();
    assert_eq!(
        retry, baseline,
        "post-restart retry must be bitwise identical to a clean run"
    );

    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.replica_restarts, 1, "exactly one respawn");
    assert_eq!(report.responses, 1);
    assert_eq!(report.errors, 1, "exactly one orphaned request failed");
}

#[test]
fn an_injected_worker_panic_fails_one_request_without_a_restart() {
    let ck = quick_checkpoint(26);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g_bad = spg::gen::generate_graph(&spec, 910);
    let g_ok = spg::gen::generate_graph(&spec, 911);
    let fp = request_fingerprint(&g_bad, spec.cluster().devices, spec.source_rate);
    let plan =
        inject::FaultInjector::new(0).at(inject::Site::ReplicaWork, fp, inject::Fault::WorkerPanic);
    let _guard = inject::armed(plan);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let mut client = Client::connect(&addr);

    client.send_line(&alloc_request("bad", &g_bad).to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("an injected panic must fail the request by name")
    };
    assert_eq!(e.error, "internal");
    assert_eq!(e.id.as_deref(), Some("bad"));

    // Same incarnation, next request: the panic was isolated.
    client.send_line(&alloc_request("good", &g_ok).to_line());
    let WireResponse::Ok(a) = client.read_response() else {
        panic!("the incarnation must survive a caught panic")
    };
    assert_eq!(a.placement.len(), g_ok.num_nodes());

    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.panics_caught, 1);
    assert_eq!(report.replica_restarts, 0, "caught panics must not respawn");
    assert_eq!((report.responses, report.errors), (1, 1));
}

#[test]
fn a_zero_deadline_is_shed_by_name_and_a_generous_one_is_not() {
    // Injection disabled — hold the serial lock so armed tests cannot
    // leak faults into this run.
    let _serial = inject::test_serial();
    let ck = quick_checkpoint(27);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g = spg::gen::generate_graph(&spec, 920);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);
    let mut client = Client::connect(&addr);

    // deadline_ms: 0 lapses by definition — shed before any inference,
    // deterministically, whatever the machine's speed.
    let mut req = alloc_request("impatient", &g);
    req.v = Some(2);
    req.deadline_ms = Some(0);
    client.send_line(&req.to_line());
    let WireResponse::Err(e) = client.read_response() else {
        panic!("a 0 ms budget must shed")
    };
    assert_eq!(e.error, "deadline-exceeded");
    assert_eq!(e.id.as_deref(), Some("impatient"));

    let mut req = alloc_request("patient", &g);
    req.v = Some(2);
    req.deadline_ms = Some(60_000);
    client.send_line(&req.to_line());
    let WireResponse::Ok(a) = client.read_response() else {
        panic!("a generous budget must be served")
    };
    assert_eq!(a.placement.len(), g.num_nodes());

    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.shed_deadline, 1);
    assert_eq!((report.responses, report.errors), (1, 1));
}

#[test]
fn past_the_watermark_cache_hits_answer_and_misses_shed() {
    let ck = quick_checkpoint(28);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let g_hit = spg::gen::generate_graph(&spec, 930);
    let g_stall = spg::gen::generate_graph(&spec, 931);
    let g_miss = spg::gen::generate_graph(&spec, 932);
    let fp_stall = request_fingerprint(&g_stall, spec.cluster().devices, spec.source_rate);
    // Park the (single) replica on an injected stall so queue depth is
    // deterministically at the watermark when the follow-ups route.
    let plan =
        inject::FaultInjector::new(0).at(inject::Site::ReplicaWork, fp_stall, inject::Fault::Stall);
    let _guard = inject::armed(plan);
    let cfg = ServeConfig::builder()
        .replicas(1)
        .max_batch(1)
        .shed_watermark(1)
        .build()
        .unwrap();
    let (addr, handle) = spawn_server(cfg, ck);
    let mut client = Client::connect(&addr);

    // Warm the shard's LRU below the watermark.
    client.send_line(&alloc_request("warm", &g_hit).to_line());
    let WireResponse::Ok(_) = client.read_response() else {
        panic!("warming request must succeed")
    };

    // Stall the replica, then pile on: with depth at the watermark the
    // router marks the followers cache-only.
    client.send_line(&alloc_request("stalled", &g_stall).to_line());
    client.send_line(&alloc_request("hit", &g_hit).to_line());
    client.send_line(&alloc_request("miss", &g_miss).to_line());

    let mut by_id: std::collections::HashMap<String, Result<_, _>> =
        std::collections::HashMap::new();
    for _ in 0..3 {
        match client.read_response() {
            WireResponse::Ok(a) => by_id.insert(a.id.clone(), Ok(a)),
            WireResponse::Err(e) => by_id.insert(e.id.clone().unwrap_or_default(), Err(e)),
        };
    }
    let Some(Ok(hit)) = by_id.get("hit") else {
        panic!("a cache hit must still be served past the watermark")
    };
    assert!(hit.cached, "the watermark answer must come from the LRU");
    let Some(Err(miss)) = by_id.get("miss") else {
        panic!("a cache miss past the watermark must shed")
    };
    assert_eq!(miss.error, "overloaded");
    let Some(Ok(stalled)) = by_id.get("stalled") else {
        panic!("the stalled request itself must complete")
    };
    assert_eq!(stalled.placement.len(), g_stall.num_nodes());

    client.shutdown();
    let report = handle.join().expect("server thread");
    assert_eq!(report.shed_overload, 1);
    assert_eq!(report.responses, 3, "warm, stalled, and the cache hit");
    assert_eq!(report.errors, 1, "only the shed miss failed");
}

#[test]
fn a_thousand_idle_connections_cost_no_threads_and_break_nothing() {
    let ck = quick_checkpoint(24);
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let (addr, handle) = spawn_server(ServeConfig::default(), ck);

    // Open and hold 1000 idle connections. Under the old
    // thread-per-connection design this would be 2000 parked threads;
    // the event loop holds them as poll-set entries.
    let idle: Vec<TcpStream> = (0..1000)
        .map(|i| {
            TcpStream::connect(&addr).unwrap_or_else(|e| panic!("idle connect {i} failed: {e}"))
        })
        .collect();

    // Service must be unimpaired: a real request through the crowd, and
    // one of the idle sockets waking up mid-soak.
    let g = spg::gen::generate_graph(&spec, 777);
    let mut client = Client::connect(&addr);
    client.send_line(&alloc_request("through-the-crowd", &g).to_line());
    let WireResponse::Ok(a) = client.read_response() else {
        panic!("request must succeed with 1000 idle connections held open")
    };
    assert_eq!(a.placement.len(), g.num_nodes());

    let woken = idle.last().expect("idle pool nonempty");
    let mut woken = Client {
        out: woken.try_clone().expect("clone idle"),
        reader: BufReader::new(woken.try_clone().expect("clone idle")),
    };
    woken
        .out
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .ok();
    woken.send_line(&alloc_request("was-idle", &g).to_line());
    let WireResponse::Ok(a) = woken.read_response() else {
        panic!("formerly idle connection must still be serviceable")
    };
    assert!(a.cached, "repeat of the same graph must hit the cache");

    client.shutdown();
    drop(idle);
    let report = handle.join().expect("server thread");
    assert_eq!(report.responses, 2);
    assert_eq!(report.errors, 0);
}
