//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{Coarsening, Placement, TupleRates, WeightedGraph};
use spg::partition::{kway_partition, PartitionConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated graphs are valid DAGs within the requested size range,
    /// with exactly one source and one sink.
    #[test]
    fn generator_produces_valid_graphs(seed in 0u64..5000) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let g = spg::gen::generate_graph(&spec, seed);
        let (lo, hi) = spec.growth.node_range;
        prop_assert!(g.num_nodes() >= lo && g.num_nodes() <= hi);
        prop_assert_eq!(g.sources().len(), 1);
        prop_assert_eq!(g.sinks().len(), 1);
        // All costs positive.
        prop_assert!(g.ops().iter().all(|o| o.ipt > 0.0));
        prop_assert!(g.channels().iter().all(|c| c.payload > 0.0 && c.selectivity > 0.0));
    }

    /// Coarsening conserves total CPU demand and total traffic
    /// (internal + external), for arbitrary collapse decisions.
    #[test]
    fn coarsening_conserves_load(seed in 0u64..5000, mask in any::<u64>()) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let g = spg::gen::generate_graph(&spec, seed);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let decisions: Vec<bool> =
            (0..g.num_edges()).map(|e| mask & (1 << (e % 64)) != 0).collect();
        let c = Coarsening::from_collapse(&g, &rates, &decisions, None, None);

        let total_cpu: f64 = rates.cpu_demand(&g).iter().sum();
        let coarse_cpu: f64 = c.coarse.node_cpu.iter().sum();
        prop_assert!((total_cpu - coarse_cpu).abs() < 1e-6 * total_cpu.max(1.0));

        let total_traffic = rates.total_edge_traffic(&g);
        let accounted = c.coarse.total_external_traffic() + c.coarse.internal_traffic;
        prop_assert!((total_traffic - accounted).abs() < 1e-6 * total_traffic.max(1.0));

        // Node map must be dense.
        let k = c.coarse.num_nodes() as u32;
        prop_assert!(c.node_map.iter().all(|&m| m < k));
        let mut seen = vec![false; k as usize];
        for &m in &c.node_map { seen[m as usize] = true; }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Lifting a coarse placement preserves group co-location and the cut
    /// traffic equals the coarse graph's cross-group traffic.
    #[test]
    fn lift_preserves_grouping(seed in 0u64..5000, mask in any::<u64>(), devices in 2usize..6) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let g = spg::gen::generate_graph(&spec, seed);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let decisions: Vec<bool> =
            (0..g.num_edges()).map(|e| mask & (1 << (e % 64)) != 0).collect();
        let c = Coarsening::from_collapse(&g, &rates, &decisions, None, None);
        let coarse_placement = Placement::new(
            (0..c.coarse.num_nodes() as u32).map(|i| i % devices as u32).collect(),
        );
        let lifted = Placement::lift(&coarse_placement, &c.node_map);
        for v in 0..g.num_nodes() {
            prop_assert_eq!(
                lifted.device(v),
                coarse_placement.device(c.node_map[v] as usize)
            );
        }
    }

    /// The partitioner always produces a complete labelling within range
    /// and never leaves a part empty on connected graphs with n >= 4k.
    #[test]
    fn partitioner_labels_are_well_formed(seed in 0u64..5000, k in 2usize..6) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let g = spg::gen::generate_graph(&spec, seed);
        let w = WeightedGraph::from_stream(&g, spec.source_rate);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = kway_partition(&w, k, &PartitionConfig::default(), &mut rng);
        prop_assert_eq!(part.len(), g.num_nodes());
        prop_assert!(part.iter().all(|&p| (p as usize) < k));
    }

    /// The analytic reward is scale-free: doubling the source rate halves
    /// the relative throughput of a saturated system (or keeps it at 1).
    #[test]
    fn reward_scales_inversely_with_rate(seed in 0u64..5000) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg::gen::generate_graph(&spec, seed);
        let p = Placement::all_on_one(g.num_nodes());
        let r1 = spg::sim::relative_throughput(&g, &cluster, &p, spec.source_rate);
        let r2 = spg::sim::relative_throughput(&g, &cluster, &p, spec.source_rate * 2.0);
        if r1 < 1.0 {
            prop_assert!((r2 - r1 / 2.0).abs() < 1e-9, "r1 {} r2 {}", r1, r2);
        } else {
            prop_assert!(r2 <= 1.0);
        }
    }

    /// CDF AUC is monotone: pointwise-better throughputs never raise AUC.
    #[test]
    fn auc_is_monotone(ts in prop::collection::vec(0.0f64..10_000.0, 1..40)) {
        let better: Vec<f64> = ts.iter().map(|&t| (t * 1.1).min(10_000.0)).collect();
        let a = spg::eval::ThroughputCdf::new(ts).auc(10_000.0);
        let b = spg::eval::ThroughputCdf::new(better).auc(10_000.0);
        prop_assert!(b <= a + 1e-9);
    }

    /// Device placements from the Metis allocator are always valid.
    #[test]
    fn metis_allocator_is_total(seed in 0u64..5000) {
        use spg::graph::Allocator;
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg::gen::generate_graph(&spec, seed);
        let alloc = spg::partition::MetisAllocator::new(seed);
        let p = alloc.allocate(&g, &cluster, spec.source_rate);
        prop_assert!(p.validate(&g, cluster.devices));
    }
}
