//! End-to-end telemetry tests: the sink must observe training without
//! perturbing it, and the event stream must be well-formed JSONL with the
//! documented metric names.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{
    CoarsenConfig, CoarsenModel, ReinforceTrainer, TelemetrySink, TrainOptions, TrainStats,
};
use spg::obs::{Event, Summary};
use spg::StreamGraph;

fn run_epochs(sink: TelemetrySink, epochs: usize) -> (Vec<TrainStats>, TelemetrySink) {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<StreamGraph> = (0..3u64)
        .map(|s| spg::gen::generate_graph(&spec, s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(5))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(9).num_workers(2))
        .telemetry(sink)
        .build();
    let stats = (0..epochs).map(|_| trainer.train_epoch()).collect();
    (stats, trainer.telemetry().clone())
}

/// The tentpole invariant: telemetry is observe-only. Training with a live
/// sink must produce bitwise-identical results to training without one.
#[test]
fn telemetry_does_not_change_training_results() {
    let (off, _) = run_epochs(TelemetrySink::disabled(), 3);
    let (on, _) = run_epochs(TelemetrySink::memory(), 3);
    assert_eq!(off, on, "TrainStats diverged between sink off and sink on");
}

#[test]
fn event_stream_is_valid_jsonl_with_balanced_spans() {
    let (_, sink) = run_epochs(TelemetrySink::memory(), 2);
    let lines = sink.lines();
    assert!(!lines.is_empty(), "enabled sink must record events");

    let mut depth: i64 = 0;
    let mut open_stack: Vec<String> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let ev = Event::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not a valid event ({e}): {line}", i + 1));
        match ev {
            Event::SpanOpen { name, depth: d, .. } => {
                assert_eq!(d as i64, depth, "open depth mismatch at line {}", i + 1);
                open_stack.push(name);
                depth += 1;
            }
            Event::SpanClose { name, depth: d, .. } => {
                depth -= 1;
                assert_eq!(d as i64, depth, "close depth mismatch at line {}", i + 1);
                let opened = open_stack.pop().unwrap_or_else(|| {
                    panic!("span_close without matching open at line {}", i + 1)
                });
                assert_eq!(opened, name, "mismatched span close at line {}", i + 1);
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced spans: {open_stack:?} left open");
}

#[test]
fn event_stream_carries_the_documented_metrics() {
    let (_, sink) = run_epochs(TelemetrySink::memory(), 2);
    let lines = sink.lines();
    let text = lines.join("\n");
    for name in [
        "\"epoch\"",
        "\"step.forward\"",
        "\"step.rollout\"",
        "\"step.backprop\"",
        "\"cache.hits\"",
        "\"cache.misses\"",
        "\"sim.analytic.calls\"",
        "\"partition.kway.calls\"",
        "\"reward.mean\"",
        "\"reward.best\"",
        "\"reward.min\"",
        "\"reward.max\"",
        "\"baseline.mean\"",
        "\"entropy.mean\"",
        "\"grad_norm.mean\"",
        "\"buffer.size\"",
        "\"rollout.workers\"",
        "\"rollout.sample_us\"",
    ] {
        assert!(text.contains(name), "metric {name} missing from stream");
    }
}

#[test]
fn report_summarizes_a_training_run() {
    let (stats, sink) = run_epochs(TelemetrySink::memory(), 2);
    let lines = sink.lines();
    let summary = Summary::from_lines(lines.iter().map(String::as_str)).unwrap();
    let rendered = summary.render();
    assert!(rendered.contains("epoch"), "{rendered}");
    assert!(rendered.contains("cache hit rate"), "{rendered}");
    assert!(rendered.contains("reward.mean"), "{rendered}");
    // The reward curve in the stream must match the returned stats.
    let curve = summary
        .gauge_series("reward.mean")
        .expect("reward.mean gauge present");
    assert_eq!(curve.len(), stats.len());
    for (got, st) in curve.iter().zip(&stats) {
        assert!((got - st.mean_reward).abs() < 1e-6);
    }
}
