//! Fault-tolerant training runtime, end to end: crash-safe resume that is
//! bitwise identical to an uninterrupted run, and the three fault
//! policies exercised through the deterministic fault injector.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{
    Checkpoint, CoarsenConfig, CoarsenModel, FaultKind, FaultPolicy, ReinforceTrainer, ResumeError,
    TrainOptions, TrainStats,
};
use spg::sim::inject;
use spg_core::fault::RecoveryAction;

fn build_trainer(seed: u64, policy: FaultPolicy) -> ReinforceTrainer<MetisCoarsePlacer> {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<_> = (0..4u64)
        .map(|s| spg::gen::generate_graph(&spec, 100 + s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    ReinforceTrainer::builder(model, MetisCoarsePlacer::new(seed ^ 1))
        .graphs(graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .options(TrainOptions::new().seed(seed).fault_policy(policy))
        .build()
}

/// Run an intentionally-panicking closure with the default panic hook
/// silenced, restoring it afterwards.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The tentpole guarantee: N epochs, a checkpoint, a process boundary
/// (serialise + reparse), and N more epochs in a *fresh* trainer must be
/// indistinguishable — per-epoch stats and the final serialised
/// checkpoint byte for byte — from 2N epochs straight through.
#[test]
fn resume_continues_bitwise_identically() {
    let _serial = inject::test_serial();
    const N: usize = 3;

    let mut straight = build_trainer(11, FaultPolicy::Abort);
    let mut straight_tail: Vec<TrainStats> = Vec::new();
    for e in 0..2 * N {
        let stats = straight.train_epoch();
        if e >= N {
            straight_tail.push(stats);
        }
    }
    let straight_json = serde_json::to_string(&straight.checkpoint()).unwrap();

    let mut first_half = build_trainer(11, FaultPolicy::Abort);
    for _ in 0..N {
        first_half.train_epoch();
    }
    // Cross the on-disk representation, as a real crash-and-restart would.
    let ckpt_json = serde_json::to_string(&first_half.checkpoint()).unwrap();
    drop(first_half);
    let ckpt: Checkpoint = serde_json::from_str(&ckpt_json).unwrap();

    let mut resumed = build_trainer(11, FaultPolicy::Abort);
    resumed.resume_from(&ckpt).unwrap();
    assert_eq!(resumed.epochs_run(), N as u64);
    assert_eq!(resumed.fault_stats().resumes, 1);
    let resumed_tail: Vec<TrainStats> = (0..N).map(|_| resumed.train_epoch()).collect();

    assert_eq!(
        straight_tail, resumed_tail,
        "per-epoch stats after resume must match the uninterrupted run exactly"
    );
    let resumed_json = serde_json::to_string(&resumed.checkpoint()).unwrap();
    assert_eq!(
        straight_json, resumed_json,
        "final checkpoints (weights, moments, RNG position, buffers) must be byte-identical"
    );
}

#[test]
fn resume_rejects_mismatched_runs() {
    let _serial = inject::test_serial();
    let mut a = build_trainer(11, FaultPolicy::Abort);
    a.train_epoch();
    let ckpt = a.checkpoint();

    let mut wrong_seed = build_trainer(12, FaultPolicy::Abort);
    assert!(matches!(
        wrong_seed.resume_from(&ckpt),
        Err(ResumeError::SeedMismatch {
            expected: 11,
            actual: 12
        })
    ));

    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model_only = Checkpoint::from_model(&CoarsenModel::new(CoarsenConfig::default(), &mut rng));
    let mut fresh = build_trainer(11, FaultPolicy::Abort);
    assert_eq!(
        fresh.resume_from(&model_only),
        Err(ResumeError::NoTrainerState)
    );
}

#[test]
fn skip_policy_drops_nan_rewards_and_keeps_training() {
    let mut t = build_trainer(21, FaultPolicy::SkipSample);
    {
        let _g = inject::armed(inject::FaultInjector::new(7).rate(
            inject::Site::Rollout,
            inject::Fault::NanReward,
            0.5,
        ));
        let stats = t.try_train_epoch().expect("skip policy must recover");
        assert!(stats.steps > 0, "surviving samples must still train");
        assert!(t.fault_stats().skipped_samples > 0);
        assert!(t
            .fault_log()
            .iter()
            .any(|e| e.kind == FaultKind::NonFiniteReward
                && e.action == RecoveryAction::SkippedSample));
    }
    // Disarmed: the next epoch is fault-free and the counters stand still.
    let skipped = t.fault_stats().skipped_samples;
    t.try_train_epoch().unwrap();
    assert_eq!(t.fault_stats().skipped_samples, skipped);
}

#[test]
fn worker_panic_is_isolated_per_sample() {
    let mut t = build_trainer(31, FaultPolicy::SkipSample);
    let _g = inject::armed(inject::FaultInjector::new(0).at(
        inject::Site::Rollout,
        inject::rollout_key(0, 0, 0),
        inject::Fault::WorkerPanic,
    ));
    let stats = quiet_panics(|| t.try_train_epoch())
        .expect("a panicking worker must not take down the epoch under skip policy");
    assert_eq!(stats.steps, t.num_graphs(), "other samples carry the step");
    assert_eq!(t.fault_stats().skipped_samples, 1);
    assert!(t.fault_log().iter().any(|e| {
        e.kind == FaultKind::WorkerPanic
            && e.graph == 0
            && e.sample == Some(0)
            && e.detail.contains("injected worker panic")
    }));
}

#[test]
fn injected_simulator_error_is_contained() {
    let mut t = build_trainer(61, FaultPolicy::SkipSample);
    let _g = inject::armed(inject::FaultInjector::new(0).at(
        inject::Site::Simulator,
        inject::rollout_key(0, 0, 1),
        inject::Fault::SimError,
    ));
    quiet_panics(|| t.try_train_epoch()).expect("simulator error must be contained");
    assert!(t.fault_log().iter().any(|e| {
        e.kind == FaultKind::WorkerPanic && e.detail.contains("injected simulator error")
    }));
}

#[test]
fn rollback_policy_restores_and_quarantines() {
    let mut t = build_trainer(41, FaultPolicy::RollbackToSnapshot);
    let _g = inject::armed(inject::FaultInjector::new(0).at(
        inject::Site::Rollout,
        inject::rollout_key(0, 1, 0),
        inject::Fault::NanReward,
    ));
    let stats = t.try_train_epoch().expect("rollback policy must recover");
    assert_eq!(t.fault_stats().rollbacks, 1);
    assert_eq!(t.quarantined_graphs(), vec![1]);
    assert_eq!(
        stats.steps,
        t.num_graphs() - 1,
        "the retried epoch trains every graph but the quarantined one"
    );
    assert!(t
        .fault_log()
        .iter()
        .any(|e| e.action == RecoveryAction::RolledBack && e.graph == 1));
}

#[test]
fn abort_policy_surfaces_the_fault_as_an_error() {
    let mut t = build_trainer(51, FaultPolicy::Abort);
    let _g = inject::armed(inject::FaultInjector::new(0).at(
        inject::Site::Rollout,
        inject::rollout_key(0, 2, 1),
        inject::Fault::NanReward,
    ));
    let err = t
        .try_train_epoch()
        .expect_err("abort policy must surface the fault");
    assert_eq!(err.kind, FaultKind::NonFiniteReward);
    assert_eq!((err.epoch, err.graph, err.sample), (0, 2, Some(1)));
    let msg = err.to_string();
    assert!(
        msg.contains("non_finite_reward") && msg.contains("graph 2"),
        "{msg}"
    );
    // Nothing was swallowed: no recovery counters moved.
    let stats = t.fault_stats();
    assert_eq!(
        (
            stats.skipped_samples,
            stats.quarantined_graphs,
            stats.rollbacks
        ),
        (0, 0, 0)
    );
}
