//! Offline vendored shim of the `rand 0.8` API subset used by this
//! workspace: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen` and
//! `gen_range`), and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors minimal, dependency-free stand-ins for its external
//! crates (see `vendor/README.md`). Algorithms are chosen for determinism
//! and reasonable statistical quality, not for compatibility with upstream
//! `rand` byte streams: seeds written against upstream produce *different*
//! (but equally reproducible) sequences here.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let w = sm.next().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 (public-domain) — used for seed expansion.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling helpers on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its standard domain (`[0, 1)` for
    /// floats, full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformSample,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with uniform range sampling.
pub trait UniformSample: Sized + Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)`; `hi` must be `> lo`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw in `[lo, hi]`; `hi` must be `>= lo`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(mod_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mod_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(mod_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mod_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_sint!(i8, i16, i32, i64, isize);

/// Unbiased-enough modular reduction (the workspace only needs
/// determinism; spans are tiny relative to 2^64 so modulo bias is
/// negligible).
fn mod_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                let x = lo + u * (hi - lo);
                // Guard against rounding up to `hi`.
                if x >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { x }
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Slice sampling helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on empty slices.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 += 1;
            sm.next()
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = Counter(0);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let a = r.gen_range(3..17u32);
            assert!((3..17).contains(&a));
            let b = r.gen_range(2..=5usize);
            assert!((2..=5).contains(&b));
            let c = r.gen_range(-1.5..1.5f32);
            assert!((-1.5..1.5).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Counter(7);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
