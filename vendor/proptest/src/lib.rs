//! Offline vendored mini-proptest.
//!
//! Implements the subset of the proptest surface this workspace's tests
//! use — the [`proptest!`] macro, range/`Just`/`prop_oneof!`/collection
//! strategies, `any::<T>()`, `prop::sample::Index`, and
//! `prop_assert!`/`prop_assert_eq!` — as plain seeded random testing.
//! Cases are generated from a SplitMix64 stream seeded by the test name,
//! so failures are reproducible run-to-run. There is **no shrinking**: a
//! failing case reports its inputs via the assertion message instead.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test name, for stable per-test seeds.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() as f32) * 2.0 - 1.0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof!");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as a size specification for [`vec`].
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Vector of values drawn from `element`, with length from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a runtime-sized collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub u64);

    impl Index {
        /// Resolve against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Run random cases: the engine behind [`proptest!`].
pub fn run_cases(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..config.cases {
        let mut rng = TestRng::new(seed_of(name) ^ (0x9E37_0000 + i as u64));
        case(&mut rng);
    }
}

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)` is
/// expanded into a plain test running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Box a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::boxed($strat)),+])
    };
}

/// Assert inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};

    /// The `prop::` namespace (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds.
        #[test]
        fn int_ranges_in_bounds(x in 3u32..17, y in 2usize..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }

        /// Vec strategy respects its size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u64..10, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        /// oneof picks only listed values; Index stays in range.
        #[test]
        fn oneof_and_index(
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(matches!(pick, 1 | 2 | 3));
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        super::run_cases("t", &ProptestConfig::with_cases(5), |rng| {
            a.push(rng.next_u64())
        });
        let mut b = Vec::new();
        super::run_cases("t", &ProptestConfig::with_cases(5), |rng| {
            b.push(rng.next_u64())
        });
        assert_eq!(a, b);
    }
}
