//! Offline vendored `crossbeam` shim exposing `crossbeam::thread::scope`
//! on top of `std::thread::scope` (stable since Rust 1.63).
//!
//! API differences from upstream are minimal: a panicking child thread
//! propagates out of `scope` (std semantics) instead of being collected
//! into the returned `Result`, so the `Err` arm is never produced. Callers
//! in this workspace only `.expect()` the result, which behaves the same.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error payloads of panicked child threads (never produced by this
    /// shim; see module docs).
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; lets workers borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The closure receives the scope
        /// so it can spawn further workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handoff = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handoff)),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (o, &x) in out.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *o = x * 10;
                });
            }
        })
        .expect("no panics");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
