//! Offline vendored [`ChaCha8Rng`]: a real ChaCha stream cipher with 8
//! rounds driving the `rand` shim's [`RngCore`]/[`SeedableRng`] traits.
//!
//! The implementation follows RFC 7539's state layout (4 constant words,
//! 8 key words, a 64-bit block counter and a 64-bit stream id) so the
//! word-position API (`get_word_pos`/`set_word_pos`) behaves like the
//! upstream crate: positions count 32-bit words of the key stream, 16 per
//! block. Output bytes differ from upstream `rand_chacha` (seeding and
//! word-extraction details are simplified) but are fully deterministic in
//! the seed.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: u128 = 16;

/// ChaCha with 8 rounds, seekable by 32-bit word position.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 8 key words.
    key: [u32; 8],
    /// 64-bit stream id (nonce words).
    stream: u64,
    /// Block counter of the *next* block to generate.
    counter: u64,
    /// Current block's key stream.
    buf: [u32; 16],
    /// Next word index into `buf`; 16 means "buffer exhausted".
    index: usize,
}

impl PartialEq for ChaCha8Rng {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.stream == other.stream
            && self.get_word_pos() == other.get_word_pos()
    }
}
impl Eq for ChaCha8Rng {}

impl ChaCha8Rng {
    /// Current position in the key stream, counted in 32-bit words.
    pub fn get_word_pos(&self) -> u128 {
        // `counter` is the next block; the buffered block is counter - 1
        // unless the buffer is exhausted or never filled.
        if self.index >= 16 {
            u128::from(self.counter) * WORDS_PER_BLOCK
        } else {
            (u128::from(self.counter) - 1) * WORDS_PER_BLOCK + self.index as u128
        }
    }

    /// Seek to a position in the key stream, counted in 32-bit words.
    pub fn set_word_pos(&mut self, word_offset: u128) {
        let block = (word_offset / WORDS_PER_BLOCK) as u64;
        let word = (word_offset % WORDS_PER_BLOCK) as usize;
        self.counter = block;
        self.index = 16;
        if word != 0 {
            self.refill();
            self.index = word;
        }
    }

    /// Select one of 2^64 independent streams.
    pub fn set_stream(&mut self, stream: u64) {
        if stream != self.stream {
            self.stream = stream;
            let pos = self.get_word_pos();
            self.index = 16;
            self.counter = (pos / WORDS_PER_BLOCK) as u64;
            let word = (pos % WORDS_PER_BLOCK) as usize;
            if word != 0 {
                self.refill();
                self.index = word;
            }
        }
    }

    /// Generate the block at `counter` into `buf` and advance `counter`.
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        // "expand 32-byte k"
        x[0] = 0x61707865;
        x[1] = 0x3320646e;
        x[2] = 0x79622d32;
        x[3] = 0x6b206574;
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;

        let input = x;
        // 8 rounds = 4 double rounds.
        for _ in 0..4 {
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, (a, b)) in self.buf.iter_mut().zip(x.iter().zip(input.iter())) {
            *o = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            stream: 0,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

/// ChaCha with 12 rounds (same construction, more rounds).
pub type ChaCha12Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn word_pos_roundtrip() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        // Consume 37 words.
        for _ in 0..37 {
            a.next_u32();
        }
        assert_eq!(a.get_word_pos(), 37);
        let upcoming: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        a.set_word_pos(37);
        let replay: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        assert_eq!(upcoming, replay);
    }

    #[test]
    fn set_word_pos_far_ahead_decouples_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let head: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_word_pos(1 << 20);
        let far: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(head, far);
        assert_eq!(b.get_word_pos(), (1 << 20) + 64);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(9);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
