//! Offline vendored serde facade.
//!
//! The workspace only needs `#[derive(Serialize, Deserialize)]` on plain
//! structs/newtypes/unit enums plus `serde_json::{to_string, from_str}`,
//! so this shim replaces serde's visitor machinery with a tiny in-memory
//! [`Value`] model: `Serialize` renders into a `Value`, `Deserialize`
//! reads back out of one, and `serde_json` handles text. Numbers keep
//! their literal text so `f32`/`f64` round-trip bit-exactly through the
//! shortest-representation `Display` impls.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// In-memory JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Array elements, or an error for non-arrays.
    pub fn elements(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Short kind tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    /// Build the value tree.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

// Identity impls so callers can (de)serialize into the dynamic `Value`
// itself — e.g. tooling that inspects JSON files of unknown shape.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(format!("{}", self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(text) => text.parse::<$t>().map_err(|e| {
                        Error(format!("cannot parse `{text}` as {}: {e}", stringify!($t)))
                    }),
                    other => Err(Error(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if self.is_finite() {
                    // Rust's float Display prints the shortest string that
                    // round-trips, so parse-back is exact.
                    Value::Num(format!("{}", self))
                } else {
                    // JSON has no inf/NaN; mirror serde_json's `null`.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(text) => text.parse::<$t>().map_err(|e| {
                        Error(format!("cannot parse `{text}` as {}: {e}", stringify!($t)))
                    }),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.elements()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.elements()?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected {}-tuple, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}
