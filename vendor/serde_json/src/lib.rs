//! Offline vendored `serde_json`: JSON text ⇄ the serde facade's
//! [`Value`] model.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers are kept as literal text inside
//! [`Value::Num`], so floats round-trip exactly through Rust's
//! shortest-representation `Display`/`FromStr`.

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Result alias matching upstream's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialise `value` to indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(text) => out.push_str(text),
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                let _ = write!(out, "{:width$}", "", width = (indent + 1) * 2);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            let _ = write!(out, "{:width$}]", "", width = indent * 2);
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                let _ = write!(out, "{:width$}", "", width = (indent + 1) * 2);
                write_json_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            let _ = write!(out, "{:width$}}}", "", width = indent * 2);
        }
        other => write_value(other, out),
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{text}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our
                            // writer; accept BMP scalars only.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u scalar".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run up to the next quote or
                    // escape and validate it once. (Multi-byte UTF-8
                    // units are all ≥ 0x80, so the byte scan can't
                    // split a scalar.) Validating per character meant
                    // re-checking the whole remaining buffer each time,
                    // which made parsing quadratic in document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    s.push_str(text);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(Error(format!("expected number at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number")
            .to_string();
        Ok(Value::Num(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<bool>(" false ").unwrap(), false);
    }

    #[test]
    fn roundtrip_floats_exactly() {
        for &x in &[0.1f64, 1e300, -2.5e-7, 1.0 / 3.0, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
        for &x in &[0.1f32, 3.4e38, -7.0e-30, 1.0f32 / 3.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), v);
    }

    #[test]
    fn roundtrip_strings_with_escapes() {
        let s = "a \"quoted\"\nline\\with\tstuff ünïcödé";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
