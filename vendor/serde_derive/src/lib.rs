//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde
//! facade in `vendor/serde`.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`): supports
//! exactly the shapes this workspace derives on — non-generic structs with
//! named fields, tuple structs (1-field newtypes serialise as their inner
//! value, wider ones as arrays), and enums with unit variants (serialised
//! as the variant name). Field `#[serde(...)]` attributes are not
//! supported and the workspace uses none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a type we can derive for.
enum Shape {
    /// `struct Name { a: A, b: B }`
    Named { name: String, fields: Vec<String> },
    /// `struct Name(A, B);`
    Tuple { name: String, arity: usize },
    /// `enum Name { A, B }`
    Unit { name: String, variants: Vec<String> },
}

/// Skip attributes (`#[...]`, incl. doc comments) and return remaining
/// tokens.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
                name,
                arity: count_tuple_fields(g.stream()),
            },
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Unit {
                name,
                variants: parse_unit_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        fields.push(fname);
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        // Skip the type: advance to the next top-level comma. Generic
        // arguments may contain commas, so track angle-bracket depth.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
    }
    fields
}

/// Arity of a tuple-struct body (top-level comma count + 1).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut saw_tail = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_tail = false;
            }
            _ => saw_tail = true,
        }
    }
    if !saw_tail {
        arity -= 1; // trailing comma
    }
    arity
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("serde_derive: expected variant name, got {other}"),
        }
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive shim: enum variants with data are not supported")
            }
            Some(other) => panic!("serde_derive: unexpected token {other}"),
        }
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{f}\".to_string(), \
                         serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> serde::Value {{\n\
                     serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Unit { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::deserialize(__v.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok(Self(serde::Deserialize::deserialize(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let __items = __v.elements()?;\n\
                         if __items.len() != {arity} {{\n\
                             return Err(serde::Error(format!(\n\
                                 \"expected {arity} elements, got {{}}\", __items.len())));\n\
                         }}\n\
                         Ok(Self({}))\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Unit { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\n\
                                 __other => Err(serde::Error(format!(\n\
                                     \"unknown {name} variant `{{}}`\", __other))),\n\
                             }},\n\
                             __other => Err(serde::Error(format!(\n\
                                 \"expected string for {name}, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}
