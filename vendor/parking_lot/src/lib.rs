//! Offline vendored `parking_lot` shim: `Mutex`/`RwLock` with the
//! poison-free `lock()`/`read()`/`write()` API, backed by `std::sync`.
//! Poisoned std locks (a panic while held) are unwrapped into a panic,
//! matching parking_lot's "no poisoning" behaviour closely enough for
//! this workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New unlocked rwlock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (no poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard (no poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
