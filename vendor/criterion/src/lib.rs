//! Offline vendored criterion-compatible micro-benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by this
//! workspace's benches: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `BenchmarkId`, `sample_size`, and `Bencher::iter`. Measurement is a
//! simple calibrated loop (warm-up to estimate cost, then `sample_size`
//! timed samples; the median is reported), which is plenty for tracking
//! relative perf across PRs without crates.io access.
//!
//! Results are printed to stdout and collected in
//! [`Criterion::results`], so harness binaries can post-process them
//! (e.g. emit a `BENCH_*.json`). Set `SPG_BENCH_FAST=1` to cut sample
//! counts for smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a displayed parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/parameter` path.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// The harness root.
#[derive(Debug, Default)]
pub struct Criterion {
    /// All results measured so far, in execution order.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: default_sample_size(),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let res = run_bench(&id, default_sample_size(), f);
        self.results.push(res);
        self
    }
}

fn default_sample_size() -> usize {
    if std::env::var_os("SPG_BENCH_FAST").is_some() {
        10
    } else {
        30
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Upstream tuning knob; accepted and ignored (sampling here is
    /// calibrated per-benchmark instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upstream tuning knob; accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let res = run_bench(&full, self.sample_size, f);
        self.criterion.results.push(res);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (kept for API compatibility; results are already
    /// recorded).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    measured: Option<f64>,
}

impl Bencher {
    /// Measure `f`, subtracting nothing (monotonic wall clock).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: aim for samples of >= ~2ms or 1 iter.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = start.elapsed();
            times.push(dt.as_secs_f64() * 1e9 / self.iters_per_sample as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.measured = Some(times[times.len() / 2]);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) -> BenchResult {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples,
        measured: None,
    };
    f(&mut b);
    let ns = b.measured.unwrap_or(f64::NAN);
    println!("bench {id:<56} {:>14} ns/iter", format_ns(ns));
    BenchResult {
        id: id.to_string(),
        ns_per_iter: ns,
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Group benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].ns_per_iter > 0.0);
        assert_eq!(c.results[0].id, "g/noop");
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
