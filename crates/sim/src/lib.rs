//! # spg-sim
//!
//! Throughput simulation for stream-processing allocations, replacing the
//! CEPSim simulator used by the paper.
//!
//! Two models are provided:
//!
//! * [`analytic`] — an exact bottleneck model. Because every load (CPU
//!   demand, link traffic) is linear in the source rate, the sustainable
//!   throughput is the source rate scaled by the tightest
//!   capacity/load ratio. This is what RL training uses (microseconds per
//!   evaluation).
//! * [`des`] — a discrete-time simulator with per-device round-robin
//!   scheduling, bounded queues and backpressure. It converges to the same
//!   steady state and validates the analytic model (see the cross-check
//!   integration tests).
//!
//! The reward used for REINFORCE is the paper's *relative throughput*
//! `r = T(G_y) / I(G_x) ∈ [0, 1]` ([`reward::relative_throughput`]).

pub mod analytic;
pub mod des;
pub mod hetero;
pub mod inject;
pub mod latency;
pub mod metrics;
pub mod reward;

pub use analytic::{simulate, Bottleneck, SimResult};
pub use des::{simulate_des_phases, DesConfig, DesPhase, DesResult};
pub use hetero::simulate_hetero;
pub use latency::estimate_latency;
pub use reward::relative_throughput;
