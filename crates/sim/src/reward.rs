//! The REINFORCE reward of the paper.

use spg_graph::{ClusterSpec, Placement, StreamGraph, TupleRates};

/// The paper's reward: `r(G_y) = T(G_y) / I(G_x) ∈ [0, 1]` — the sustained
/// throughput relative to the source tuple rate. `r = 1` means no
/// backpressure (the allocation keeps up with the sources).
pub fn relative_throughput(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
) -> f64 {
    crate::analytic::simulate(graph, cluster, placement, source_rate).relative
}

/// Same, reusing precomputed rates (hot path inside RL training).
pub fn relative_throughput_with_rates(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    rates: &TupleRates,
) -> f64 {
    crate::analytic::simulate_with_rates(graph, cluster, placement, rates).relative
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    #[test]
    fn reward_is_in_unit_interval() {
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(1e6));
        let k = b.add_node(Operator::new(1e6));
        b.add_edge(s, k, Channel::new(1e6)).unwrap();
        let g = b.finish().unwrap();
        let cluster = ClusterSpec::paper_medium(2);
        for p in [Placement::all_on_one(2), Placement::new(vec![0, 1])] {
            let r = relative_throughput(&g, &cluster, &p, 1e4);
            assert!((0.0..=1.0).contains(&r), "r = {r}");
        }
    }
}
