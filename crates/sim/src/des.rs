//! Discrete-time stream simulator with bounded queues and backpressure.
//!
//! This is the executable counterpart of the analytic bottleneck model: a
//! fluid-flow simulation stepped at `dt` where
//!
//! * each device has a per-step CPU budget shared by resident operators,
//! * each directed edge has a bounded downstream buffer,
//! * cross-device edges additionally consume per-step egress/ingress NIC and
//!   per-link budgets when tuples move,
//! * an operator can only process as many tuples as its inputs, its CPU
//!   share, and the space/bandwidth of *all* its outputs allow — blocked
//!   outputs fill buffers, which stalls upstream operators and ultimately
//!   throttles the sources (backpressure).
//!
//! The measured steady-state accepted source rate converges to the analytic
//! `α · I`; the `analytic_vs_des` integration test quantifies agreement.

use crate::analytic::Bottleneck;
use spg_graph::{ClusterSpec, NodeId, Placement, StreamGraph};
use std::collections::HashMap;

/// Configuration for the discrete-time simulation.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Step length in seconds.
    pub dt: f64,
    /// Steps discarded before measuring (fills the pipeline / reaches
    /// backpressure equilibrium).
    pub warmup_steps: usize,
    /// Steps measured for the throughput estimate.
    pub measure_steps: usize,
    /// Capacity of each edge buffer, in tuples.
    pub queue_capacity: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            dt: 1e-3,
            warmup_steps: 4_000,
            measure_steps: 4_000,
            queue_capacity: 200.0,
        }
    }
}

/// Result of a discrete-time simulation.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Mean accepted source rate over the measurement window (tuples/s).
    pub throughput: f64,
    /// `throughput / source_rate`.
    pub relative: f64,
    /// Mean sink completion rate over the window (tuples/s) — equals the
    /// accepted source rate in steady state for selectivity-1 graphs.
    pub sink_rate: f64,
    /// Fraction of steps in which each device exhausted its CPU budget.
    pub cpu_saturation: Vec<f64>,
}

/// Run the discrete-time simulation.
///
/// Calls (and, when telemetry is live, wall-clock time) are counted on
/// [`spg_obs::probe::SIM_DES`]; results are untouched.
pub fn simulate_des(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
    cfg: &DesConfig,
) -> DesResult {
    if let Some(crate::inject::Fault::SimError) =
        crate::inject::at(crate::inject::Site::Simulator, crate::inject::context_key())
    {
        panic!(
            "injected simulator error (des, key {})",
            crate::inject::context_key()
        );
    }
    spg_obs::probe::SIM_DES.time(|| simulate_des_impl(graph, cluster, placement, source_rate, cfg))
}

fn simulate_des_impl(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
    cfg: &DesConfig,
) -> DesResult {
    assert!(
        placement.validate(graph, cluster.devices),
        "placement must cover the graph and respect the device count"
    );
    let n = graph.num_nodes();
    let dt = cfg.dt;
    let cpu_cap = cluster.instr_per_sec() * dt;
    let bw_cap = cluster.link_bytes_per_sec() * dt;

    // Edge buffers (tuples waiting at the downstream side of each edge).
    let mut buf = vec![0.0f64; graph.num_edges()];
    let mut egress = vec![0.0f64; cluster.devices];
    let mut ingress = vec![0.0f64; cluster.devices];
    let mut link: HashMap<(u32, u32), f64> = HashMap::new();

    let order: Vec<NodeId> = graph.topo_order().iter().map(|&v| NodeId(v)).collect();
    let sinks: Vec<NodeId> = graph.sinks();
    let sink_set: Vec<bool> = {
        let mut s = vec![false; n];
        for &v in &sinks {
            s[v.idx()] = true;
        }
        s
    };

    let mut accepted = 0.0f64;
    let mut completed = 0.0f64;
    let mut cpu_saturated = vec![0usize; cluster.devices];
    let mut desire = vec![0.0f64; n];
    let mut demand = vec![0.0f64; cluster.devices];

    let total_steps = cfg.warmup_steps + cfg.measure_steps;
    for step in 0..total_steps {
        let measuring = step >= cfg.warmup_steps;
        egress.fill(bw_cap);
        ingress.fill(bw_cap);
        link.clear();

        // Phase A: how much would each operator process with unlimited
        // CPU, bounded by its inputs and per-edge output space?
        demand.fill(0.0);
        for &v in &order {
            let is_source = graph.in_degree(v) == 0;
            let mut want = if is_source {
                source_rate * dt
            } else {
                graph.in_edges(v).map(|(_, e)| buf[e.idx()]).sum::<f64>()
            };
            for (_, e) in graph.out_edges(v) {
                let ch = graph.channel(e);
                if ch.selectivity <= 0.0 {
                    continue;
                }
                let space = (cfg.queue_capacity - buf[e.idx()]).max(0.0);
                want = want.min(space / ch.selectivity);
            }
            desire[v.idx()] = want.max(0.0);
            demand[placement.device(v.idx()) as usize] += desire[v.idx()] * graph.op(v).ipt;
        }

        // Proportional-share CPU: every operator on a device gets the same
        // fraction of its demand (fluid fair scheduling, matching the
        // shared-CPU assumption of the analytic model).
        let scale: Vec<f64> = demand
            .iter()
            .map(|&d| if d > cpu_cap { cpu_cap / d } else { 1.0 })
            .collect();
        for (dev, &d) in demand.iter().enumerate() {
            if d >= cpu_cap * (1.0 - 1e-9) && d > 0.0 {
                cpu_saturated[dev] += 1;
            }
        }

        // Phase B: commit in topological order, respecting shared
        // bandwidth budgets as tuples actually move.
        for &v in &order {
            let dev = placement.device(v.idx()) as usize;
            let mut tuples = desire[v.idx()] * scale[dev];
            if tuples <= 0.0 {
                continue;
            }
            let is_source = graph.in_degree(v) == 0;
            let available = if is_source {
                source_rate * dt
            } else {
                graph.in_edges(v).map(|(_, e)| buf[e.idx()]).sum::<f64>()
            };
            tuples = tuples.min(available);
            // Bandwidth constraints at commit time (shared budgets).
            for (w, e) in graph.out_edges(v) {
                let ch = graph.channel(e);
                if ch.selectivity <= 0.0 {
                    continue;
                }
                let space = (cfg.queue_capacity - buf[e.idx()]).max(0.0);
                tuples = tuples.min(space / ch.selectivity);
                let wdev = placement.device(w.idx()) as usize;
                if wdev != dev && ch.payload > 0.0 {
                    let lb = link.entry((dev as u32, wdev as u32)).or_insert(bw_cap);
                    let bw_tuples = egress[dev].min(ingress[wdev]).min(*lb) / ch.payload;
                    tuples = tuples.min(bw_tuples / ch.selectivity);
                }
            }
            if tuples <= 0.0 {
                continue;
            }

            if !is_source {
                let scale_in = tuples / available;
                for (_, e) in graph.in_edges(v) {
                    buf[e.idx()] -= buf[e.idx()] * scale_in;
                }
            } else if measuring {
                accepted += tuples;
            }
            for (w, e) in graph.out_edges(v) {
                let ch = graph.channel(e);
                let amount = tuples * ch.selectivity;
                if amount <= 0.0 {
                    continue;
                }
                let wdev = placement.device(w.idx()) as usize;
                if wdev != dev {
                    let bytes = amount * ch.payload;
                    egress[dev] -= bytes;
                    ingress[wdev] -= bytes;
                    *link.get_mut(&(dev as u32, wdev as u32)).unwrap() -= bytes;
                }
                buf[e.idx()] += amount;
            }
            if sink_set[v.idx()] && measuring {
                completed += tuples;
            }
        }
    }

    let window = cfg.measure_steps as f64 * dt;
    let throughput = accepted / window;
    DesResult {
        throughput,
        relative: if source_rate > 0.0 {
            throughput / source_rate
        } else {
            0.0
        },
        sink_rate: completed / (window * sinks.len().max(1) as f64),
        cpu_saturation: cpu_saturated
            .iter()
            .map(|&c| c as f64 / total_steps as f64)
            .collect(),
    }
}

/// Convenience: classify the analytic bottleneck and check that the DES
/// agrees with the analytic relative throughput within `tol`.
pub fn cross_check(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
    cfg: &DesConfig,
    tol: f64,
) -> (f64, f64, Bottleneck) {
    let a = crate::analytic::simulate(graph, cluster, placement, source_rate);
    let d = simulate_des(graph, cluster, placement, source_rate, cfg);
    assert!(
        (a.relative - d.relative).abs() <= tol,
        "analytic {} vs des {} differ by more than {tol}",
        a.relative,
        d.relative
    );
    (a.relative, d.relative, a.bottleneck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    fn pipeline(worker_ipt: f64, payload: f64) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(100.0));
        let w = b.add_node(Operator::new(worker_ipt));
        let k = b.add_node(Operator::new(100.0));
        b.add_edge(s, w, Channel::new(payload)).unwrap();
        b.add_edge(w, k, Channel::new(payload)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn unconstrained_matches_source_rate() {
        let g = pipeline(100.0, 10.0);
        let cluster = ClusterSpec::paper_medium(2);
        let r = simulate_des(
            &g,
            &cluster,
            &Placement::all_on_one(3),
            1e4,
            &DesConfig::default(),
        );
        assert!((r.relative - 1.0).abs() < 0.02, "relative = {}", r.relative);
    }

    #[test]
    fn cpu_bottleneck_halves_throughput() {
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate_des(&g, &cluster, &p, 1e4, &DesConfig::default());
        assert!((r.relative - 0.5).abs() < 0.05, "relative = {}", r.relative);
        // Worker device should be CPU-saturated most steps once warmed up.
        assert!(r.cpu_saturation[1] > 0.5);
    }

    #[test]
    fn network_bottleneck_throttles_source() {
        let g = pipeline(100.0, 1e5);
        let cluster = ClusterSpec::paper_medium(2);
        let p = Placement::new(vec![0, 1, 0]);
        let a = crate::analytic::simulate(&g, &cluster, &p, 1e4);
        let r = simulate_des(&g, &cluster, &p, 1e4, &DesConfig::default());
        assert!(
            (r.relative - a.relative).abs() < 0.05,
            "des {} vs analytic {}",
            r.relative,
            a.relative
        );
    }

    #[test]
    fn sink_rate_tracks_accepted_rate() {
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate_des(&g, &cluster, &p, 1e4, &DesConfig::default());
        assert!(
            (r.sink_rate - r.throughput).abs() / r.throughput < 0.1,
            "sink {} vs accepted {}",
            r.sink_rate,
            r.throughput
        );
    }

    #[test]
    fn zero_rate_runs_cleanly() {
        let g = pipeline(100.0, 10.0);
        let cluster = ClusterSpec::paper_medium(2);
        let r = simulate_des(
            &g,
            &cluster,
            &Placement::all_on_one(3),
            0.0,
            &DesConfig::default(),
        );
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.relative, 0.0);
    }
}
