//! Discrete-time stream simulator with bounded queues and backpressure.
//!
//! This is the executable counterpart of the analytic bottleneck model: a
//! fluid-flow simulation stepped at `dt` where
//!
//! * each device has a per-step CPU budget shared by resident operators,
//! * each directed edge has a bounded downstream buffer,
//! * cross-device edges additionally consume per-step egress/ingress NIC and
//!   per-link budgets when tuples move,
//! * an operator can only process as many tuples as its inputs, its CPU
//!   share, and the space/bandwidth of *all* its outputs allow — blocked
//!   outputs fill buffers, which stalls upstream operators and ultimately
//!   throttles the sources (backpressure).
//!
//! The measured steady-state accepted source rate converges to the analytic
//! `α · I`; the `sim_crosscheck` integration tests quantify agreement.
//!
//! ## Measurement: waiting out the fill transient
//!
//! Until backpressure reaches the sources, they accept tuples *above* the
//! sustainable rate — the excess is absorbed by the bounded edge buffers,
//! not processed. That fill transient lasts on the order of
//! `queue_capacity / excess_rate` simulated seconds *per hop* between the
//! bottleneck and the sources, so a fixed warmup can be arbitrarily short
//! of equilibrium when a bottleneck is nearly balanced (historically this
//! produced a persistent +0.05..0.08 over-estimate vs the analytic model
//! on hot random placements). The simulator therefore measures in blocks
//! of [`DesConfig::measure_steps`] and keeps extending until two
//! equilibrium signals agree (or [`DesConfig::max_measure_blocks`] is
//! exhausted):
//!
//! * the accepted rate changed less than [`DesConfig::converge_rate_tol`]
//!   (in `throughput / source_rate` units) between consecutive blocks, and
//! * the total buffered tuple mass is no longer growing: its net change
//!   over the block, normalised by the tuples offered in the block, is
//!   below [`DesConfig::converge_mass_tol`]. This is what distinguishes a
//!   mid-transient plateau (buffers still filling) from steady state.
//!
//! Only the final block is reported, so the estimate carries no transient
//! bias. The loop is deterministic — pure function of graph, placement and
//! config.

use crate::analytic::Bottleneck;
use spg_graph::{ClusterSpec, NodeId, Placement, StreamGraph};
use std::collections::HashMap;

/// Configuration for the discrete-time simulation.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Step length in seconds.
    pub dt: f64,
    /// Steps discarded before measuring (fills the pipeline / reaches
    /// backpressure equilibrium).
    pub warmup_steps: usize,
    /// Steps per measurement block. Blocks are repeated until the
    /// convergence criteria below hold (see the module docs).
    pub measure_steps: usize,
    /// Capacity of each edge buffer, in tuples.
    pub queue_capacity: f64,
    /// Upper bound on measurement blocks; the last executed block is
    /// reported even if convergence was not reached.
    pub max_measure_blocks: usize,
    /// Maximum change of relative accepted rate between consecutive
    /// blocks for the run to count as converged.
    pub converge_rate_tol: f64,
    /// Maximum net change of total buffered tuple mass over a block,
    /// normalised by the tuples offered in the block
    /// (`measure_steps · dt · source_rate`), for convergence.
    pub converge_mass_tol: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            dt: 1e-3,
            warmup_steps: 4_000,
            measure_steps: 4_000,
            queue_capacity: 200.0,
            max_measure_blocks: 16,
            converge_rate_tol: 0.0075,
            converge_mass_tol: 0.002,
        }
    }
}

/// Result of a discrete-time simulation.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Mean accepted source rate over the measurement window (tuples/s).
    pub throughput: f64,
    /// `throughput / source_rate`.
    pub relative: f64,
    /// Mean sink completion rate over the window (tuples/s) — equals the
    /// accepted source rate in steady state for selectivity-1 graphs.
    pub sink_rate: f64,
    /// Fraction of steps in which each device exhausted its CPU budget.
    pub cpu_saturation: Vec<f64>,
}

/// Run the discrete-time simulation.
///
/// Calls (and, when telemetry is live, wall-clock time) are counted on
/// [`spg_obs::probe::SIM_DES`]; results are untouched.
pub fn simulate_des(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
    cfg: &DesConfig,
) -> DesResult {
    if let Some(crate::inject::Fault::SimError) =
        crate::inject::at(crate::inject::Site::Simulator, crate::inject::context_key())
    {
        panic!(
            "injected simulator error (des, key {})",
            crate::inject::context_key()
        );
    }
    spg_obs::probe::SIM_DES.time(|| simulate_des_impl(graph, cluster, placement, source_rate, cfg))
}

/// Mutable state of one simulation run plus the immutable inputs it
/// steps over; lets the block-measurement loop in [`simulate_des_impl`]
/// re-enter the stepping kernel without replumbing a dozen locals.
struct Sim<'a> {
    graph: &'a StreamGraph,
    placement: &'a Placement,
    cfg: &'a DesConfig,
    source_rate: f64,
    cpu_cap: f64,
    bw_cap: f64,
    order: Vec<NodeId>,
    sink_set: Vec<bool>,
    buf: Vec<f64>,
    egress: Vec<f64>,
    ingress: Vec<f64>,
    link: HashMap<(u32, u32), f64>,
    desire: Vec<f64>,
    demand: Vec<f64>,
    cpu_saturated: Vec<usize>,
    executed_steps: usize,
    /// Accepted source tuples in the current measurement block.
    accepted: f64,
    /// Sink completions in the current measurement block.
    completed: f64,
}

impl<'a> Sim<'a> {
    fn new(
        graph: &'a StreamGraph,
        cluster: &ClusterSpec,
        placement: &'a Placement,
        source_rate: f64,
        cfg: &'a DesConfig,
    ) -> Self {
        let n = graph.num_nodes();
        let dt = cfg.dt;
        Sim {
            graph,
            placement,
            cfg,
            source_rate,
            cpu_cap: cluster.instr_per_sec() * dt,
            bw_cap: cluster.link_bytes_per_sec() * dt,
            order: graph.topo_order().iter().map(|&v| NodeId(v)).collect(),
            sink_set: {
                let mut s = vec![false; n];
                for v in graph.sinks() {
                    s[v.idx()] = true;
                }
                s
            },
            buf: vec![0.0f64; graph.num_edges()],
            egress: vec![0.0f64; cluster.devices],
            ingress: vec![0.0f64; cluster.devices],
            link: HashMap::new(),
            desire: vec![0.0f64; n],
            demand: vec![0.0f64; cluster.devices],
            cpu_saturated: vec![0usize; cluster.devices],
            executed_steps: 0,
            accepted: 0.0,
            completed: 0.0,
        }
    }

    /// Total tuples currently sitting in edge buffers.
    fn buffered_mass(&self) -> f64 {
        self.buf.iter().sum()
    }

    /// Advance the simulation by `steps`; accepted/completed tuples are
    /// accumulated only when `measuring`.
    fn run(&mut self, steps: usize, measuring: bool) {
        let graph = self.graph;
        let placement = self.placement;
        let cfg = self.cfg;
        let dt = cfg.dt;
        let source_rate = self.source_rate;
        let cpu_cap = self.cpu_cap;
        let bw_cap = self.bw_cap;
        let order = &self.order;
        let sink_set = &self.sink_set;
        let buf = &mut self.buf;
        let egress = &mut self.egress;
        let ingress = &mut self.ingress;
        let link = &mut self.link;
        let desire = &mut self.desire;
        let demand = &mut self.demand;
        let cpu_saturated = &mut self.cpu_saturated;
        let accepted = &mut self.accepted;
        let completed = &mut self.completed;
        self.executed_steps += steps;
        for _ in 0..steps {
            egress.fill(bw_cap);
            ingress.fill(bw_cap);
            link.clear();

            // Phase A: how much would each operator process with unlimited
            // CPU, bounded by its inputs and per-edge output space?
            demand.fill(0.0);
            for &v in order {
                let is_source = graph.in_degree(v) == 0;
                let mut want = if is_source {
                    source_rate * dt
                } else {
                    graph.in_edges(v).map(|(_, e)| buf[e.idx()]).sum::<f64>()
                };
                for (_, e) in graph.out_edges(v) {
                    let ch = graph.channel(e);
                    if ch.selectivity <= 0.0 {
                        continue;
                    }
                    let space = (cfg.queue_capacity - buf[e.idx()]).max(0.0);
                    want = want.min(space / ch.selectivity);
                }
                desire[v.idx()] = want.max(0.0);
                demand[placement.device(v.idx()) as usize] += desire[v.idx()] * graph.op(v).ipt;
            }

            // Proportional-share CPU: every operator on a device gets the same
            // fraction of its demand (fluid fair scheduling, matching the
            // shared-CPU assumption of the analytic model).
            let scale: Vec<f64> = demand
                .iter()
                .map(|&d| if d > cpu_cap { cpu_cap / d } else { 1.0 })
                .collect();
            for (dev, &d) in demand.iter().enumerate() {
                if d >= cpu_cap * (1.0 - 1e-9) && d > 0.0 {
                    cpu_saturated[dev] += 1;
                }
            }

            // Phase B: commit in topological order, respecting shared
            // bandwidth budgets as tuples actually move.
            for &v in order {
                let dev = placement.device(v.idx()) as usize;
                let mut tuples = desire[v.idx()] * scale[dev];
                if tuples <= 0.0 {
                    continue;
                }
                let is_source = graph.in_degree(v) == 0;
                let available = if is_source {
                    source_rate * dt
                } else {
                    graph.in_edges(v).map(|(_, e)| buf[e.idx()]).sum::<f64>()
                };
                tuples = tuples.min(available);
                // Bandwidth constraints at commit time (shared budgets).
                for (w, e) in graph.out_edges(v) {
                    let ch = graph.channel(e);
                    if ch.selectivity <= 0.0 {
                        continue;
                    }
                    let space = (cfg.queue_capacity - buf[e.idx()]).max(0.0);
                    tuples = tuples.min(space / ch.selectivity);
                    let wdev = placement.device(w.idx()) as usize;
                    if wdev != dev && ch.payload > 0.0 {
                        let lb = link.entry((dev as u32, wdev as u32)).or_insert(bw_cap);
                        let bw_tuples = egress[dev].min(ingress[wdev]).min(*lb) / ch.payload;
                        tuples = tuples.min(bw_tuples / ch.selectivity);
                    }
                }
                if tuples <= 0.0 {
                    continue;
                }

                if !is_source {
                    let scale_in = tuples / available;
                    for (_, e) in graph.in_edges(v) {
                        buf[e.idx()] -= buf[e.idx()] * scale_in;
                    }
                } else if measuring {
                    *accepted += tuples;
                }
                for (w, e) in graph.out_edges(v) {
                    let ch = graph.channel(e);
                    let amount = tuples * ch.selectivity;
                    if amount <= 0.0 {
                        continue;
                    }
                    let wdev = placement.device(w.idx()) as usize;
                    if wdev != dev {
                        let bytes = amount * ch.payload;
                        egress[dev] -= bytes;
                        ingress[wdev] -= bytes;
                        *link.get_mut(&(dev as u32, wdev as u32)).unwrap() -= bytes;
                    }
                    buf[e.idx()] += amount;
                }
                if sink_set[v.idx()] && measuring {
                    *completed += tuples;
                }
            }
        }
    }
}

/// Measure in blocks until the accepted rate stops moving AND the
/// buffered mass stops growing (see module docs), then report the last
/// block only — it is the one closest to equilibrium.
///
/// Convergence state (`prev_rel`) starts fresh on every call. That
/// freshness is load-bearing at a mid-stream re-allocation boundary: a
/// previous phase's settled rate must never pre-satisfy the new phase's
/// rate-settled criterion, or a phase whose first block happens to land
/// near the old equilibrium would stop measuring while its buffers are
/// still re-draining toward the *new* one.
fn measure_blocks(sim: &mut Sim, sink_count: usize) -> (f64, f64, f64) {
    let cfg = sim.cfg;
    let window = cfg.measure_steps as f64 * cfg.dt;
    let source_rate = sim.source_rate;
    let offered = window * source_rate;
    let mut prev_rel: Option<f64> = None;
    let mut throughput = 0.0;
    let mut relative = 0.0;
    let mut sink_rate = 0.0;
    for _ in 0..cfg.max_measure_blocks.max(1) {
        sim.accepted = 0.0;
        sim.completed = 0.0;
        let mass_before = sim.buffered_mass();
        sim.run(cfg.measure_steps, true);
        let mass_delta = if offered > 0.0 {
            (sim.buffered_mass() - mass_before).abs() / offered
        } else {
            0.0
        };
        throughput = sim.accepted / window;
        relative = if source_rate > 0.0 {
            throughput / source_rate
        } else {
            0.0
        };
        sink_rate = sim.completed / (window * sink_count.max(1) as f64);
        let rate_settled = prev_rel.is_some_and(|p| (relative - p).abs() <= cfg.converge_rate_tol);
        if rate_settled && mass_delta <= cfg.converge_mass_tol {
            break;
        }
        prev_rel = Some(relative);
    }
    (throughput, relative, sink_rate)
}

fn simulate_des_impl(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
    cfg: &DesConfig,
) -> DesResult {
    assert!(
        placement.validate(graph, cluster.devices),
        "placement must cover the graph and respect the device count"
    );
    let sink_count = graph.sinks().len();
    let mut sim = Sim::new(graph, cluster, placement, source_rate, cfg);
    sim.run(cfg.warmup_steps, false);
    let (throughput, relative, sink_rate) = measure_blocks(&mut sim, sink_count);
    DesResult {
        throughput,
        relative,
        sink_rate,
        cpu_saturation: sim
            .cpu_saturated
            .iter()
            .map(|&c| c as f64 / sim.executed_steps.max(1) as f64)
            .collect(),
    }
}

/// One phase of a drifting workload: the placement and source rate in
/// effect from one re-allocation boundary to the next.
#[derive(Debug, Clone)]
pub struct DesPhase {
    /// Placement in effect during the phase.
    pub placement: Placement,
    /// Offered source rate during the phase.
    pub source_rate: f64,
}

/// Simulate a sequence of re-allocation phases over one live stream.
///
/// Edge buffers persist across phase boundaries — a re-allocation swaps
/// the placement (and possibly the rate) *under* whatever tuple mass
/// the previous phase left in flight, which is exactly the transient a
/// drifting deployment pays. Everything that describes *measurement*,
/// however, restarts per phase: an unmeasured warmup absorbs the
/// switch-over transient, the adaptive converged-block window begins
/// with fresh convergence state (see [`measure_blocks`]), and CPU
/// saturation counters are zeroed so each [`DesResult`] describes its
/// own phase only.
///
/// Returns one [`DesResult`] per phase, in order. Deterministic — a
/// pure function of graph, phases, and config.
pub fn simulate_des_phases(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    phases: &[DesPhase],
    cfg: &DesConfig,
) -> Vec<DesResult> {
    assert!(!phases.is_empty(), "at least one phase is required");
    for (i, ph) in phases.iter().enumerate() {
        assert!(
            ph.placement.validate(graph, cluster.devices),
            "phase {i} placement must cover the graph and respect the device count"
        );
    }
    spg_obs::probe::SIM_DES.time(|| {
        let sink_count = graph.sinks().len();
        let mut sim = Sim::new(
            graph,
            cluster,
            &phases[0].placement,
            phases[0].source_rate,
            cfg,
        );
        let mut results = Vec::with_capacity(phases.len());
        for ph in phases {
            sim.placement = &ph.placement;
            sim.source_rate = ph.source_rate;
            sim.cpu_saturated.fill(0);
            sim.executed_steps = 0;
            sim.run(cfg.warmup_steps, false);
            let (throughput, relative, sink_rate) = measure_blocks(&mut sim, sink_count);
            results.push(DesResult {
                throughput,
                relative,
                sink_rate,
                cpu_saturation: sim
                    .cpu_saturated
                    .iter()
                    .map(|&c| c as f64 / sim.executed_steps.max(1) as f64)
                    .collect(),
            });
        }
        results
    })
}

/// Convenience: classify the analytic bottleneck and check that the DES
/// agrees with the analytic relative throughput within `tol`.
pub fn cross_check(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
    cfg: &DesConfig,
    tol: f64,
) -> (f64, f64, Bottleneck) {
    let a = crate::analytic::simulate(graph, cluster, placement, source_rate);
    let d = simulate_des(graph, cluster, placement, source_rate, cfg);
    assert!(
        (a.relative - d.relative).abs() <= tol,
        "analytic {} vs des {} differ by more than {tol}",
        a.relative,
        d.relative
    );
    (a.relative, d.relative, a.bottleneck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    fn pipeline(worker_ipt: f64, payload: f64) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(100.0));
        let w = b.add_node(Operator::new(worker_ipt));
        let k = b.add_node(Operator::new(100.0));
        b.add_edge(s, w, Channel::new(payload)).unwrap();
        b.add_edge(w, k, Channel::new(payload)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn unconstrained_matches_source_rate() {
        let g = pipeline(100.0, 10.0);
        let cluster = ClusterSpec::paper_medium(2);
        let r = simulate_des(
            &g,
            &cluster,
            &Placement::all_on_one(3),
            1e4,
            &DesConfig::default(),
        );
        assert!((r.relative - 1.0).abs() < 0.02, "relative = {}", r.relative);
    }

    #[test]
    fn cpu_bottleneck_halves_throughput() {
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate_des(&g, &cluster, &p, 1e4, &DesConfig::default());
        assert!((r.relative - 0.5).abs() < 0.05, "relative = {}", r.relative);
        // Worker device should be CPU-saturated most steps once warmed up.
        assert!(r.cpu_saturation[1] > 0.5);
    }

    #[test]
    fn network_bottleneck_throttles_source() {
        let g = pipeline(100.0, 1e5);
        let cluster = ClusterSpec::paper_medium(2);
        let p = Placement::new(vec![0, 1, 0]);
        let a = crate::analytic::simulate(&g, &cluster, &p, 1e4);
        let r = simulate_des(&g, &cluster, &p, 1e4, &DesConfig::default());
        assert!(
            (r.relative - a.relative).abs() < 0.05,
            "des {} vs analytic {}",
            r.relative,
            a.relative
        );
    }

    #[test]
    fn sink_rate_tracks_accepted_rate() {
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate_des(&g, &cluster, &p, 1e4, &DesConfig::default());
        assert!(
            (r.sink_rate - r.throughput).abs() / r.throughput < 0.1,
            "sink {} vs accepted {}",
            r.sink_rate,
            r.throughput
        );
    }

    #[test]
    fn phase_results_track_fresh_runs() {
        // Rate ramp across a re-allocation boundary: each phase must
        // converge to (near) what a fresh single-phase run reports,
        // even though buffers persist across the boundary.
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let cfg = DesConfig::default();
        let phases = vec![
            DesPhase {
                placement: Placement::new(vec![0, 1, 2]),
                source_rate: 1e4,
            },
            DesPhase {
                placement: Placement::new(vec![0, 1, 2]),
                source_rate: 2e4,
            },
        ];
        let rs = simulate_des_phases(&g, &cluster, &phases, &cfg);
        assert_eq!(rs.len(), 2);
        for (ph, r) in phases.iter().zip(&rs) {
            let fresh = simulate_des(&g, &cluster, &ph.placement, ph.source_rate, &cfg);
            assert!(
                (r.relative - fresh.relative).abs() < 0.05,
                "phase at rate {}: {} vs fresh {}",
                ph.source_rate,
                r.relative,
                fresh.relative
            );
        }
    }

    #[test]
    fn reallocation_boundary_resets_convergence_state() {
        // Phase 1 settles at relative ≈ 1.0 (unconstrained); phase 2
        // moves the whole pipeline onto one device where the worker is
        // CPU-bound. If convergence state leaked across the boundary,
        // phase 2 could stop at its first block while buffers are still
        // filling and report a stale near-1.0 rate; with the reset it
        // must land near its own fresh equilibrium.
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let cfg = DesConfig::default();
        let phases = vec![
            DesPhase {
                placement: Placement::new(vec![0, 1, 2]),
                source_rate: 1e3,
            },
            DesPhase {
                placement: Placement::all_on_one(3),
                source_rate: 2e4,
            },
        ];
        let rs = simulate_des_phases(&g, &cluster, &phases, &cfg);
        let fresh = simulate_des(&g, &cluster, &phases[1].placement, 2e4, &cfg);
        assert!((rs[0].relative - 1.0).abs() < 0.02, "{}", rs[0].relative);
        assert!(
            (rs[1].relative - fresh.relative).abs() < 0.05,
            "post-boundary {} vs fresh {}",
            rs[1].relative,
            fresh.relative
        );
        // Per-phase saturation accounting: phase 2's device 0 hosts the
        // CPU-bound worker; phase 1's does not.
        assert!(rs[1].cpu_saturation[0] > rs[0].cpu_saturation[0]);
    }

    #[test]
    fn zero_rate_runs_cleanly() {
        let g = pipeline(100.0, 10.0);
        let cluster = ClusterSpec::paper_medium(2);
        let r = simulate_des(
            &g,
            &cluster,
            &Placement::all_on_one(3),
            0.0,
            &DesConfig::default(),
        );
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.relative, 0.0);
    }
}
