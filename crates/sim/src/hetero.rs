//! Analytic throughput on heterogeneous clusters (the paper's future-work
//! extension): same bottleneck model as [`crate::analytic`], with
//! per-device CPU capacities.

use crate::analytic::Bottleneck;
use spg_graph::hetero::HeteroClusterSpec;
use spg_graph::{Placement, StreamGraph, TupleRates};
use std::collections::HashMap;

/// Result of a heterogeneous simulation.
#[derive(Debug, Clone)]
pub struct HeteroSimResult {
    /// Sustained throughput in tuples/second.
    pub throughput: f64,
    /// `throughput / source_rate ∈ [0, 1]`.
    pub relative: f64,
    /// Which resource saturated.
    pub bottleneck: Bottleneck,
    /// Per-device CPU demand at full rate (instr/s).
    pub cpu_load: Vec<f64>,
}

/// Simulate `placement` on a heterogeneous cluster.
pub fn simulate_hetero(
    graph: &StreamGraph,
    cluster: &HeteroClusterSpec,
    placement: &Placement,
    source_rate: f64,
) -> HeteroSimResult {
    assert!(
        placement.len() == graph.num_nodes() && placement.max_device_bound() <= cluster.devices(),
        "placement must cover the graph and respect the device count"
    );
    let rates = TupleRates::compute(graph, source_rate);
    let d = cluster.devices();
    let mut cpu_load = vec![0.0f64; d];
    for (v, op) in graph.ops().iter().enumerate() {
        cpu_load[placement.device(v) as usize] += rates.node[v] * op.ipt;
    }

    let mut egress = vec![0.0f64; d];
    let mut ingress = vec![0.0f64; d];
    let mut link_traffic: HashMap<(u32, u32), f64> = HashMap::new();
    for (i, &(s, t)) in graph.edge_list().iter().enumerate() {
        let (ds, dt) = (placement.device(s as usize), placement.device(t as usize));
        if ds == dt {
            continue;
        }
        let traffic = rates.edge[i] * graph.channels()[i].payload;
        egress[ds as usize] += traffic;
        ingress[dt as usize] += traffic;
        *link_traffic.entry((ds, dt)).or_insert(0.0) += traffic;
    }

    let bw = cluster.link_bytes_per_sec();
    let mut alpha = 1.0f64;
    let mut bottleneck = Bottleneck::None;
    for (dev, &load) in cpu_load.iter().enumerate() {
        if load > 0.0 {
            let a = cluster.instr_per_sec(dev) / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::DeviceCpu(dev as u32);
            }
        }
    }
    for (dev, &load) in egress.iter().enumerate() {
        if load > 0.0 {
            let a = bw / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::NicEgress(dev as u32);
            }
        }
    }
    for (dev, &load) in ingress.iter().enumerate() {
        if load > 0.0 {
            let a = bw / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::NicIngress(dev as u32);
            }
        }
    }
    for (&(s, t), &load) in &link_traffic {
        if load > 0.0 {
            let a = bw / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::Link(s, t);
            }
        }
    }

    HeteroSimResult {
        throughput: alpha * source_rate,
        relative: alpha,
        bottleneck,
        cpu_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, ClusterSpec, Operator, Placement, StreamGraphBuilder};

    fn two_workers() -> StreamGraph {
        // source -> heavy, source -> light
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(10.0));
        let heavy = b.add_node(Operator::new(2e5));
        let light = b.add_node(Operator::new(5e4));
        b.add_edge(s, heavy, Channel::with_selectivity(8.0, 0.5))
            .unwrap();
        b.add_edge(s, light, Channel::with_selectivity(8.0, 0.5))
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn matches_homogeneous_simulation_when_uniform() {
        let g = two_workers();
        let homo = ClusterSpec::paper_medium(3);
        let het = HeteroClusterSpec::homogeneous(&homo);
        let p = Placement::new(vec![0, 1, 2]);
        let a = crate::analytic::simulate(&g, &homo, &p, 1e4);
        let h = simulate_hetero(&g, &het, &p, 1e4);
        assert!((a.relative - h.relative).abs() < 1e-12);
    }

    #[test]
    fn big_device_for_heavy_operator_wins() {
        let g = two_workers();
        // Device 0: small, device 1: 4x larger.
        let het = HeteroClusterSpec::new(vec![500.0, 2000.0], 1000.0);
        // Heavy on the big device.
        let good = Placement::new(vec![0, 1, 0]);
        // Heavy on the small device.
        let bad = Placement::new(vec![1, 0, 1]);
        let rg = simulate_hetero(&g, &het, &good, 1e4).relative;
        let rb = simulate_hetero(&g, &het, &bad, 1e4).relative;
        assert!(rg > rb, "matching capacities must help: {rg} vs {rb}");
    }

    #[test]
    fn cpu_bottleneck_identifies_device() {
        let g = two_workers();
        let het = HeteroClusterSpec::new(vec![1000.0, 10.0], 10_000.0);
        let p = Placement::new(vec![0, 1, 0]);
        let r = simulate_hetero(&g, &het, &p, 1e4);
        assert_eq!(r.bottleneck, Bottleneck::DeviceCpu(1));
        assert!(r.relative < 1.0);
    }
}
