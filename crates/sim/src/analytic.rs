//! Analytic bottleneck throughput model.
//!
//! Every resource load is linear in the source rate `I`:
//!
//! * CPU demand of device `d`: `Σ_{v on d} R_v · ipt_v`
//! * directional link traffic `d1 → d2`: `Σ_{e crossing d1→d2} R_e · P_e`
//! * NIC load of device `d`: total egress plus total ingress, each capped by
//!   the link bandwidth (devices have one full-duplex NIC).
//!
//! The sustainable fraction of the offered load is therefore
//! `α = min(1, min_c capacity_c / load_c)` and the throughput is `α · I`.
//! A stream system under backpressure stabilises at exactly this rate — the
//! discrete-time simulator in [`crate::des`] confirms it empirically.

use spg_graph::{ClusterSpec, Placement, StreamGraph, TupleRates};
use std::collections::HashMap;

/// What limited the throughput of a placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bottleneck {
    /// Source rate fully sustained (no resource saturated).
    None,
    /// CPU of device `d` saturates first.
    DeviceCpu(u32),
    /// Egress NIC bandwidth of device `d` saturates first.
    NicEgress(u32),
    /// Ingress NIC bandwidth of device `d` saturates first.
    NicIngress(u32),
    /// The directional link `src -> dst` saturates first.
    Link(u32, u32),
}

/// Result of an analytic simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Sustained throughput in tuples/second (per source).
    pub throughput: f64,
    /// `throughput / source_rate ∈ [0, 1]` — the paper's reward.
    pub relative: f64,
    /// Which resource saturated.
    pub bottleneck: Bottleneck,
    /// CPU demand offered to each device at full source rate (instr/s).
    pub cpu_load: Vec<f64>,
    /// Egress bytes/s offered by each device at full source rate.
    pub egress: Vec<f64>,
    /// Ingress bytes/s offered to each device at full source rate.
    pub ingress: Vec<f64>,
    /// Directional inter-device traffic at full source rate.
    pub link_traffic: HashMap<(u32, u32), f64>,
}

impl SimResult {
    /// Average CPU utilisation over devices that received any load,
    /// at the *sustained* rate (matching the paper's §VI-B analysis).
    pub fn mean_used_cpu_utilisation(&self, cluster: &ClusterSpec) -> f64 {
        let cap = cluster.instr_per_sec();
        let used: Vec<f64> = self
            .cpu_load
            .iter()
            .filter(|&&l| l > 0.0)
            .map(|&l| l * self.relative / cap)
            .collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        }
    }

    /// Std-dev companion of [`Self::mean_used_cpu_utilisation`].
    pub fn std_used_cpu_utilisation(&self, cluster: &ClusterSpec) -> f64 {
        let cap = cluster.instr_per_sec();
        let used: Vec<f64> = self
            .cpu_load
            .iter()
            .filter(|&&l| l > 0.0)
            .map(|&l| l * self.relative / cap)
            .collect();
        if used.len() < 2 {
            return 0.0;
        }
        let mean = used.iter().sum::<f64>() / used.len() as f64;
        (used.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / used.len() as f64).sqrt()
    }

    /// Average bandwidth utilisation (egress+ingress over 2·BW) of devices
    /// that exchanged any traffic, at the sustained rate.
    pub fn mean_used_bw_utilisation(&self, cluster: &ClusterSpec) -> f64 {
        let bw = cluster.link_bytes_per_sec();
        let used: Vec<f64> = self
            .egress
            .iter()
            .zip(&self.ingress)
            .filter(|(&e, &i)| e + i > 0.0)
            .map(|(&e, &i)| (e + i) * self.relative / (2.0 * bw))
            .collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        }
    }
}

/// Simulate `placement` of `graph` on `cluster` at `source_rate`.
pub fn simulate(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    source_rate: f64,
) -> SimResult {
    let rates = TupleRates::compute(graph, source_rate);
    simulate_with_rates(graph, cluster, placement, &rates)
}

/// Simulate reusing precomputed tuple rates.
///
/// Calls (and, when telemetry is live, wall-clock time) are counted on
/// [`spg_obs::probe::SIM_ANALYTIC`]; results are untouched.
pub fn simulate_with_rates(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    rates: &TupleRates,
) -> SimResult {
    match crate::inject::at(crate::inject::Site::Simulator, crate::inject::context_key()) {
        Some(crate::inject::Fault::SimError) => panic!(
            "injected simulator error (analytic, key {})",
            crate::inject::context_key()
        ),
        Some(crate::inject::Fault::NanReward) => {
            return SimResult {
                throughput: f64::NAN,
                relative: f64::NAN,
                bottleneck: Bottleneck::None,
                cpu_load: Vec::new(),
                egress: Vec::new(),
                ingress: Vec::new(),
                link_traffic: HashMap::new(),
            };
        }
        _ => {}
    }
    spg_obs::probe::SIM_ANALYTIC.time(|| simulate_with_rates_impl(graph, cluster, placement, rates))
}

fn simulate_with_rates_impl(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    rates: &TupleRates,
) -> SimResult {
    assert!(
        placement.validate(graph, cluster.devices),
        "placement must cover the graph and respect the device count"
    );
    let d = cluster.devices;
    let mut cpu_load = vec![0.0f64; d];
    for (v, op) in graph.ops().iter().enumerate() {
        cpu_load[placement.device(v) as usize] += rates.node[v] * op.ipt;
    }

    let mut egress = vec![0.0f64; d];
    let mut ingress = vec![0.0f64; d];
    let mut link_traffic: HashMap<(u32, u32), f64> = HashMap::new();
    for (i, &(s, t)) in graph.edge_list().iter().enumerate() {
        let (ds, dt) = (placement.device(s as usize), placement.device(t as usize));
        if ds == dt {
            continue;
        }
        let traffic = rates.edge[i] * graph.channel(spg_graph::EdgeId(i as u32)).payload;
        egress[ds as usize] += traffic;
        ingress[dt as usize] += traffic;
        *link_traffic.entry((ds, dt)).or_insert(0.0) += traffic;
    }

    let cpu_cap = cluster.instr_per_sec();
    let bw = cluster.link_bytes_per_sec();

    let mut alpha = 1.0f64;
    let mut bottleneck = Bottleneck::None;
    for (dev, &load) in cpu_load.iter().enumerate() {
        if load > 0.0 {
            let a = cpu_cap / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::DeviceCpu(dev as u32);
            }
        }
    }
    for (dev, &load) in egress.iter().enumerate() {
        if load > 0.0 {
            let a = bw / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::NicEgress(dev as u32);
            }
        }
    }
    for (dev, &load) in ingress.iter().enumerate() {
        if load > 0.0 {
            let a = bw / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::NicIngress(dev as u32);
            }
        }
    }
    for (&(s, t), &load) in &link_traffic {
        if load > 0.0 {
            let a = bw / load;
            if a < alpha {
                alpha = a;
                bottleneck = Bottleneck::Link(s, t);
            }
        }
    }

    SimResult {
        throughput: alpha * rates.source_rate,
        relative: alpha,
        bottleneck,
        cpu_load,
        egress,
        ingress,
        link_traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    /// source(ipt 100) -> worker(ipt heavy) -> sink(ipt 100), payload 1000 B.
    fn pipeline(worker_ipt: f64, payload: f64) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(100.0));
        let w = b.add_node(Operator::new(worker_ipt));
        let k = b.add_node(Operator::new(100.0));
        b.add_edge(s, w, Channel::new(payload)).unwrap();
        b.add_edge(w, k, Channel::new(payload)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn unconstrained_graph_sustains_full_rate() {
        let g = pipeline(100.0, 10.0);
        let cluster = ClusterSpec::paper_medium(2);
        let p = Placement::all_on_one(3);
        let r = simulate(&g, &cluster, &p, 1e4);
        assert_eq!(r.bottleneck, Bottleneck::None);
        assert!((r.relative - 1.0).abs() < 1e-12);
        assert!((r.throughput - 1e4).abs() < 1e-9);
    }

    #[test]
    fn cpu_bottleneck_scales_throughput() {
        // Worker needs 2.5e9 instr/s at 1e4 t/s vs 1.25e9 capacity -> α = 0.5
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate(&g, &cluster, &p, 1e4);
        assert_eq!(r.bottleneck, Bottleneck::DeviceCpu(1));
        assert!((r.relative - 0.5).abs() < 1e-9);
        assert!((r.throughput - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn colocating_removes_network_bottleneck() {
        // Payload 1e5 B at 1e4 t/s = 1e9 B/s over a 125e6 B/s link.
        let g = pipeline(100.0, 1e5);
        let cluster = ClusterSpec::paper_medium(2);
        let split = simulate(&g, &cluster, &Placement::new(vec![0, 1, 0]), 1e4);
        assert!(split.relative < 0.2, "link saturation should throttle");
        let merged = simulate(&g, &cluster, &Placement::all_on_one(3), 1e4);
        assert!((merged.relative - 1.0).abs() < 1e-12);
        assert!(merged.throughput > split.throughput * 5.0);
    }

    #[test]
    fn nic_aggregates_multiple_flows() {
        // One source fans out to two workers on two other devices; egress of
        // the source device carries both flows.
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(10.0));
        let w1 = b.add_node(Operator::new(10.0));
        let w2 = b.add_node(Operator::new(10.0));
        b.add_edge(s, w1, Channel::new(8000.0)).unwrap();
        b.add_edge(s, w2, Channel::new(8000.0)).unwrap();
        let g = b.finish().unwrap();
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate(&g, &cluster, &p, 1e4);
        // Each flow: 8e7 B/s; NIC egress 1.6e8 > 1.25e8 = BW, links fine.
        assert_eq!(r.bottleneck, Bottleneck::NicEgress(0));
        assert!((r.relative - 125e6 / 160e6).abs() < 1e-9);
    }

    #[test]
    fn relative_is_at_most_one() {
        let g = pipeline(1.0, 1.0);
        let cluster = ClusterSpec::paper_medium(2);
        let r = simulate(&g, &cluster, &Placement::new(vec![0, 1, 0]), 1.0);
        assert!(r.relative <= 1.0);
    }

    #[test]
    fn utilisation_metrics() {
        let g = pipeline(2.5e5, 10.0);
        let cluster = ClusterSpec::paper_medium(3);
        let p = Placement::new(vec![0, 1, 2]);
        let r = simulate(&g, &cluster, &p, 1e4);
        let mu = r.mean_used_cpu_utilisation(&cluster);
        assert!(mu > 0.0 && mu <= 1.0);
        // The saturated device runs at exactly 100% of capacity.
        let cap = cluster.instr_per_sec();
        let worker_util = r.cpu_load[1] * r.relative / cap;
        assert!((worker_util - 1.0).abs() < 1e-9);
    }
}
