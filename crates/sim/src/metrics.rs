//! Post-hoc metrics used in the paper's performance analysis (§VI-C):
//! data saturation distributions of coarsened graphs (Fig. 9) and
//! device-utilisation summaries (excess-device analysis).

use spg_graph::{ClusterSpec, CoarseGraph};

/// Data saturation rate of every coarse edge: `traffic / BW` (the paper's
/// `(P · R) / BW` aggregated per coarse edge). Fig. 9 compares the
/// distribution of these values between Metis coarsening and the learned
/// coarsening model.
pub fn coarse_edge_saturations(coarse: &CoarseGraph, cluster: &ClusterSpec) -> Vec<f64> {
    let bw = cluster.link_bytes_per_sec();
    coarse.edge_traffic.iter().map(|&t| t / bw).collect()
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise `xs` (empty input gives zeros).
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

/// Histogram with uniform bins over `[lo, hi)`; values outside clamp into
/// the edge bins (used for Fig. 7's device-usage histogram and Fig. 9).
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo);
    let mut h = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &x in xs {
        let b = (((x - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize;
        h[b] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 5.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
    }

    #[test]
    fn saturation_uses_bandwidth() {
        let coarse = CoarseGraph {
            node_cpu: vec![1.0, 1.0],
            members: vec![1, 1],
            edges: vec![(0, 1)],
            edge_traffic: vec![125e6],
            internal_traffic: 0.0,
        };
        let cluster = ClusterSpec::paper_medium(2); // BW = 125e6 B/s
        let sats = coarse_edge_saturations(&coarse, &cluster);
        assert!((sats[0] - 1.0).abs() < 1e-12);
    }
}
