//! End-to-end latency estimation (related-work angle: latency-target
//! scheduling). Not used by the paper's reward, but a natural companion
//! metric a production allocator reports.
//!
//! Model: a tuple's end-to-end latency along a path is the sum of per-hop
//! service times. At sustained rate `α·I`:
//!
//! * processing at node `v`: `ipt_v / instr_per_sec` scaled by device
//!   contention `1 / (1 - ρ_d)` (M/M/1-style inflation, capped),
//! * transmission on a cross-device edge: `payload / BW` inflated by the
//!   NIC utilisation of the sending device.
//!
//! The reported latency is the maximum over all source→sink paths
//! (critical path), computed by a longest-path pass in topological order.

use crate::analytic::SimResult;
use spg_graph::{ClusterSpec, NodeId, Placement, StreamGraph};

/// Per-placement latency estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEstimate {
    /// Critical-path end-to-end latency in seconds.
    pub critical_path: f64,
    /// Sum of pure processing time along the critical path (no queueing).
    pub service_floor: f64,
}

/// Utilisation-dependent inflation `1/(1-ρ)`, capped at 50x for saturated
/// resources (the analytic model pins sustained utilisation at ≤ 1).
#[inline]
fn inflation(rho: f64) -> f64 {
    let rho = rho.clamp(0.0, 0.98);
    1.0 / (1.0 - rho)
}

/// Estimate latency for `placement` given a prior analytic simulation
/// (`sim` must come from the same graph/cluster/placement/rate).
pub fn estimate_latency(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    placement: &Placement,
    sim: &SimResult,
) -> LatencyEstimate {
    let cpu_cap = cluster.instr_per_sec();
    let bw = cluster.link_bytes_per_sec();

    // Sustained utilisations.
    let cpu_rho: Vec<f64> = sim
        .cpu_load
        .iter()
        .map(|&l| (l * sim.relative / cpu_cap).min(1.0))
        .collect();
    let egress_rho: Vec<f64> = sim
        .egress
        .iter()
        .map(|&l| (l * sim.relative / bw).min(1.0))
        .collect();

    let mut latency = vec![0.0f64; graph.num_nodes()];
    let mut floor = vec![0.0f64; graph.num_nodes()];
    let mut critical = 0.0f64;
    let mut critical_floor = 0.0f64;

    for &v in graph.topo_order() {
        let v = NodeId(v);
        let dev = placement.device(v.idx()) as usize;
        let service = graph.op(v).ipt / cpu_cap;
        let node_latency = latency[v.idx()] + service * inflation(cpu_rho[dev]);
        let node_floor = floor[v.idx()] + service;

        if graph.out_degree(v) == 0 {
            if node_latency > critical {
                critical = node_latency;
                critical_floor = node_floor;
            }
            continue;
        }
        for (w, e) in graph.out_edges(v) {
            let wdev = placement.device(w.idx()) as usize;
            let mut hop = node_latency;
            let mut hop_floor = node_floor;
            if wdev != dev {
                let tx = graph.channel(e).payload / bw;
                hop += tx * inflation(egress_rho[dev]);
                hop_floor += tx;
            }
            if hop > latency[w.idx()] {
                latency[w.idx()] = hop;
            }
            if hop_floor > floor[w.idx()] {
                floor[w.idx()] = hop_floor;
            }
        }
    }

    LatencyEstimate {
        critical_path: critical,
        service_floor: critical_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    fn chain() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(1.25e6)); // 1ms at 1.25e9 instr/s
        let c = b.add_node(Operator::new(2.5e6)); // 2ms
        let d = b.add_node(Operator::new(1.25e6)); // 1ms
        b.add_edge(a, c, Channel::new(125e3)).unwrap(); // 1ms at 125e6 B/s
        b.add_edge(c, d, Channel::new(125e3)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn colocated_chain_has_no_transmission_latency() {
        let g = chain();
        let cluster = ClusterSpec::paper_medium(2);
        let p = Placement::all_on_one(3);
        let sim = crate::analytic::simulate(&g, &cluster, &p, 1.0);
        let lat = estimate_latency(&g, &cluster, &p, &sim);
        // 1 + 2 + 1 ms of service, negligible contention at rate 1/s.
        assert!((lat.service_floor - 0.004).abs() < 1e-9, "{lat:?}");
        assert!(lat.critical_path >= lat.service_floor);
        assert!(lat.critical_path < 0.005);
    }

    #[test]
    fn cross_device_edges_add_transmission_time() {
        let g = chain();
        let cluster = ClusterSpec::paper_medium(3);
        let split = Placement::new(vec![0, 1, 2]);
        let sim = crate::analytic::simulate(&g, &cluster, &split, 1.0);
        let lat = estimate_latency(&g, &cluster, &split, &sim);
        // Adds two 1ms transmissions.
        assert!((lat.service_floor - 0.006).abs() < 1e-9, "{lat:?}");
    }

    #[test]
    fn contention_inflates_latency() {
        let g = chain();
        let cluster = ClusterSpec::paper_medium(1);
        let p = Placement::all_on_one(3);
        // Saturating rate: total ipt 5e6 per tuple; capacity 1.25e9 -> 250/s.
        let idle = crate::analytic::simulate(&g, &cluster, &p, 1.0);
        let busy = crate::analytic::simulate(&g, &cluster, &p, 240.0);
        let li = estimate_latency(&g, &cluster, &p, &idle);
        let lb = estimate_latency(&g, &cluster, &p, &busy);
        assert!(
            lb.critical_path > li.critical_path * 2.0,
            "{li:?} vs {lb:?}"
        );
        assert!((lb.service_floor - li.service_floor).abs() < 1e-12);
    }

    #[test]
    fn critical_path_takes_the_longer_branch() {
        // Diamond with one slow branch.
        let mut b = StreamGraphBuilder::new();
        let s = b.add_node(Operator::new(1.25e5));
        let fast = b.add_node(Operator::new(1.25e5));
        let slow = b.add_node(Operator::new(1.25e8)); // 100ms
        let k = b.add_node(Operator::new(1.25e5));
        b.add_edge(s, fast, Channel::new(1.0)).unwrap();
        b.add_edge(s, slow, Channel::new(1.0)).unwrap();
        b.add_edge(fast, k, Channel::new(1.0)).unwrap();
        b.add_edge(slow, k, Channel::new(1.0)).unwrap();
        let g = b.finish().unwrap();
        let cluster = ClusterSpec::paper_medium(2);
        let p = Placement::all_on_one(4);
        let sim = crate::analytic::simulate(&g, &cluster, &p, 1.0);
        let lat = estimate_latency(&g, &cluster, &p, &sim);
        assert!(
            lat.service_floor > 0.1,
            "must include the slow branch: {lat:?}"
        );
    }
}
