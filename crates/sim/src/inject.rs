//! Deterministic fault injection for exercising recovery paths.
//!
//! A [`FaultInjector`] is a seed-driven plan of faults keyed by *site*
//! (where in the runtime the check happens) and *key* (a caller-chosen
//! identifier such as "epoch 3, graph 1, sample 2"). Because decisions are
//! a pure function of `(seed, site, key)` — never of call order or thread
//! scheduling — an injected fault fires at the same logical point no matter
//! how many rollout workers run, which keeps the fault-tolerance tests
//! deterministic.
//!
//! The injector is process-global but disarmed by default: the fast path is
//! a single relaxed atomic load, so production runs pay essentially nothing.
//! Tests arm it through [`armed`], which also holds a process-wide lock so
//! concurrently running `#[test]`s cannot observe each other's faults.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Where in the runtime a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Per-sample rollout work inside the trainer's rollout engine.
    Rollout,
    /// Inside a simulator evaluation (analytic or discrete-time).
    Simulator,
    /// Between a checkpoint's temp-file write and its atomic rename.
    CheckpointSave,
    /// Per-request work inside a serving replica, keyed by
    /// [`replica_key`] (request fingerprint × replica incarnation).
    ReplicaWork,
    /// The serving io_loop's write pass for one connection, keyed by
    /// connection id.
    ConnWrite,
}

impl Site {
    fn tag(self) -> u64 {
        match self {
            Site::Rollout => 0x524f_4c4c,
            Site::Simulator => 0x5349_4d55,
            Site::CheckpointSave => 0x434b_5054,
            Site::ReplicaWork => 0x5250_4c43,
            Site::ConnWrite => 0x434f_4e4e,
        }
    }
}

/// What to inject when a site/key matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Replace the computed reward with NaN.
    NanReward,
    /// Panic inside the worker (exercises panic isolation).
    WorkerPanic,
    /// Fail the simulator itself (manifests as a panic in the caller).
    SimError,
    /// Simulate a crash: the operation stops before completing.
    Kill,
    /// Stall the worker for a fixed pause (exercises queue buildup and
    /// shed policies without killing anything).
    Stall,
    /// Write only a prefix of the pending bytes, then drop the
    /// connection (a torn line the client must survive).
    TornWrite,
    /// Drop the connection before writing anything.
    ConnDrop,
}

impl Fault {
    fn tag(self) -> u64 {
        match self {
            Fault::NanReward => 1,
            Fault::WorkerPanic => 2,
            Fault::SimError => 3,
            Fault::Kill => 4,
            Fault::Stall => 5,
            Fault::TornWrite => 6,
            Fault::ConnDrop => 7,
        }
    }
}

/// Plan-entry key that matches every key at its site.
pub const ANY_KEY: u64 = u64::MAX;

/// Key used for sites reached without a caller-provided context (e.g. a
/// simulator call outside training). Rate-based injection skips it.
pub const NO_CONTEXT: u64 = u64::MAX - 1;

/// A seed-driven fault plan. Build with the fluent [`Self::at`] /
/// [`Self::rate`] and activate with [`arm`] or [`armed`].
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    seed: u64,
    plan: Vec<(Site, u64, Fault)>,
    rates: Vec<(Site, Fault, f64)>,
}

impl FaultInjector {
    /// An empty plan with the given decision seed (used by [`Self::rate`]).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            plan: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Inject `fault` whenever `site` is reached with `key` ([`ANY_KEY`]
    /// matches every key).
    pub fn at(mut self, site: Site, key: u64, fault: Fault) -> Self {
        self.plan.push((site, key, fault));
        self
    }

    /// Inject `fault` at `site` with probability `p`, decided by hashing
    /// `(seed, site, fault, key)` — scheduling-independent, so the same
    /// keys fault on every run with the same seed.
    pub fn rate(mut self, site: Site, fault: Fault, p: f64) -> Self {
        self.rates.push((site, fault, p));
        self
    }

    /// True if the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty() && self.rates.iter().all(|(_, _, p)| *p <= 0.0)
    }

    fn decide(&self, site: Site, key: u64) -> Option<Fault> {
        for (s, k, f) in &self.plan {
            if *s == site && (*k == ANY_KEY || *k == key) {
                return Some(*f);
            }
        }
        if key == NO_CONTEXT {
            // No stable identity to hash: a rate roll here would fault
            // either every call or none, so skip rate-based injection.
            return None;
        }
        for (s, f, p) in &self.rates {
            if *s == site && *p > 0.0 {
                let h = splitmix64(
                    self.seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(site.tag())
                        .wrapping_add(f.tag() << 32)
                        ^ key,
                );
                // Top 53 bits as a unit float.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < *p {
                    return Some(*f);
                }
            }
        }
        None
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static INJECTOR_ARMED: AtomicBool = AtomicBool::new(false);

fn injector() -> &'static Mutex<Option<FaultInjector>> {
    static G: OnceLock<Mutex<Option<FaultInjector>>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(None))
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Injected panics unwind through guard scopes; the plan itself is
    // never left half-written, so poisoning carries no information here.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Install and activate a process-wide fault plan.
pub fn arm(plan: FaultInjector) {
    *lock_unpoisoned(injector()) = Some(plan);
    INJECTOR_ARMED.store(true, Ordering::SeqCst);
}

/// Deactivate fault injection.
pub fn disarm() {
    INJECTOR_ARMED.store(false, Ordering::SeqCst);
    *lock_unpoisoned(injector()) = None;
}

/// Should a fault fire at `site` for `key`? `None` unless armed and the
/// plan matches. This is the hook sites call; the disarmed fast path is a
/// single relaxed atomic load.
pub fn at(site: Site, key: u64) -> Option<Fault> {
    if !INJECTOR_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    lock_unpoisoned(injector())
        .as_ref()
        .and_then(|i| i.decide(site, key))
}

/// RAII guard from [`armed`]: disarms (and releases the test serialisation
/// lock) on drop.
pub struct ArmedGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm `plan` for the lifetime of the returned guard, serialising against
/// every other [`armed`] caller in the process. Tests that inject faults
/// MUST use this (or [`test_serial`]) so cargo's parallel test threads do
/// not leak faults into each other.
pub fn armed(plan: FaultInjector) -> ArmedGuard {
    let serial = test_serial();
    arm(plan);
    ArmedGuard { _serial: serial }
}

/// The process-wide serialisation lock used by [`armed`]; tests that must
/// run with injection *disabled* while other tests inject can hold it too.
pub fn test_serial() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    lock_unpoisoned(L.get_or_init(|| Mutex::new(())))
}

thread_local! {
    static CONTEXT_KEY: Cell<u64> = const { Cell::new(NO_CONTEXT) };
}

/// Set this thread's injection context key (e.g. the rollout key of the
/// sample being evaluated) so keyless sites like [`Site::Simulator`]
/// inherit a stable identity. Returns the previous key.
pub fn set_context(key: u64) -> u64 {
    CONTEXT_KEY.with(|c| c.replace(key))
}

/// Clear this thread's injection context key.
pub fn clear_context() {
    CONTEXT_KEY.with(|c| c.set(NO_CONTEXT));
}

/// This thread's injection context key ([`NO_CONTEXT`] if unset).
pub fn context_key() -> u64 {
    CONTEXT_KEY.with(Cell::get)
}

/// Stable key for "epoch `epoch`, graph `graph`, sample `sample`" rollout
/// work: 24 bits of epoch, 20 of graph, 20 of sample.
pub fn rollout_key(epoch: u64, graph: usize, sample: usize) -> u64 {
    (epoch << 40) | ((graph as u64 & 0xf_ffff) << 20) | (sample as u64 & 0xf_ffff)
}

/// Stable key for [`Site::ReplicaWork`]: the request fingerprint mixed
/// with the replica's incarnation number. Generation 0 is the raw
/// fingerprint, so a test can target a request's *first* processing by
/// fingerprint alone — and a respawned replica (generation ≥ 1) stops
/// matching, letting the retry of a killed request succeed.
pub fn replica_key(fingerprint: u64, generation: u64) -> u64 {
    fingerprint ^ generation.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_never_fires() {
        let _serial = test_serial();
        assert_eq!(at(Site::Rollout, 7), None);
    }

    #[test]
    fn plan_entries_match_exact_and_wildcard_keys() {
        let plan = FaultInjector::new(0)
            .at(Site::Rollout, 3, Fault::NanReward)
            .at(Site::CheckpointSave, ANY_KEY, Fault::Kill);
        let _g = armed(plan);
        assert_eq!(at(Site::Rollout, 3), Some(Fault::NanReward));
        assert_eq!(at(Site::Rollout, 4), None);
        assert_eq!(at(Site::CheckpointSave, 0), Some(Fault::Kill));
        assert_eq!(at(Site::CheckpointSave, 99), Some(Fault::Kill));
        assert_eq!(at(Site::Simulator, 3), None);
    }

    #[test]
    fn rate_decisions_are_key_determined_and_roughly_calibrated() {
        let inj = FaultInjector::new(11).rate(Site::Rollout, Fault::WorkerPanic, 0.25);
        let first: Vec<bool> = (0..4000)
            .map(|k| inj.decide(Site::Rollout, k).is_some())
            .collect();
        let again: Vec<bool> = (0..4000)
            .map(|k| inj.decide(Site::Rollout, k).is_some())
            .collect();
        assert_eq!(first, again, "decisions must be pure in (seed, site, key)");
        let hits = first.iter().filter(|&&b| b).count();
        assert!((800..1200).contains(&hits), "hit rate off: {hits}/4000");
        // A different seed flips some decisions.
        let other = FaultInjector::new(12).rate(Site::Rollout, Fault::WorkerPanic, 0.25);
        assert!((0..4000).any(|k| inj.decide(Site::Rollout, k) != other.decide(Site::Rollout, k)));
        // Rates never fire without a context identity.
        assert_eq!(inj.decide(Site::Rollout, NO_CONTEXT), None);
    }

    #[test]
    fn context_key_is_thread_local_and_restorable() {
        let prev = set_context(42);
        assert_eq!(prev, NO_CONTEXT);
        assert_eq!(context_key(), 42);
        let handle = std::thread::spawn(context_key);
        assert_eq!(handle.join().unwrap(), NO_CONTEXT);
        clear_context();
        assert_eq!(context_key(), NO_CONTEXT);
    }

    #[test]
    fn replica_keys_separate_incarnations() {
        // Generation 0 is the raw fingerprint; later generations remap
        // every fingerprint, so a plan pinned to generation 0 goes quiet
        // after a respawn.
        assert_eq!(replica_key(0xdead_beef, 0), 0xdead_beef);
        assert_ne!(replica_key(0xdead_beef, 1), 0xdead_beef);
        assert_ne!(replica_key(0xdead_beef, 1), replica_key(0xdead_beef, 2));
        let plan = FaultInjector::new(0).at(Site::ReplicaWork, 0xdead_beef, Fault::Kill);
        let _g = armed(plan);
        assert_eq!(
            at(Site::ReplicaWork, replica_key(0xdead_beef, 0)),
            Some(Fault::Kill)
        );
        assert_eq!(at(Site::ReplicaWork, replica_key(0xdead_beef, 1)), None);
        // Serve sites are distinct from training sites.
        assert_eq!(at(Site::ConnWrite, 0xdead_beef), None);
    }

    #[test]
    fn rollout_keys_do_not_collide_for_distinct_samples() {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..4 {
            for graph in 0..8 {
                for sample in 0..8 {
                    assert!(seen.insert(rollout_key(epoch, graph, sample)));
                }
            }
        }
    }
}
