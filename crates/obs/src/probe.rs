//! Process-wide probes for pure hot paths.
//!
//! The simulators and the k-way partitioner sit *below* the trainer in the
//! crate graph and are called through pure functions whose signatures must
//! not grow a sink parameter. Instead they bump a process-wide [`Probe`]
//! (one relaxed atomic add per call; wall-clock accumulation only once any
//! enabled [`crate::TelemetrySink`] exists). The trainer snapshots the
//! probes once per epoch and emits the deltas into its own sink, so a
//! metrics file still attributes simulator/partitioner work per epoch.
//!
//! Probes are *observability only*: they never feed back into results, so
//! concurrent users (parallel tests, multiple trainers) merely share the
//! totals — per-epoch deltas from a lone trainer are exact, deltas under
//! concurrency are upper bounds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Wall-clock accumulation switch: off until the first enabled sink is
/// created, then on for the rest of the process (sticky, so the check is
/// one relaxed load on the hot path).
static TIMING: AtomicBool = AtomicBool::new(false);

/// Turn on wall-clock accumulation for all probes (sticky).
pub fn enable_timing() {
    TIMING.store(true, Ordering::Relaxed);
}

/// Whether probes accumulate wall-clock time.
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// A named call-count + wall-clock accumulator.
#[derive(Debug)]
pub struct Probe {
    name: &'static str,
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// A point-in-time reading of a probe; subtract two to get a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSnapshot {
    /// Calls observed so far.
    pub calls: u64,
    /// Accumulated wall-clock microseconds (0 while timing is off).
    pub us: u64,
}

impl ProbeSnapshot {
    /// Component-wise saturating difference (`self` is the later reading).
    pub fn delta(self, earlier: ProbeSnapshot) -> ProbeSnapshot {
        ProbeSnapshot {
            calls: self.calls.saturating_sub(earlier.calls),
            us: self.us.saturating_sub(earlier.us),
        }
    }
}

impl Probe {
    /// A new probe (use through the statics below).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            calls: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        }
    }

    /// The probe's name (used as the telemetry counter prefix).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Count a call to the probed section, timing it when any telemetry
    /// sink is live. Results of `f` are returned untouched.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if timing_enabled() {
            let t0 = Instant::now();
            let r = f();
            self.nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.calls.fetch_add(1, Ordering::Relaxed);
            r
        } else {
            self.calls.fetch_add(1, Ordering::Relaxed);
            f()
        }
    }

    /// Current totals.
    pub fn snapshot(&self) -> ProbeSnapshot {
        ProbeSnapshot {
            calls: self.calls.load(Ordering::Relaxed),
            us: self.nanos.load(Ordering::Relaxed) / 1_000,
        }
    }
}

/// Analytic bottleneck simulator calls (`spg_sim::analytic`).
pub static SIM_ANALYTIC: Probe = Probe::new("sim.analytic");
/// Discrete-time simulator calls (`spg_sim::des`).
pub static SIM_DES: Probe = Probe::new("sim.des");
/// Multilevel k-way partitioner calls (`spg_partition::kway_partition`).
pub static PARTITION_KWAY: Probe = Probe::new("partition.kway");

/// All probes the trainer reports per epoch.
pub fn all() -> [&'static Probe; 3] {
    [&SIM_ANALYTIC, &SIM_DES, &PARTITION_KWAY]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_calls_and_snapshots_delta() {
        static P: Probe = Probe::new("test.probe");
        let before = P.snapshot();
        let x = P.time(|| 21 * 2);
        assert_eq!(x, 42);
        let after = P.snapshot();
        assert_eq!(after.delta(before).calls, 1);
    }

    #[test]
    fn timing_accumulates_once_enabled() {
        static P: Probe = Probe::new("test.timed");
        enable_timing();
        let before = P.snapshot();
        P.time(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        let d = P.snapshot().delta(before);
        assert_eq!(d.calls, 1);
        assert!(d.us >= 1_000, "expected >= 1ms accumulated, got {}us", d.us);
    }

    #[test]
    fn statics_are_wired() {
        let names: Vec<&str> = all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["sim.analytic", "sim.des", "partition.kway"]);
    }
}
