//! Summarise a JSONL metrics file: per-phase time breakdown, counters,
//! derived rates (cache hit rate, rollout occupancy), and metric curves.
//!
//! This is the engine behind `spg report <metrics.jsonl>`.

use crate::Event;
use std::fmt::Write as _;

/// Aggregate of one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanAgg {
    /// Completed spans of this name.
    pub count: u64,
    /// Sum of durations in microseconds.
    pub total_us: u64,
    /// Nesting depth of the first occurrence (for indentation).
    pub depth: u64,
}

/// Aggregate of one histogram name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistAgg {
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Parsed + aggregated view of a metrics file. Name order follows first
/// appearance in the file, so reports are stable.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Completed spans by name.
    pub spans: Vec<(String, SpanAgg)>,
    /// Counter totals by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge series by name, in file order.
    pub gauges: Vec<(String, Vec<f64>)>,
    /// Histogram aggregates by name.
    pub hists: Vec<(String, HistAgg)>,
    /// Events read.
    pub events: usize,
}

fn entry<'a, T: Default>(vec: &'a mut Vec<(String, T)>, name: &str) -> &'a mut T {
    if let Some(i) = vec.iter().position(|(n, _)| n == name) {
        &mut vec[i].1
    } else {
        vec.push((name.to_string(), T::default()));
        &mut vec.last_mut().expect("just pushed").1
    }
}

impl Summary {
    /// Aggregate an iterator of JSONL lines. Blank lines are skipped; a
    /// malformed line fails with its 1-based line number.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Summary, String> {
        let mut s = Summary::default();
        for (i, line) in lines.into_iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev = Event::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            s.add(&ev);
        }
        Ok(s)
    }

    /// Fold one event into the aggregates.
    pub fn add(&mut self, ev: &Event) {
        self.events += 1;
        match ev {
            Event::SpanOpen { .. } => {}
            Event::SpanClose {
                name,
                depth,
                dur_us,
                ..
            } => {
                let agg = entry::<SpanAgg>(&mut self.spans, name);
                if agg.count == 0 {
                    agg.depth = *depth;
                }
                agg.count += 1;
                agg.total_us += dur_us;
            }
            Event::Counter { name, value, .. } => {
                *entry::<u64>(&mut self.counters, name) += value;
            }
            Event::Gauge { name, value, .. } => {
                entry::<Vec<f64>>(&mut self.gauges, name).push(*value);
            }
            Event::Hist { name, value, .. } => {
                let agg = entry::<HistAgg>(&mut self.hists, name);
                if agg.count == 0 {
                    agg.min = *value;
                    agg.max = *value;
                } else {
                    agg.min = agg.min.min(*value);
                    agg.max = agg.max.max(*value);
                }
                agg.count += 1;
                agg.sum += value;
            }
        }
    }

    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Gauge series by name.
    pub fn gauge_series(&self, name: &str) -> Option<&[f64]> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanAgg> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    /// `hits / (hits + misses)` of the reward memo-cache, if recorded.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("cache.hits")?;
        let misses = self.counter("cache.misses")?;
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} events", self.events);

        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nphase breakdown (wall clock):");
            let name_w = self
                .spans
                .iter()
                .map(|(n, a)| n.len() + 2 * a.depth as usize)
                .max()
                .unwrap_or(8)
                .max(8);
            // Share is relative to the total time in top-level spans.
            let top_total: u64 = self
                .spans
                .iter()
                .filter(|(_, a)| a.depth == 0)
                .map(|(_, a)| a.total_us)
                .sum();
            for (name, a) in &self.spans {
                let indent = "  ".repeat(a.depth as usize);
                let label = format!("{indent}{name}");
                let share = if top_total > 0 {
                    format!("{:5.1}%", 100.0 * a.total_us as f64 / top_total as f64)
                } else {
                    "     -".to_string()
                };
                let _ = writeln!(
                    out,
                    "  {label:<name_w$}  x{:<5}  total {:>10.3} ms  mean {:>9.3} ms  {share}",
                    a.count,
                    a.total_us as f64 / 1e3,
                    a.total_us as f64 / 1e3 / a.count.max(1) as f64,
                );
            }
        }

        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            let name_w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(8);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<name_w$}  {v}");
            }
            if let Some(rate) = self.cache_hit_rate() {
                let _ = writeln!(out, "  reward cache hit rate: {:.1}%", 100.0 * rate);
            }
        }

        if !self.hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            let name_w = self.hists.iter().map(|(n, _)| n.len()).max().unwrap_or(8);
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<name_w$}  n={:<6} mean {:>10.3}  min {:>10.3}  max {:>10.3}",
                    h.count,
                    h.sum / h.count.max(1) as f64,
                    h.min,
                    h.max
                );
            }
        }

        // Fault tolerance: only shown when something was recovered from
        // (or the run was resumed), so healthy reports stay unchanged.
        let fault_counters = [
            ("fault.skipped_samples", "samples skipped"),
            ("fault.quarantined_graphs", "graphs quarantined"),
            ("fault.rollbacks", "epoch rollbacks"),
            ("train.resumes", "resumes from checkpoint"),
        ];
        if fault_counters
            .iter()
            .any(|(n, _)| self.counter(n).is_some())
        {
            let _ = writeln!(out, "\nfaults & recovery:");
            let label_w = fault_counters.iter().map(|(_, l)| l.len()).max().unwrap();
            for (name, label) in fault_counters {
                let _ = writeln!(
                    out,
                    "  {label:<label_w$}  {}",
                    self.counter(name).unwrap_or(0)
                );
            }
        }

        // Serving faults: only when a serve run actually hit (usually
        // injected) faults or shed load, so healthy serve reports and
        // training reports stay unchanged.
        let serve_fault_counters = [
            ("serve.fault.panics_caught", "panics caught in place"),
            ("serve.fault.replica_restarts", "replica restarts"),
            ("serve.fault.inflight_failed", "in-flight failed on restart"),
            ("serve.fault.shed_deadline", "shed past request deadline"),
            ("serve.fault.shed_overload", "shed past the watermark"),
            ("serve.fault.conns_dropped", "connections dropped"),
            ("serve.fault.torn_writes", "torn writes"),
            ("serve.fault.supervisor_panics", "supervisor panics (BUG)"),
        ];
        if serve_fault_counters
            .iter()
            .any(|(n, _)| self.counter(n).is_some())
        {
            let _ = writeln!(out, "\nserving faults & degradation:");
            let label_w = serve_fault_counters
                .iter()
                .map(|(_, l)| l.len())
                .max()
                .unwrap();
            for (name, label) in serve_fault_counters {
                let _ = writeln!(
                    out,
                    "  {label:<label_w$}  {}",
                    self.counter(name).unwrap_or(0)
                );
            }
        }

        // Serving replicas: one row per shard when a cluster-mode serve
        // run logged per-replica counters (absent for training runs and
        // pre-replica metrics files, so those reports stay unchanged).
        let shards: Vec<u32> = {
            let mut s: Vec<u32> = self
                .counters
                .iter()
                .filter_map(|(n, _)| {
                    n.strip_prefix("serve.replica.")?
                        .strip_suffix(".responses")?
                        .parse()
                        .ok()
                })
                .collect();
            s.sort_unstable();
            s
        };
        if !shards.is_empty() {
            let _ = writeln!(out, "\nserving replicas ({} shard(s)):", shards.len());
            for shard in shards {
                let count = |field: &str| {
                    self.counter(&format!("serve.replica.{shard}.{field}"))
                        .unwrap_or(0)
                };
                let hit_rate = self
                    .gauge_series(&format!("serve.replica.{shard}.shard_hit_rate"))
                    .and_then(|s| s.last())
                    .map(|r| format!("{:.1}%", 100.0 * r))
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "  shard {shard}: {} responses  {} errors  {} batches  \
                     cache hit rate {hit_rate}",
                    count("responses"),
                    count("errors"),
                    count("batches"),
                );
            }
        }

        // Rollout occupancy: busy sample time vs. workers * rollout wall.
        if let (Some(h), Some(span), Some(workers)) = (
            self.hists
                .iter()
                .find(|(n, _)| n == "rollout.sample_us")
                .map(|(_, h)| h),
            self.span("step.rollout"),
            self.gauge_series("rollout.workers")
                .and_then(|s| s.last().copied()),
        ) {
            if span.total_us > 0 && workers >= 1.0 {
                let occ = h.sum / (workers * span.total_us as f64);
                let _ = writeln!(
                    out,
                    "\nrollout occupancy: {:.1}% of {} worker(s) during step.rollout",
                    100.0 * occ.min(1.0),
                    workers
                );
            }
        }

        for (name, series) in &self.gauges {
            if name != "reward.mean" && name != "reward.best" {
                continue;
            }
            let _ = writeln!(out, "\n{name} curve ({} epochs):", series.len());
            let shown: Vec<String> = if series.len() <= 16 {
                series.iter().map(|v| format!("{v:.3}")).collect()
            } else {
                let mut s: Vec<String> = series[..8].iter().map(|v| format!("{v:.3}")).collect();
                s.push("...".to_string());
                s.extend(series[series.len() - 8..].iter().map(|v| format!("{v:.3}")));
                s
            };
            let _ = writeln!(out, "  {}", shown.join(" "));
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in series {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if let (Some(first), Some(last)) = (series.first(), series.last()) {
                let _ = writeln!(
                    out,
                    "  first {first:.4}  last {last:.4}  min {lo:.4}  max {hi:.4}"
                );
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    fn sample_lines() -> Vec<String> {
        let sink = TelemetrySink::memory();
        {
            let _e = sink.span("epoch");
            {
                let _r = sink.span("step.rollout");
                sink.hist("rollout.sample_us", 100.0);
                sink.hist("rollout.sample_us", 300.0);
            }
            sink.counter("cache.hits", 3);
            sink.counter("cache.misses", 1);
            sink.gauge("reward.mean", 0.25);
            sink.gauge("rollout.workers", 2.0);
        }
        {
            let _e = sink.span("epoch");
            sink.counter("cache.hits", 5);
            sink.counter("cache.misses", 1);
            sink.gauge("reward.mean", 0.5);
        }
        sink.lines()
    }

    #[test]
    fn summary_aggregates_spans_counters_gauges() {
        let lines = sample_lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        assert_eq!(s.span("epoch").unwrap().count, 2);
        assert_eq!(s.span("step.rollout").unwrap().count, 1);
        assert_eq!(s.span("step.rollout").unwrap().depth, 1);
        assert_eq!(s.counter("cache.hits"), Some(8));
        assert_eq!(s.counter("cache.misses"), Some(2));
        assert_eq!(s.gauge_series("reward.mean"), Some(&[0.25, 0.5][..]));
        let h = &s
            .hists
            .iter()
            .find(|(n, _)| n == "rollout.sample_us")
            .unwrap()
            .1;
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 400.0, 100.0, 300.0));
        assert!((s.cache_hit_rate().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn render_contains_breakdown_hit_rate_and_curve() {
        let lines = sample_lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        let text = s.render();
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("epoch"), "{text}");
        assert!(text.contains("step.rollout"), "{text}");
        assert!(text.contains("reward cache hit rate: 80.0%"), "{text}");
        assert!(text.contains("reward.mean curve (2 epochs)"), "{text}");
        assert!(text.contains("rollout occupancy"), "{text}");
    }

    #[test]
    fn serving_replicas_section_renders_only_for_cluster_runs() {
        let lines = sample_lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        assert!(!s.render().contains("serving replicas"));

        let sink = TelemetrySink::memory();
        sink.counter("serve.replica.1.responses", 5);
        sink.counter("serve.replica.1.batches", 2);
        sink.gauge("serve.replica.1.shard_hit_rate", 0.4);
        sink.counter("serve.replica.0.responses", 8);
        sink.counter("serve.replica.0.errors", 1);
        sink.counter("serve.replica.0.batches", 3);
        let lines = sink.lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        let text = s.render();
        assert!(text.contains("serving replicas (2 shard(s))"), "{text}");
        // Shards render sorted, with missing fields defaulting sanely.
        let s0 = text.find("shard 0:").expect("shard 0 row");
        let s1 = text.find("shard 1:").expect("shard 1 row");
        assert!(s0 < s1, "{text}");
        assert!(
            text.contains("shard 0: 8 responses  1 errors  3 batches  cache hit rate -"),
            "{text}"
        );
        assert!(
            text.contains("shard 1: 5 responses  0 errors  2 batches  cache hit rate 40.0%"),
            "{text}"
        );
    }

    #[test]
    fn faults_section_renders_only_when_present() {
        let lines = sample_lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        assert!(!s.render().contains("faults & recovery"));

        let sink = TelemetrySink::memory();
        sink.counter("fault.skipped_samples", 3);
        sink.counter("fault.quarantined_graphs", 1);
        sink.counter("train.resumes", 1);
        let lines = sink.lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        let text = s.render();
        assert!(text.contains("faults & recovery"), "{text}");
        assert!(text.contains("samples skipped"), "{text}");
        assert!(text.contains("graphs quarantined"), "{text}");
        // Unrecorded fault counters render as 0 once the section shows.
        assert!(text.contains("epoch rollbacks"), "{text}");
        assert!(text.contains("resumes from checkpoint"), "{text}");
    }

    #[test]
    fn serve_faults_section_renders_only_when_faults_happened() {
        let lines = sample_lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        assert!(!s.render().contains("serving faults"));

        let sink = TelemetrySink::memory();
        sink.counter("serve.fault.replica_restarts", 2);
        sink.counter("serve.fault.inflight_failed", 3);
        sink.counter("serve.fault.shed_deadline", 7);
        let lines = sink.lines();
        let s = Summary::from_lines(lines.iter().map(|l| l.as_str())).unwrap();
        let text = s.render();
        assert!(text.contains("serving faults & degradation"), "{text}");
        assert!(text.contains("replica restarts"), "{text}");
        assert!(text.contains("in-flight failed on restart"), "{text}");
        assert!(text.contains("shed past request deadline"), "{text}");
        // Unrecorded fault counters render as 0 once the section shows.
        assert!(text.contains("torn writes"), "{text}");
    }

    #[test]
    fn from_lines_reports_bad_line_number() {
        let err = Summary::from_lines(["{\"t_us\":1}", "nope"]).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let good = "{\"t_us\":1,\"ev\":\"counter\",\"name\":\"c\",\"value\":1}";
        let err = Summary::from_lines([good, "nope"]).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let good = "{\"t_us\":1,\"ev\":\"counter\",\"name\":\"c\",\"value\":4}";
        let s = Summary::from_lines([good, "", "  "]).unwrap();
        assert_eq!(s.events, 1);
        assert_eq!(s.counter("c"), Some(4));
    }
}
