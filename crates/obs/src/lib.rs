//! # spg-obs
//!
//! Zero-dependency observability for training and simulation: hierarchical
//! spans with monotonic wall-clock timing, named counters / gauges /
//! histograms, and a JSONL event sink.
//!
//! Design constraints (enforced by tests in `spg` / `spg-core`):
//!
//! * **Opt-in and invisible.** The default [`TelemetrySink`] is disabled
//!   and every instrument call is a branch on an `Option` — no clock
//!   reads, no allocation, no locking. Telemetry never feeds back into
//!   results: `TrainStats` is bitwise identical with the sink on or off.
//! * **Thread-safe.** Sinks are cheap `Arc` clones and can be written
//!   from rollout worker threads. By convention only the *driving* thread
//!   opens spans (so span nesting in the file is well-formed); workers
//!   emit point events (histograms, counters).
//! * **Self-describing.** One JSON object per line; the schema is fixed
//!   (see [`Event`]) and [`report::Summary`] turns a metrics file back
//!   into a per-phase time breakdown, cache hit rates, and metric curves.
//!
//! Cross-crate instrumentation of pure hot paths (the simulators, the
//! k-way partitioner) goes through process-wide [`probe`] counters instead
//! of a sink handle, so their signatures stay untouched; the trainer
//! snapshots probe deltas into its sink once per epoch.
//!
//! ## Event schema
//!
//! ```text
//! {"t_us":12,"ev":"span_open","name":"epoch","depth":0}
//! {"t_us":9317,"ev":"span_close","name":"epoch","depth":0,"dur_us":9305}
//! {"t_us":9318,"ev":"counter","name":"cache.hits","value":12}
//! {"t_us":9318,"ev":"gauge","name":"reward.mean","value":0.5321}
//! {"t_us":421,"ev":"hist","name":"rollout.sample_us","value":389.0}
//! ```
//!
//! `t_us` is microseconds since the sink was created (monotonic clock).
//! Counters carry additive deltas; gauges carry absolute values;
//! histograms carry one observation per event.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod probe;
pub mod report;

pub use probe::{Probe, ProbeSnapshot};
pub use report::Summary;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One telemetry event — one line of a JSONL metrics file.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span started. `depth` is the nesting level (0 = top).
    SpanOpen {
        /// Microseconds since sink creation.
        t_us: u64,
        /// Span name (e.g. `epoch`, `step.rollout`).
        name: String,
        /// Nesting depth at open time.
        depth: u64,
    },
    /// A span finished; `dur_us` is its wall-clock duration.
    SpanClose {
        /// Microseconds since sink creation (at close).
        t_us: u64,
        /// Span name, matching the corresponding open.
        name: String,
        /// Nesting depth the span was opened at.
        depth: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// An additive counter increment.
    Counter {
        /// Microseconds since sink creation.
        t_us: u64,
        /// Counter name (e.g. `cache.hits`).
        name: String,
        /// Delta added at this point.
        value: u64,
    },
    /// An absolute gauge observation.
    Gauge {
        /// Microseconds since sink creation.
        t_us: u64,
        /// Gauge name (e.g. `reward.mean`).
        name: String,
        /// Value at this point.
        value: f64,
    },
    /// One histogram observation.
    Hist {
        /// Microseconds since sink creation.
        t_us: u64,
        /// Histogram name (e.g. `rollout.sample_us`).
        name: String,
        /// The observation.
        value: f64,
    },
}

/// Write an `f64` as JSON (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Event {
    /// Render as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            Event::SpanOpen { t_us, name, depth } => format!(
                "{{\"t_us\":{t_us},\"ev\":\"span_open\",\"name\":{},\"depth\":{depth}}}",
                json_str(name)
            ),
            Event::SpanClose {
                t_us,
                name,
                depth,
                dur_us,
            } => format!(
                "{{\"t_us\":{t_us},\"ev\":\"span_close\",\"name\":{},\"depth\":{depth},\"dur_us\":{dur_us}}}",
                json_str(name)
            ),
            Event::Counter { t_us, name, value } => format!(
                "{{\"t_us\":{t_us},\"ev\":\"counter\",\"name\":{},\"value\":{value}}}",
                json_str(name)
            ),
            Event::Gauge { t_us, name, value } => format!(
                "{{\"t_us\":{t_us},\"ev\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_str(name),
                json_f64(*value)
            ),
            Event::Hist { t_us, name, value } => format!(
                "{{\"t_us\":{t_us},\"ev\":\"hist\",\"name\":{},\"value\":{}}}",
                json_str(name),
                json_f64(*value)
            ),
        }
    }

    /// Parse one JSONL line back into an [`Event`]. Errors name what was
    /// malformed or missing.
    pub fn parse(line: &str) -> Result<Event, String> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&Scalar, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let name = get("name")?.as_str()?.to_string();
        let t_us = get("t_us")?.as_u64()?;
        match get("ev")?.as_str()? {
            "span_open" => Ok(Event::SpanOpen {
                t_us,
                name,
                depth: get("depth")?.as_u64()?,
            }),
            "span_close" => Ok(Event::SpanClose {
                t_us,
                name,
                depth: get("depth")?.as_u64()?,
                dur_us: get("dur_us")?.as_u64()?,
            }),
            "counter" => Ok(Event::Counter {
                t_us,
                name,
                value: get("value")?.as_u64()?,
            }),
            "gauge" => Ok(Event::Gauge {
                t_us,
                name,
                value: get("value")?.as_f64()?,
            }),
            "hist" => Ok(Event::Hist {
                t_us,
                name,
                value: get("value")?.as_f64()?,
            }),
            other => Err(format!("unknown event kind `{other}`")),
        }
    }

    /// The event's name field.
    pub fn name(&self) -> &str {
        match self {
            Event::SpanOpen { name, .. }
            | Event::SpanClose { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Hist { name, .. } => name,
        }
    }
}

/// A scalar field of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number, kept as literal text.
    Num(String),
    /// JSON `null` (non-finite gauge/hist values).
    Null,
}

impl Scalar {
    fn as_str(&self) -> Result<&str, String> {
        match self {
            Scalar::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Scalar::Num(t) => t.parse().map_err(|_| format!("invalid integer `{t}`")),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }
    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Scalar::Num(t) => t.parse().map_err(|_| format!("invalid number `{t}`")),
            Scalar::Null => Ok(f64::NAN),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

/// Parse a single-line flat JSON object (`{"k":scalar,...}`) — the full
/// event schema; nested containers are rejected.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.trim().as_bytes();
    let mut pos = 0usize;
    let mut fields = Vec::new();

    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let expect = |pos: &mut usize, b: u8| -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, *pos))
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, String> {
        expect(pos, b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = bytes.get(*pos) else {
                return Err("unterminated string".to_string());
            };
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = bytes.get(*pos) else {
                        return Err("dangling escape".to_string());
                    };
                    *pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            *pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                b => out.push(b as char),
            }
        }
    };

    skip_ws(&mut pos);
    expect(&mut pos, b'{')?;
    skip_ws(&mut pos);
    if pos < bytes.len() && bytes[pos] == b'}' {
        return Ok(fields);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        expect(&mut pos, b':')?;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => Scalar::Str(parse_string(&mut pos)?),
            Some(b'n') => {
                if bytes.get(pos..pos + 4) == Some(b"null") {
                    pos += 4;
                    Scalar::Null
                } else {
                    return Err(format!("invalid token at byte {pos}"));
                }
            }
            Some(_) => {
                let start = pos;
                while pos < bytes.len() && !matches!(bytes[pos], b',' | b'}') {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos])
                    .map_err(|_| "invalid utf8 in number")?
                    .trim()
                    .to_string();
                if text.parse::<f64>().is_err() {
                    return Err(format!("invalid number `{text}` for field `{key}`"));
                }
                Scalar::Num(text)
            }
            None => return Err("truncated object".to_string()),
        };
        fields.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                skip_ws(&mut pos);
                if pos != bytes.len() {
                    return Err(format!("trailing characters at byte {pos}"));
                }
                return Ok(fields);
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// Where emitted lines go.
enum Out {
    /// In-memory buffer (tests, benches, `spg report` round-trips).
    Memory(Vec<String>),
    /// Any writer — `spg train --metrics` uses a buffered file.
    Writer(Box<dyn Write + Send>),
}

struct SinkInner {
    start: Instant,
    depth: AtomicU64,
    out: Mutex<Out>,
}

/// A telemetry sink: disabled by default, cheap to clone (`Arc`), safe to
/// write from worker threads.
///
/// ```
/// let sink = spg_obs::TelemetrySink::memory();
/// {
///     let _epoch = sink.span("epoch");
///     sink.counter("cache.hits", 3);
///     sink.gauge("reward.mean", 0.5);
/// }
/// assert_eq!(sink.lines().len(), 4); // open + counter + gauge + close
/// ```
#[derive(Clone, Default)]
pub struct TelemetrySink(Option<Arc<SinkInner>>);

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "TelemetrySink(enabled)"
        } else {
            "TelemetrySink(disabled)"
        })
    }
}

impl TelemetrySink {
    /// The no-op sink: every instrument call is a single branch.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Collect lines in memory; read them back with [`Self::lines`].
    pub fn memory() -> Self {
        Self::with_out(Out::Memory(Vec::new()))
    }

    /// Append JSONL to `path` (truncates an existing file).
    pub fn jsonl_file(path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::with_out(Out::Writer(Box::new(
            std::io::BufWriter::new(f),
        ))))
    }

    /// Emit JSONL to an arbitrary writer.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        Self::with_out(Out::Writer(w))
    }

    fn with_out(out: Out) -> Self {
        // Any live sink turns on probe timing (sticky, process-wide): the
        // pure hot paths then pay two clock reads per probed call, which
        // the trainer reads back as per-epoch deltas.
        probe::enable_timing();
        Self(Some(Arc::new(SinkInner {
            start: Instant::now(),
            depth: AtomicU64::new(0),
            out: Mutex::new(out),
        })))
    }

    /// Whether events are recorded. Callers may use this to skip
    /// *computing* expensive metric inputs; emission itself is always safe.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    fn now_us(inner: &SinkInner) -> u64 {
        inner.start.elapsed().as_micros() as u64
    }

    fn write_line(inner: &SinkInner, line: &str) {
        let mut out = inner.out.lock().expect("telemetry sink poisoned");
        match &mut *out {
            Out::Memory(lines) => lines.push(line.to_string()),
            Out::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Emit a pre-built event (timestamp is taken as-is).
    pub fn emit(&self, event: &Event) {
        if let Some(inner) = &self.0 {
            Self::write_line(inner, &event.to_json_line());
        }
    }

    /// Open a span; the returned guard emits the matching close (with
    /// wall-clock duration) when dropped. Only the driving thread should
    /// open spans — workers use [`Self::hist`] / [`Self::counter`].
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.0 {
            None => SpanGuard(None),
            Some(inner) => {
                let depth = inner.depth.fetch_add(1, Ordering::Relaxed);
                let opened = Instant::now();
                let t_us = Self::now_us(inner);
                Self::write_line(
                    inner,
                    &Event::SpanOpen {
                        t_us,
                        name: name.to_string(),
                        depth,
                    }
                    .to_json_line(),
                );
                SpanGuard(Some(SpanGuardInner {
                    sink: Arc::clone(inner),
                    name,
                    depth,
                    opened,
                }))
            }
        }
    }

    /// Add `delta` to counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.0 {
            Self::write_line(
                inner,
                &Event::Counter {
                    t_us: Self::now_us(inner),
                    name: name.to_string(),
                    value: delta,
                }
                .to_json_line(),
            );
        }
    }

    /// Record the absolute value of gauge `name`.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.0 {
            Self::write_line(
                inner,
                &Event::Gauge {
                    t_us: Self::now_us(inner),
                    name: name.to_string(),
                    value,
                }
                .to_json_line(),
            );
        }
    }

    /// Record one observation of histogram `name`.
    pub fn hist(&self, name: &str, value: f64) {
        if let Some(inner) = &self.0 {
            Self::write_line(
                inner,
                &Event::Hist {
                    t_us: Self::now_us(inner),
                    name: name.to_string(),
                    value,
                }
                .to_json_line(),
            );
        }
    }

    /// Flush a writer-backed sink (no-op otherwise).
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            if let Out::Writer(w) = &mut *inner.out.lock().expect("telemetry sink poisoned") {
                let _ = w.flush();
            }
        }
    }

    /// Snapshot of a memory sink's lines (empty for other sinks).
    pub fn lines(&self) -> Vec<String> {
        match &self.0 {
            Some(inner) => match &*inner.out.lock().expect("telemetry sink poisoned") {
                Out::Memory(lines) => lines.clone(),
                Out::Writer(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }
}

/// Nearest-rank percentile of an unsorted sample (`p` in `0.0..=100.0`).
/// Returns NaN for an empty sample.
///
/// **This is the authority for benchmark reports** (every latency
/// p50/p99 in `BENCH_serve.json` and the serve/drift bench paths).
/// Nearest-rank always returns an *observed* sample — a latency that
/// actually happened — and pins `p=0` to the minimum and `p=100` to the
/// maximum. It deliberately differs from `spg_eval::stats::quantile`,
/// which linearly interpolates between ranks for the paper's Fig. 8
/// boxplots; the two disagree on even-length samples (see the
/// divergence pin in this module's tests), so do not swap one for the
/// other.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct SpanGuardInner {
    sink: Arc<SinkInner>,
    name: &'static str,
    depth: u64,
    opened: Instant,
}

/// RAII guard for an open span; emits `span_close` on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard(Option<SpanGuardInner>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.0.take() {
            g.sink.depth.fetch_sub(1, Ordering::Relaxed);
            let ev = Event::SpanClose {
                t_us: TelemetrySink::now_us(&g.sink),
                name: g.name.to_string(),
                depth: g.depth,
                dur_us: g.opened.elapsed().as_micros() as u64,
            };
            TelemetrySink::write_line(&g.sink, &ev.to_json_line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
        assert!(percentile(&[], 50.0).is_nan());
        // Order-independent.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }

    #[test]
    fn percentile_diverges_from_interpolation_by_design() {
        // The divergence pin against `spg_eval::stats::quantile`: on an
        // even-length sample the bench authority returns the lower
        // observed sample (nearest rank), never the interpolated
        // midpoint. If this fails, someone unified the two definitions —
        // every historical BENCH_serve.json row would silently re-rank.
        let s = [10.0, 20.0];
        assert_eq!(percentile(&s, 50.0), 10.0, "not 15.0: never interpolate");
        assert_eq!(percentile(&s, 0.0), 10.0, "p=0 pins the minimum");
        assert_eq!(percentile(&s, 100.0), 20.0, "p=100 pins the maximum");
        // len-1: every p collapses onto the only observation.
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.enabled());
        let _g = sink.span("epoch");
        sink.counter("c", 1);
        sink.gauge("g", 1.0);
        sink.hist("h", 1.0);
        sink.flush();
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            Event::SpanOpen {
                t_us: 3,
                name: "epoch".into(),
                depth: 0,
            },
            Event::SpanClose {
                t_us: 90,
                name: "epoch".into(),
                depth: 0,
                dur_us: 87,
            },
            Event::Counter {
                t_us: 91,
                name: "cache.hits".into(),
                value: 17,
            },
            Event::Gauge {
                t_us: 92,
                name: "reward.mean".into(),
                value: 0.53125,
            },
            Event::Hist {
                t_us: 93,
                name: "rollout.sample_us".into(),
                value: 412.25,
            },
        ];
        for ev in events {
            let line = ev.to_json_line();
            let back = Event::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let ev = Event::Gauge {
            t_us: 0,
            name: "weird \"name\"\n\\with\tescapes".into(),
            value: 1.0,
        };
        assert_eq!(Event::parse(&ev.to_json_line()).unwrap(), ev);
    }

    #[test]
    fn non_finite_gauge_serialises_as_null() {
        let ev = Event::Gauge {
            t_us: 0,
            name: "g".into(),
            value: f64::NAN,
        };
        let line = ev.to_json_line();
        assert!(line.contains("null"), "{line}");
        match Event::parse(&line).unwrap() {
            Event::Gauge { value, .. } => assert!(value.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"t_us\":1}",                                // missing ev/name
            "{\"t_us\":1,\"ev\":\"nope\",\"name\":\"x\"}", // unknown kind
            "{\"t_us\":\"x\",\"ev\":\"gauge\",\"name\":\"g\",\"value\":1}", // bad t_us
            "{\"t_us\":1,\"ev\":\"gauge\",\"name\":\"g\",\"value\":1}}", // trailing
        ] {
            assert!(Event::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn memory_sink_records_nested_spans_in_order() {
        let sink = TelemetrySink::memory();
        {
            let _outer = sink.span("epoch");
            {
                let _inner = sink.span("step.rollout");
                sink.hist("rollout.sample_us", 10.0);
            }
            sink.gauge("reward.mean", 0.4);
        }
        let lines = sink.lines();
        let events: Vec<Event> = lines
            .iter()
            .map(|l| Event::parse(l).expect("valid line"))
            .collect();
        assert_eq!(events.len(), 6);
        // Balanced, properly nested spans.
        let mut stack = Vec::new();
        for ev in &events {
            match ev {
                Event::SpanOpen { name, depth, .. } => {
                    assert_eq!(*depth as usize, stack.len());
                    stack.push(name.clone());
                }
                Event::SpanClose { name, depth, .. } => {
                    assert_eq!(stack.pop().as_deref(), Some(name.as_str()));
                    assert_eq!(*depth as usize, stack.len());
                }
                _ => {}
            }
        }
        assert!(stack.is_empty());
        // Timestamps are monotone for a single-threaded emitter.
        let ts: Vec<u64> = events
            .iter()
            .map(|e| match e {
                Event::SpanOpen { t_us, .. }
                | Event::SpanClose { t_us, .. }
                | Event::Counter { t_us, .. }
                | Event::Gauge { t_us, .. }
                | Event::Hist { t_us, .. } => *t_us,
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn writer_sink_writes_lines() {
        let dir = std::env::temp_dir().join("spg-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let sink = TelemetrySink::jsonl_file(&path).unwrap();
        sink.counter("c", 2);
        sink.flush();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(matches!(
            Event::parse(lines[0]).unwrap(),
            Event::Counter { value: 2, .. }
        ));
    }
}
