//! REINFORCE training (§III) with a best-sample memory buffer and optional
//! Metis-guided seeding (§IV-C).
//!
//! Per graph and step: one differentiable forward pass produces the edge
//! logits; several on-policy decision vectors are sampled and evaluated by
//! the simulator; buffered historically-best samples (and, early on,
//! Metis-derived samples) are added; the policy gradient
//! `∇J = (1/N) Σ ∇log π(a_n) · (r_n − b)` uses the mean reward of the
//! considered samples as the baseline `b`.
//!
//! Rollouts run on the [`crate::rollout`] engine: the samples of a step
//! (and the graphs of an evaluation pass) fan out over
//! [`TrainOptions::num_workers`] threads with results bitwise identical
//! to the sequential path, and rewards are memoized per graph so
//! repeated decision vectors skip the simulator. Forward/backward passes
//! stay on the calling thread — model parameters are `Rc`-shared.

use crate::model::CoarsenModel;
use crate::pipeline::CoarsePlacer;
use crate::policy::{priority_by_prob, CoarseningPolicy, DecodeMode};
use crate::rollout::{self, RewardCache, RolloutOutcome};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg_graph::{ClusterSpec, GraphFeatures, Placement, StreamGraph, TupleRates};
use spg_nn::{Adam, Tape};

/// Trainer options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// On-policy samples per step (paper: 3).
    pub on_policy_samples: usize,
    /// Buffer samples mixed in per step (paper: up to 3).
    pub buffer_samples: usize,
    /// Historically-best samples kept per graph.
    pub buffer_capacity: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Seed the buffers with Metis-derived collapse decisions (§IV-C).
    pub metis_guided: bool,
    /// Drop Metis-guided samples once an on-policy sample beats them.
    pub drop_guided_when_beaten: bool,
    /// RNG seed.
    pub seed: u64,
    /// Rollout worker threads (default: available parallelism; `1` runs
    /// the sequential path). Results are bitwise identical for every
    /// value — see [`crate::rollout`].
    pub num_workers: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            on_policy_samples: 3,
            buffer_samples: 3,
            buffer_capacity: 3,
            lr: 1e-3,
            metis_guided: true,
            drop_guided_when_beaten: true,
            seed: 0,
            num_workers: rollout::default_workers(),
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean on-policy reward over the epoch.
    pub mean_reward: f64,
    /// Mean best-in-buffer reward over graphs.
    pub mean_best: f64,
    /// Number of policy-gradient steps taken.
    pub steps: usize,
}

/// A buffered sample: decisions, its reward, and whether it came from the
/// Metis guide.
#[derive(Debug, Clone)]
struct BufferedSample {
    decisions: Vec<bool>,
    reward: f64,
    guided: bool,
}

/// Everything precomputed per training graph.
struct Instance {
    graph: StreamGraph,
    rates: TupleRates,
    feats: GraphFeatures,
    buffer: Vec<BufferedSample>,
}

/// The REINFORCE trainer. Owns the model during training.
pub struct ReinforceTrainer<P: CoarsePlacer> {
    /// The model being trained.
    pub model: CoarsenModel,
    /// Placement backend used inside the reward rollout.
    pub placer: P,
    /// Options.
    pub options: TrainOptions,
    policy: CoarseningPolicy,
    adam: Adam,
    instances: Vec<Instance>,
    cluster: ClusterSpec,
    source_rate: f64,
    rng: ChaCha8Rng,
    cache: RewardCache,
}

impl<P: CoarsePlacer> ReinforceTrainer<P> {
    /// Prepare a trainer over `graphs`. Precomputes rates/features and, if
    /// configured, Metis-guided buffer seeds.
    pub fn new(
        model: CoarsenModel,
        placer: P,
        graphs: Vec<StreamGraph>,
        cluster: ClusterSpec,
        source_rate: f64,
        options: TrainOptions,
    ) -> Self {
        let policy = CoarseningPolicy::from_config(&model.config);
        let adam = Adam::new(options.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(options.seed);

        let mut instances: Vec<Instance> = graphs
            .into_iter()
            .map(|graph| {
                let rates = TupleRates::compute(&graph, source_rate);
                let feats = GraphFeatures::extract_with_rates(&graph, &cluster, &rates);
                Instance {
                    graph,
                    rates,
                    feats,
                    buffer: Vec::new(),
                }
            })
            .collect();

        if options.metis_guided {
            let metis = spg_partition::MetisAllocator::new(options.seed ^ 0xC0FFEE);
            for inst in &mut instances {
                let placement =
                    spg_graph::Allocator::allocate(&metis, &inst.graph, &cluster, source_rate);
                let decisions = spg_partition::guided::infer_collapsed_edges(
                    &inst.graph,
                    &inst.rates,
                    placement.as_slice(),
                );
                // Reward of replaying the guided decisions through our own
                // pipeline (not of the raw Metis placement) — that is what
                // the policy is asked to imitate.
                let probs = vec![0.5f32; decisions.len()];
                let reward = rollout_reward(
                    &policy,
                    &inst.graph,
                    &inst.rates,
                    &cluster,
                    &decisions,
                    &probs,
                    &placer,
                );
                inst.buffer.push(BufferedSample {
                    decisions,
                    reward,
                    guided: true,
                });
            }
        }

        // Fresh rng stream decoupled from seeding above.
        rng.set_word_pos(1 << 20);

        let cache = RewardCache::new(instances.len());
        Self {
            model,
            placer,
            options,
            policy,
            adam,
            instances,
            cluster,
            source_rate,
            rng,
            cache,
        }
    }

    /// Number of training graphs.
    pub fn num_graphs(&self) -> usize {
        self.instances.len()
    }

    /// The reward memo-cache (hit/miss counters, memoized entries).
    pub fn reward_cache(&self) -> &RewardCache {
        &self.cache
    }

    /// Consume the trainer, returning the trained model.
    pub fn into_model(self) -> CoarsenModel {
        self.model
    }
}

/// Training and evaluation fan rollouts out over worker threads, so the
/// placer must be shareable. Every shipped placer used for training
/// ([`crate::pipeline::MetisCoarsePlacer`]) is `Sync`; `Rc`-backed
/// learned placers remain usable for inference-side pipelines.
impl<P: CoarsePlacer + Sync> ReinforceTrainer<P> {
    /// Run one epoch (one policy-gradient step per graph).
    pub fn train_epoch(&mut self) -> TrainStats {
        let mut sum_reward = 0.0;
        let mut n_rewards = 0usize;
        let mut steps = 0usize;

        for gi in 0..self.instances.len() {
            if let Some(mean_r) = self.step(gi) {
                sum_reward += mean_r;
                n_rewards += 1;
                steps += 1;
            }
        }

        let mean_best = if self.instances.is_empty() {
            0.0
        } else {
            self.instances
                .iter()
                .map(|i| i.buffer.iter().map(|s| s.reward).fold(0.0, f64::max))
                .sum::<f64>()
                / self.instances.len() as f64
        };

        TrainStats {
            mean_reward: if n_rewards > 0 {
                sum_reward / n_rewards as f64
            } else {
                0.0
            },
            mean_best,
            steps,
        }
    }

    /// One policy-gradient step on graph `gi`. Returns the mean on-policy
    /// reward, or `None` if the graph has no edges.
    fn step(&mut self, gi: usize) -> Option<f64> {
        let opts = self.options.clone();

        // Forward pass (kept for the gradient).
        let mut tape = Tape::new();
        let (logits, probs) = {
            let inst = &self.instances[gi];
            let logits = self.model.forward(&mut tape, &inst.graph, &inst.feats)?;
            let probs: Vec<f32> = tape
                .value(logits)
                .data
                .iter()
                .map(|&z| crate::model::sigmoid(z))
                .collect();
            (logits, probs)
        };

        // On-policy rollouts on the deterministic engine: pre-draw one
        // decode seed per sample from the master RNG, so every sample's
        // stream is a pure function of its index and the batch runs on
        // any number of workers with bitwise identical results.
        let priority = priority_by_prob(&probs);
        let seeds: Vec<u64> = (0..opts.on_policy_samples)
            .map(|_| self.rng.gen())
            .collect();
        let outcomes: Vec<RolloutOutcome> = {
            let inst = &self.instances[gi];
            let policy = &self.policy;
            let placer = &self.placer;
            let cluster = &self.cluster;
            let probs = &probs;
            let priority = &priority[..];
            // Workers read one cache snapshot for the whole batch;
            // misses are inserted afterwards in sample order.
            let cache = self.cache.graph(gi);
            rollout::run_ordered(opts.num_workers, seeds.len(), |i| {
                let mut rng = ChaCha8Rng::seed_from_u64(seeds[i]);
                let decisions = policy.decode(probs, DecodeMode::Sample, &mut rng);
                let key = rollout::collapse_key(priority, &decisions);
                match cache.get(&key).copied() {
                    Some(reward) => RolloutOutcome {
                        decisions,
                        key,
                        reward,
                        cached: true,
                    },
                    None => {
                        let reward = rollout_reward(
                            policy,
                            &inst.graph,
                            &inst.rates,
                            cluster,
                            &decisions,
                            probs,
                            placer,
                        );
                        RolloutOutcome {
                            decisions,
                            key,
                            reward,
                            cached: false,
                        }
                    }
                }
            })
        };

        let mut samples: Vec<(Vec<bool>, f64, bool)> = Vec::new();
        let mut on_policy_sum = 0.0;
        for out in outcomes {
            self.cache.record(out.cached);
            if !out.cached {
                self.cache.insert(gi, out.key, out.reward);
            }
            on_policy_sum += out.reward;
            samples.push((out.decisions, out.reward, false));
        }
        let on_policy_mean = on_policy_sum / opts.on_policy_samples.max(1) as f64;

        // Mix in buffered best samples.
        {
            let inst = &self.instances[gi];
            for s in inst.buffer.iter().take(opts.buffer_samples) {
                samples.push((s.decisions.clone(), s.reward, s.guided));
            }
        }

        // Policy gradient with mean-reward baseline.
        let baseline: f64 = samples.iter().map(|(_, r, _)| *r).sum::<f64>() / samples.len() as f64;
        let n = samples.len() as f32;
        let mut loss_terms = Vec::with_capacity(samples.len());
        for (decisions, reward, _) in &samples {
            let actions: Vec<f32> = decisions
                .iter()
                .map(|&d| if d { 1.0 } else { 0.0 })
                .collect();
            let ll = tape.bernoulli_log_prob(logits, &actions);
            // Minimise -(r - b)/N * log π.
            let coef = -((reward - baseline) as f32) / n;
            loss_terms.push(tape.scale(ll, coef));
        }
        let mut loss = loss_terms[0];
        for &term in &loss_terms[1..] {
            loss = tape.add(loss, term);
        }
        self.model.params().zero_grad();
        tape.backward(loss);
        self.adam.step(self.model.params());

        // Buffer update: keep the top `buffer_capacity` by reward; drop
        // guided samples once an on-policy sample beats them.
        let inst = &mut self.instances[gi];
        for (decisions, reward, guided) in samples.into_iter().filter(|(_, _, g)| !*g) {
            inst.buffer.push(BufferedSample {
                decisions,
                reward,
                guided,
            });
        }
        inst.buffer.sort_by(|a, b| b.reward.total_cmp(&a.reward));
        inst.buffer.dedup_by(|a, b| a.decisions == b.decisions);
        if opts.drop_guided_when_beaten {
            let best_unguided = inst
                .buffer
                .iter()
                .filter(|s| !s.guided)
                .map(|s| s.reward)
                .fold(f64::NEG_INFINITY, f64::max);
            inst.buffer
                .retain(|s| !s.guided || s.reward > best_unguided);
        }
        inst.buffer.truncate(opts.buffer_capacity);

        Some(on_policy_mean)
    }

    /// Mean greedy-decode reward over an evaluation set. Per-graph work
    /// fans out over the rollout engine; the sum reduces in graph order,
    /// so the result does not depend on the worker count.
    pub fn evaluate(&self, graphs: &[StreamGraph]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        let workers = self.options.num_workers;
        // Borrow the shareable fields individually: capturing `self`
        // would drag the `Rc`-backed model into the worker closures.
        let (policy, placer, cluster) = (&self.policy, &self.placer, &self.cluster);
        let source_rate = self.source_rate;
        // Rates and features are model-free — compute them in parallel.
        let prepared: Vec<(TupleRates, GraphFeatures)> =
            rollout::run_ordered(workers, graphs.len(), |i| {
                let rates = TupleRates::compute(&graphs[i], source_rate);
                let feats = GraphFeatures::extract_with_rates(&graphs[i], cluster, &rates);
                (rates, feats)
            });
        // Forward passes stay on this thread (`Rc`-shared parameters);
        // greedy decoding ignores the RNG, so nothing couples graphs.
        let mut rng = ChaCha8Rng::seed_from_u64(0xEA7_5EED);
        let decoded: Vec<(Vec<f32>, Vec<bool>)> = graphs
            .iter()
            .zip(&prepared)
            .map(|(g, (_, feats))| {
                let probs = self.model.predict_probs_with_features(g, feats);
                let decisions = self.policy.decode(&probs, DecodeMode::Greedy, &mut rng);
                (probs, decisions)
            })
            .collect();
        let rewards = rollout::run_ordered(workers, graphs.len(), |i| {
            rollout_reward(
                policy,
                &graphs[i],
                &prepared[i].0,
                cluster,
                &decoded[i].1,
                &decoded[i].0,
                placer,
            )
        });
        rewards.iter().sum::<f64>() / graphs.len() as f64
    }
}

/// Coarsen with `decisions`, place the coarse graph, lift, simulate.
fn rollout_reward<P: CoarsePlacer>(
    policy: &CoarseningPolicy,
    graph: &StreamGraph,
    rates: &TupleRates,
    cluster: &ClusterSpec,
    decisions: &[bool],
    probs: &[f32],
    placer: &P,
) -> f64 {
    let coarsening = policy.apply(graph, rates, cluster, decisions, probs);
    let coarse_placement = placer.place_coarse(&coarsening.coarse, cluster);
    let placement = Placement::lift(&coarse_placement, &coarsening.node_map);
    spg_sim::reward::relative_throughput_with_rates(graph, cluster, &placement, rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoarsenConfig;
    use crate::pipeline::MetisCoarsePlacer;
    use spg_gen::{DatasetSpec, Setting};

    fn trainer_with(
        n_graphs: usize,
        metis_guided: bool,
        num_workers: usize,
    ) -> ReinforceTrainer<MetisCoarsePlacer> {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let graphs: Vec<StreamGraph> = (0..n_graphs as u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        ReinforceTrainer::new(
            model,
            MetisCoarsePlacer::new(5),
            graphs,
            cluster,
            spec.source_rate,
            TrainOptions {
                metis_guided,
                seed: 9,
                num_workers,
                ..Default::default()
            },
        )
    }

    fn trainer(n_graphs: usize, metis_guided: bool) -> ReinforceTrainer<MetisCoarsePlacer> {
        trainer_with(n_graphs, metis_guided, 1)
    }

    #[test]
    fn epoch_runs_and_rewards_are_unit_interval() {
        let mut t = trainer(3, false);
        let stats = t.train_epoch();
        assert_eq!(stats.steps, 3);
        assert!((0.0..=1.0).contains(&stats.mean_reward), "{stats:?}");
        assert!((0.0..=1.0).contains(&stats.mean_best), "{stats:?}");
    }

    #[test]
    fn metis_guided_seeds_buffers() {
        let t = trainer(2, true);
        for inst in &t.instances {
            assert_eq!(inst.buffer.len(), 1);
            assert!(inst.buffer[0].guided);
            assert!((0.0..=1.0).contains(&inst.buffer[0].reward));
        }
    }

    #[test]
    fn training_improves_mean_best_reward() {
        let mut t = trainer(4, true);
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..5 {
            last = t.train_epoch();
        }
        // The buffer keeps the best sample ever seen per graph, so
        // mean_best is monotone; require it not to regress and training to
        // run without numerical blowups.
        assert!(last.mean_best >= first.mean_best - 1e-9);
        assert!(last.mean_reward.is_finite());
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut t = trainer(2, false);
        for _ in 0..4 {
            t.train_epoch();
        }
        for inst in &t.instances {
            assert!(inst.buffer.len() <= t.options.buffer_capacity);
            // Buffer must be sorted descending by reward.
            for w in inst.buffer.windows(2) {
                assert!(w[0].reward >= w[1].reward);
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut t1 = trainer_with(3, true, 1);
        let mut t4 = trainer_with(3, true, 4);
        for _ in 0..3 {
            let s1 = t1.train_epoch();
            let s4 = t4.train_epoch();
            assert_eq!(s1, s4, "TrainStats diverged between 1 and 4 workers");
        }
        // Buffers must be bitwise identical: same decision vectors, same
        // reward bits, same provenance, in the same order.
        for (a, b) in t1.instances.iter().zip(&t4.instances) {
            assert_eq!(a.buffer.len(), b.buffer.len());
            for (x, y) in a.buffer.iter().zip(&b.buffer) {
                assert_eq!(x.decisions, y.decisions);
                assert_eq!(x.reward.to_bits(), y.reward.to_bits());
                assert_eq!(x.guided, y.guided);
            }
        }
        // Cache bookkeeping is scheduling-independent too.
        assert_eq!(t1.reward_cache().hits(), t4.reward_cache().hits());
        assert_eq!(t1.reward_cache().misses(), t4.reward_cache().misses());
        assert_eq!(t1.reward_cache().entries(), t4.reward_cache().entries());
        // And so is the parallel evaluation pass.
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let test_graphs: Vec<StreamGraph> = (50..54u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        assert_eq!(
            t1.evaluate(&test_graphs).to_bits(),
            t4.evaluate(&test_graphs).to_bits()
        );
    }

    #[test]
    fn repeated_decisions_hit_the_reward_cache() {
        use spg_graph::{Channel, Operator, StreamGraphBuilder};
        // A 2-edge chain admits at most 5 distinct collapse keys
        // ({}, [0], [1], [0,1], [1,0]), so after the first few epochs
        // every sampled vector must already be memoized.
        let mut b = StreamGraphBuilder::new();
        let mut prev = b.add_node(Operator::new(10.0));
        for _ in 1..3 {
            let next = b.add_node(Operator::new(10.0));
            b.add_edge(prev, next, Channel::new(8.0)).unwrap();
            prev = next;
        }
        let g = b.finish().unwrap();
        let cluster = spg_graph::ClusterSpec::new(2, 0.2, 100.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let mut t = ReinforceTrainer::new(
            model,
            MetisCoarsePlacer::new(5),
            vec![g],
            cluster,
            1e4,
            TrainOptions {
                metis_guided: false,
                seed: 9,
                num_workers: 1,
                ..Default::default()
            },
        );
        let epochs = 10;
        for _ in 0..epochs {
            t.train_epoch();
        }
        let cache = t.reward_cache();
        let total = (epochs * t.options.on_policy_samples) as u64;
        assert_eq!(cache.hits() + cache.misses(), total);
        assert!(cache.hits() > 0, "no rollout was ever served from cache");
        assert!(cache.entries() <= 5, "entries = {}", cache.entries());
        // A key can be evaluated at most once per batch it is missing in,
        // so distinct entries never exceed simulator invocations.
        assert!(cache.entries() as u64 <= cache.misses());
    }

    #[test]
    fn collapse_key_determines_reward() {
        // The memoization premise: the reward depends on (decisions,
        // probs) only through the collapse key. Two prob vectors with the
        // same induced priority must yield bitwise-equal rewards.
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 0);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let policy = CoarseningPolicy::from_config(&CoarsenConfig::default());
        let placer = MetisCoarsePlacer::new(5);
        let m = g.num_edges();
        let probs_a: Vec<f32> = (0..m).map(|e| 0.9 - e as f32 * (0.8 / m as f32)).collect();
        let probs_b: Vec<f32> = (0..m).map(|e| 0.6 - e as f32 * (0.5 / m as f32)).collect();
        let decisions: Vec<bool> = (0..m).map(|e| e % 3 == 0).collect();
        let ka = rollout::collapse_key(&priority_by_prob(&probs_a), &decisions);
        let kb = rollout::collapse_key(&priority_by_prob(&probs_b), &decisions);
        assert_eq!(ka, kb);
        let ra = rollout_reward(&policy, &g, &rates, &cluster, &decisions, &probs_a, &placer);
        let rb = rollout_reward(&policy, &g, &rates, &cluster, &decisions, &probs_b, &placer);
        assert_eq!(ra.to_bits(), rb.to_bits());
    }

    #[test]
    fn evaluate_returns_unit_interval() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let t = trainer(2, false);
        let test_graphs: Vec<StreamGraph> = (100..103u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let r = t.evaluate(&test_graphs);
        assert!((0.0..=1.0).contains(&r), "r = {r}");
    }
}
