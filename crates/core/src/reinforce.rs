//! REINFORCE training (§III) with a best-sample memory buffer and optional
//! Metis-guided seeding (§IV-C).
//!
//! Per graph and step: one differentiable forward pass produces the edge
//! logits; several on-policy decision vectors are sampled and evaluated by
//! the simulator; buffered historically-best samples (and, early on,
//! Metis-derived samples) are added; the policy gradient
//! `∇J = (1/N) Σ ∇log π(a_n) · (r_n − b)` uses the mean reward of the
//! considered samples as the baseline `b`.
//!
//! Rollouts run on the [`crate::rollout`] engine: the samples of a step
//! (and the graphs of an evaluation pass) fan out over
//! [`TrainOptions::num_workers`] threads with results bitwise identical
//! to the sequential path, and rewards are memoized per graph so
//! repeated decision vectors skip the simulator. Forward/backward passes
//! stay on the calling thread — model parameters are `Rc`-shared.

use crate::checkpoint::{Checkpoint, CheckpointManager, ResumeError, SampleState, TrainerState};
use crate::fault::{FaultError, FaultEvent, FaultKind, FaultPolicy, FaultStats, RecoveryAction};
use crate::model::CoarsenModel;
use crate::pipeline::CoarsePlacer;
use crate::policy::{priority_by_prob, CoarseningPolicy, DecodeMode};
use crate::rollout::{self, RewardCache, RolloutOutcome};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg_graph::{ClusterSpec, GraphFeatures, Placement, StreamGraph, TupleRates};
use spg_nn::{Adam, Matrix, Tape};
use spg_obs::{probe, ProbeSnapshot, TelemetrySink};
use std::time::Instant;

/// Trainer options.
///
/// Construct fluently — the struct is `#[non_exhaustive]` so new knobs can
/// be added without breaking downstream code:
///
/// ```
/// use spg_core::TrainOptions;
/// let opts = TrainOptions::new().seed(7).metis_guided(false).num_workers(1);
/// assert_eq!(opts.seed, 7);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TrainOptions {
    /// On-policy samples per step (paper: 3).
    pub on_policy_samples: usize,
    /// Buffer samples mixed in per step (paper: up to 3).
    pub buffer_samples: usize,
    /// Historically-best samples kept per graph.
    pub buffer_capacity: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Seed the buffers with Metis-derived collapse decisions (§IV-C).
    pub metis_guided: bool,
    /// Drop Metis-guided samples once an on-policy sample beats them.
    pub drop_guided_when_beaten: bool,
    /// RNG seed.
    pub seed: u64,
    /// Requested rollout worker threads (default: available
    /// parallelism; `1` runs the sequential path). The count actually
    /// used is [`TrainOptions::effective_workers`], which clamps to the
    /// machine's available parallelism. Results are bitwise identical
    /// for every value — see [`crate::rollout`].
    pub num_workers: usize,
    /// What to do when a non-finite value or worker panic is detected
    /// during training (default: [`FaultPolicy::Abort`]).
    pub fault_policy: FaultPolicy,
    /// Write a periodic checkpoint snapshot every N epochs (0 disables;
    /// consumed by [`crate::checkpoint::CheckpointManager`] / the CLI).
    pub checkpoint_every: usize,
    /// How many periodic snapshots to retain (keep-last-K).
    pub checkpoint_keep: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            on_policy_samples: 3,
            buffer_samples: 3,
            buffer_capacity: 3,
            lr: 1e-3,
            metis_guided: true,
            drop_guided_when_beaten: true,
            seed: 0,
            num_workers: rollout::default_workers(),
            fault_policy: FaultPolicy::default(),
            checkpoint_every: 0,
            checkpoint_keep: 3,
        }
    }
}

impl TrainOptions {
    /// The paper's defaults (same as [`Default`]), as a fluent base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of on-policy samples per step.
    pub fn on_policy_samples(mut self, n: usize) -> Self {
        self.on_policy_samples = n;
        self
    }

    /// Set the number of buffer samples mixed in per step.
    pub fn buffer_samples(mut self, n: usize) -> Self {
        self.buffer_samples = n;
        self
    }

    /// Set the number of historically-best samples kept per graph.
    pub fn buffer_capacity(mut self, n: usize) -> Self {
        self.buffer_capacity = n;
        self
    }

    /// Set the Adam learning rate.
    pub fn lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Enable/disable Metis-guided buffer seeding.
    pub fn metis_guided(mut self, on: bool) -> Self {
        self.metis_guided = on;
        self
    }

    /// Enable/disable dropping guided samples once beaten.
    pub fn drop_guided_when_beaten(mut self, on: bool) -> Self {
        self.drop_guided_when_beaten = on;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the rollout worker-thread count.
    pub fn num_workers(mut self, n: usize) -> Self {
        self.num_workers = n;
        self
    }

    /// Worker count actually used for rollouts: [`Self::num_workers`]
    /// clamped to the machine's available parallelism. A pool wider
    /// than the core count only adds scheduling overhead (on a 1-core
    /// container `--workers 4` benched *slower* than `1`), so requests
    /// the hardware cannot honour degrade to the sequential path
    /// instead of a pessimization.
    pub fn effective_workers(&self) -> usize {
        self.num_workers.clamp(1, rollout::default_workers())
    }

    /// Set the fault-recovery policy.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Set the periodic-checkpoint interval in epochs (0 disables).
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Set the number of periodic snapshots to retain.
    pub fn checkpoint_keep(mut self, n: usize) -> Self {
        self.checkpoint_keep = n;
        self
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean on-policy reward over the epoch.
    pub mean_reward: f64,
    /// Mean best-in-buffer reward over graphs.
    pub mean_best: f64,
    /// Number of policy-gradient steps taken.
    pub steps: usize,
}

/// A buffered sample: decisions, its reward, and whether it came from the
/// Metis guide.
#[derive(Debug, Clone)]
struct BufferedSample {
    decisions: Vec<bool>,
    reward: f64,
    guided: bool,
}

/// Everything precomputed per training graph.
struct Instance {
    graph: StreamGraph,
    rates: TupleRates,
    feats: GraphFeatures,
    buffer: Vec<BufferedSample>,
}

/// The REINFORCE trainer. Owns the model during training.
///
/// Construct with [`ReinforceTrainer::builder`]:
///
/// ```no_run
/// # use spg_core::{CoarsenConfig, CoarsenModel, MetisCoarsePlacer, ReinforceTrainer, TrainOptions};
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// # let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
/// # let graphs = Vec::new();
/// # let cluster = spg_graph::ClusterSpec::paper_medium(4);
/// let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(1))
///     .graphs(graphs)
///     .cluster(cluster)
///     .source_rate(1e4)
///     .options(TrainOptions::new().seed(7))
///     .build();
/// ```
pub struct ReinforceTrainer<P: CoarsePlacer> {
    /// The model being trained.
    pub model: CoarsenModel,
    /// Placement backend used inside the reward rollout.
    pub placer: P,
    /// Options.
    pub options: TrainOptions,
    policy: CoarseningPolicy,
    adam: Adam,
    instances: Vec<Instance>,
    cluster: ClusterSpec,
    source_rate: f64,
    rng: ChaCha8Rng,
    cache: RewardCache,
    sink: TelemetrySink,
    epochs_run: u64,
    /// Per-graph quarantine flags set by the fault policy.
    quarantined: Vec<bool>,
    fault_stats: FaultStats,
    fault_log: Vec<FaultEvent>,
    /// Cache counters at the end of the previous epoch (for deltas).
    prev_cache: (u64, u64),
    /// Probe snapshots at the end of the previous epoch, aligned with
    /// [`probe::all`].
    prev_probes: [ProbeSnapshot; 3],
}

/// Fluent construction of a [`ReinforceTrainer`]. Obtain via
/// [`ReinforceTrainer::builder`]; `graphs`, `cluster`, and `source_rate`
/// are required (or [`Self::dataset`] for all three), options and the
/// telemetry sink are optional.
pub struct ReinforceTrainerBuilder<P: CoarsePlacer> {
    model: CoarsenModel,
    placer: P,
    graphs: Vec<StreamGraph>,
    cluster: Option<ClusterSpec>,
    source_rate: Option<f64>,
    options: TrainOptions,
    sink: TelemetrySink,
}

impl<P: CoarsePlacer> ReinforceTrainerBuilder<P> {
    /// Set the training graphs.
    pub fn graphs(mut self, graphs: Vec<StreamGraph>) -> Self {
        self.graphs = graphs;
        self
    }

    /// Set the cluster environment.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Set the source tuple rate (tuples/second).
    pub fn source_rate(mut self, rate: f64) -> Self {
        self.source_rate = Some(rate);
        self
    }

    /// Take graphs, cluster, and source rate from a serialised dataset.
    pub fn dataset(mut self, ds: spg_graph::serialize::Dataset) -> Self {
        self.graphs = ds.graphs;
        self.cluster = Some(ds.cluster);
        self.source_rate = Some(ds.source_rate);
        self
    }

    /// Set all trainer options at once.
    pub fn options(mut self, options: TrainOptions) -> Self {
        self.options = options;
        self
    }

    /// Shorthand for setting only the RNG seed on the current options.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Attach a telemetry sink (default: disabled). Telemetry is
    /// observability only — training results are bitwise identical with
    /// any sink.
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.sink = sink;
        self
    }

    /// Build the trainer: precomputes rates/features and, if configured,
    /// Metis-guided buffer seeds.
    ///
    /// # Panics
    /// If `cluster` or `source_rate` was not provided.
    pub fn build(self) -> ReinforceTrainer<P> {
        let cluster = self.cluster.expect(
            "ReinforceTrainer builder: cluster not set (call .cluster(..) or .dataset(..))",
        );
        let source_rate = self.source_rate.expect(
            "ReinforceTrainer builder: source_rate not set (call .source_rate(..) or .dataset(..))",
        );
        let (model, placer, options, sink) = (self.model, self.placer, self.options, self.sink);
        let policy = CoarseningPolicy::from_config(&model.config);
        let adam = Adam::new(options.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(options.seed);

        let mut instances: Vec<Instance> = self
            .graphs
            .into_iter()
            .map(|graph| {
                let rates = TupleRates::compute(&graph, source_rate);
                let feats = GraphFeatures::extract_with_rates(&graph, &cluster, &rates);
                Instance {
                    graph,
                    rates,
                    feats,
                    buffer: Vec::new(),
                }
            })
            .collect();

        if options.metis_guided {
            let metis = spg_partition::MetisAllocator::new(options.seed ^ 0xC0FFEE);
            for inst in &mut instances {
                let placement =
                    spg_graph::Allocator::allocate(&metis, &inst.graph, &cluster, source_rate);
                let decisions = spg_partition::guided::infer_collapsed_edges(
                    &inst.graph,
                    &inst.rates,
                    placement.as_slice(),
                );
                // Reward of replaying the guided decisions through our own
                // pipeline (not of the raw Metis placement) — that is what
                // the policy is asked to imitate.
                let probs = vec![0.5f32; decisions.len()];
                let reward = rollout_reward(
                    &policy,
                    &inst.graph,
                    &inst.rates,
                    &cluster,
                    &decisions,
                    &probs,
                    &placer,
                );
                inst.buffer.push(BufferedSample {
                    decisions,
                    reward,
                    guided: true,
                });
            }
        }

        // Fresh rng stream decoupled from seeding above.
        rng.set_word_pos(1 << 20);

        let cache = RewardCache::new(instances.len());
        let prev_probes = probe::all().map(|p| p.snapshot());
        let quarantined = vec![false; instances.len()];
        ReinforceTrainer {
            model,
            placer,
            options,
            policy,
            adam,
            instances,
            cluster,
            source_rate,
            rng,
            cache,
            sink,
            epochs_run: 0,
            quarantined,
            fault_stats: FaultStats::default(),
            fault_log: Vec::new(),
            prev_cache: (0, 0),
            prev_probes,
        }
    }
}

impl<P: CoarsePlacer> ReinforceTrainer<P> {
    /// Start building a trainer for `model` with `placer` as the placement
    /// backend. See [`ReinforceTrainerBuilder`].
    pub fn builder(model: CoarsenModel, placer: P) -> ReinforceTrainerBuilder<P> {
        ReinforceTrainerBuilder {
            model,
            placer,
            graphs: Vec::new(),
            cluster: None,
            source_rate: None,
            options: TrainOptions::default(),
            sink: TelemetrySink::disabled(),
        }
    }

    /// Positional constructor, kept for compatibility; prefer
    /// [`ReinforceTrainer::builder`].
    pub fn new(
        model: CoarsenModel,
        placer: P,
        graphs: Vec<StreamGraph>,
        cluster: ClusterSpec,
        source_rate: f64,
        options: TrainOptions,
    ) -> Self {
        Self::builder(model, placer)
            .graphs(graphs)
            .cluster(cluster)
            .source_rate(source_rate)
            .options(options)
            .build()
    }

    /// Number of training graphs.
    pub fn num_graphs(&self) -> usize {
        self.instances.len()
    }

    /// The reward memo-cache (hit/miss counters, memoized entries).
    pub fn reward_cache(&self) -> &RewardCache {
        &self.cache
    }

    /// The attached telemetry sink (disabled unless set on the builder).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.sink
    }

    /// Consume the trainer, returning the trained model.
    pub fn into_model(self) -> CoarsenModel {
        self.model
    }

    /// Epochs completed so far (resume restores this counter).
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Running fault-handling totals.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Every recovery event of this process, in order of occurrence.
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.fault_log
    }

    /// Indices of graphs quarantined by the fault policy.
    pub fn quarantined_graphs(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(i, &q)| q.then_some(i))
            .collect()
    }

    /// Snapshot the full training state — model, optimiser moments, RNG
    /// position, best-sample buffers, quarantine set — as a resumable
    /// [`Checkpoint`]. A run resumed from it via [`Self::resume_from`]
    /// continues bitwise-identically to one that never stopped.
    pub fn checkpoint(&self) -> Checkpoint {
        let (adam_m, adam_v) = self.model.params().snapshot_moments();
        let (hi, lo) = TrainerState::split_word_pos(self.rng.get_word_pos());
        Checkpoint {
            config: self.model.config.clone(),
            params: self.model.params().snapshot(),
            trainer: Some(TrainerState {
                epoch: self.epochs_run,
                seed: self.options.seed,
                rng_word_pos_hi: hi,
                rng_word_pos_lo: lo,
                adam_steps: self.adam.steps(),
                adam_m,
                adam_v,
                buffers: self
                    .instances
                    .iter()
                    .map(|inst| {
                        inst.buffer
                            .iter()
                            .map(|s| SampleState {
                                decisions: s.decisions.clone(),
                                reward: s.reward,
                                guided: s.guided,
                            })
                            .collect()
                    })
                    .collect(),
                quarantined: self
                    .quarantined
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &q)| q.then_some(i as u64))
                    .collect(),
                skipped_samples: self.fault_stats.skipped_samples,
                quarantined_graphs: self.fault_stats.quarantined_graphs,
                rollbacks: self.fault_stats.rollbacks,
            }),
        }
    }

    /// Periodic-snapshot manager for this trainer's options
    /// (`checkpoint_every` / `checkpoint_keep`), writing snapshots next
    /// to `base`. Call [`CheckpointManager::maybe_save`] with
    /// [`Self::checkpoint`] after each epoch.
    pub fn checkpoint_manager(&self, base: impl Into<std::path::PathBuf>) -> CheckpointManager {
        CheckpointManager::new(
            base,
            self.options.checkpoint_every,
            self.options.checkpoint_keep,
        )
    }

    /// Restore a [`Self::checkpoint`] into this trainer: parameters, Adam
    /// moments and step count, the master RNG stream position, best-sample
    /// buffers, quarantine flags, and the epoch counter. The trainer must
    /// have been built over the same graphs, config, and seed — mismatches
    /// are rejected, since resuming them would silently diverge.
    pub fn resume_from(&mut self, ckpt: &Checkpoint) -> Result<(), ResumeError> {
        let state = ckpt.trainer.as_ref().ok_or(ResumeError::NoTrainerState)?;
        if ckpt.config != self.model.config {
            return Err(ResumeError::ConfigMismatch);
        }
        let own = self.model.params().snapshot();
        let shapes_match = |mats: &[Matrix]| {
            mats.len() == own.len()
                && mats
                    .iter()
                    .zip(&own)
                    .all(|(a, b)| a.rows == b.rows && a.cols == b.cols)
        };
        if !shapes_match(&ckpt.params) {
            return Err(ResumeError::ParamShapeMismatch { what: "params" });
        }
        if !shapes_match(&state.adam_m) {
            return Err(ResumeError::ParamShapeMismatch {
                what: "adam_m moments",
            });
        }
        if !shapes_match(&state.adam_v) {
            return Err(ResumeError::ParamShapeMismatch {
                what: "adam_v moments",
            });
        }
        if state.buffers.len() != self.instances.len() {
            return Err(ResumeError::GraphCountMismatch {
                expected: state.buffers.len(),
                actual: self.instances.len(),
            });
        }
        if state.seed != self.options.seed {
            return Err(ResumeError::SeedMismatch {
                expected: state.seed,
                actual: self.options.seed,
            });
        }

        self.model.params().restore(&ckpt.params);
        self.model
            .params()
            .restore_moments(&state.adam_m, &state.adam_v);
        self.adam.set_steps(state.adam_steps);
        self.rng = ChaCha8Rng::seed_from_u64(state.seed);
        self.rng.set_word_pos(state.rng_word_pos());
        for (inst, buf) in self.instances.iter_mut().zip(&state.buffers) {
            inst.buffer = buf
                .iter()
                .map(|s| BufferedSample {
                    decisions: s.decisions.clone(),
                    reward: s.reward,
                    guided: s.guided,
                })
                .collect();
        }
        self.quarantined = vec![false; self.instances.len()];
        for &gi in &state.quarantined {
            if let Some(q) = self.quarantined.get_mut(gi as usize) {
                *q = true;
            }
        }
        self.epochs_run = state.epoch;
        self.fault_stats.skipped_samples = state.skipped_samples;
        self.fault_stats.quarantined_graphs = state.quarantined_graphs;
        self.fault_stats.rollbacks = state.rollbacks;
        self.fault_stats.resumes += 1;
        self.sink.counter("train.resumes", 1);
        Ok(())
    }
}

/// A fault detected inside one policy-gradient step, before the policy
/// decides how to recover.
struct StepFault {
    kind: FaultKind,
    sample: Option<usize>,
    detail: String,
}

/// Epoch-start state captured under [`FaultPolicy::RollbackToSnapshot`].
struct EpochSnapshot {
    params: Vec<Matrix>,
    adam_m: Vec<Matrix>,
    adam_v: Vec<Matrix>,
    adam_t: u64,
    rng: ChaCha8Rng,
    buffers: Vec<Vec<BufferedSample>>,
}

/// Restores the previous thread-local injection context on drop, even
/// when the guarded rollout unwinds (so a caught panic cannot leak a
/// stale context key into later simulator calls on this thread).
struct InjectContextGuard(u64);

impl Drop for InjectContextGuard {
    fn drop(&mut self) {
        spg_sim::inject::set_context(self.0);
    }
}

/// Per-epoch metric accumulators, only filled while a telemetry sink is
/// enabled (their inputs — entropy, gradient norms — cost extra compute).
struct EpochScratch {
    reward_min: f64,
    reward_max: f64,
    baseline_sum: f64,
    entropy_sum: f64,
    grad_norm_sum: f64,
    steps: usize,
}

impl Default for EpochScratch {
    fn default() -> Self {
        Self {
            reward_min: f64::INFINITY,
            reward_max: f64::NEG_INFINITY,
            baseline_sum: 0.0,
            entropy_sum: 0.0,
            grad_norm_sum: 0.0,
            steps: 0,
        }
    }
}

/// Training and evaluation fan rollouts out over worker threads, so the
/// placer must be shareable. Every shipped placer used for training
/// ([`crate::pipeline::MetisCoarsePlacer`]) is `Sync`; `Rc`-backed
/// learned placers remain usable for inference-side pipelines.
impl<P: CoarsePlacer + Sync> ReinforceTrainer<P> {
    /// Run one epoch (one policy-gradient step per graph).
    ///
    /// When a telemetry sink is attached, the epoch emits spans
    /// (`epoch` > `step.forward` / `step.rollout` / `step.backprop`),
    /// per-epoch reward/baseline/entropy/gradient gauges, reward-cache and
    /// simulator/partitioner counters, and per-sample rollout timing
    /// histograms. Telemetry never changes results: `TrainStats` is
    /// bitwise identical with the sink on or off.
    /// # Panics
    /// On a detected fault under [`FaultPolicy::Abort`] — use
    /// [`Self::try_train_epoch`] to handle the fault as an error instead.
    pub fn train_epoch(&mut self) -> TrainStats {
        match self.try_train_epoch() {
            Ok(stats) => stats,
            Err(e) => panic!("training fault (policy abort): {e}"),
        }
    }

    /// Run one epoch, surfacing detected faults according to
    /// [`TrainOptions::fault_policy`]:
    ///
    /// * `Abort` returns the named [`FaultError`] (nothing is retried);
    /// * `SkipSample` drops faulty samples, quarantines graphs whose
    ///   forward/backward/Adam step faults, and always returns `Ok`;
    /// * `RollbackToSnapshot` restores the epoch-start snapshot,
    ///   quarantines the offending graph, and retries the epoch (bounded:
    ///   every retry removes one graph).
    pub fn try_train_epoch(&mut self) -> Result<TrainStats, FaultError> {
        let epoch_span = self.sink.span("epoch");
        let policy = self.options.fault_policy;
        loop {
            let snapshot =
                (policy == FaultPolicy::RollbackToSnapshot).then(|| self.epoch_snapshot());
            let mut scratch = self.sink.enabled().then(EpochScratch::default);
            match self.epoch_attempt(scratch.as_mut()) {
                Ok((sum_reward, n_rewards, steps)) => {
                    let mean_best = if self.instances.is_empty() {
                        0.0
                    } else {
                        self.instances
                            .iter()
                            .map(|i| i.buffer.iter().map(|s| s.reward).fold(0.0, f64::max))
                            .sum::<f64>()
                            / self.instances.len() as f64
                    };
                    let stats = TrainStats {
                        mean_reward: if n_rewards > 0 {
                            sum_reward / n_rewards as f64
                        } else {
                            0.0
                        },
                        mean_best,
                        steps,
                    };
                    self.epochs_run += 1;
                    if let Some(sc) = scratch {
                        self.emit_epoch_telemetry(&stats, &sc);
                    }
                    drop(epoch_span);
                    return Ok(stats);
                }
                Err((gi, fault)) => match policy {
                    FaultPolicy::Abort => {
                        self.fault_log.push(FaultEvent {
                            kind: fault.kind,
                            epoch: self.epochs_run,
                            graph: gi,
                            sample: fault.sample,
                            detail: fault.detail.clone(),
                            action: RecoveryAction::Aborted,
                        });
                        return Err(FaultError {
                            kind: fault.kind,
                            epoch: self.epochs_run,
                            graph: gi,
                            sample: fault.sample,
                            detail: fault.detail,
                        });
                    }
                    FaultPolicy::RollbackToSnapshot => {
                        self.restore_epoch_snapshot(
                            snapshot.expect("snapshot taken under rollback policy"),
                        );
                        self.fault_stats.rollbacks += 1;
                        self.sink.counter("fault.rollbacks", 1);
                        self.fault_log.push(FaultEvent {
                            kind: fault.kind,
                            epoch: self.epochs_run,
                            graph: gi,
                            sample: fault.sample,
                            detail: fault.detail.clone(),
                            action: RecoveryAction::RolledBack,
                        });
                        // Quarantine after the restore so it sticks; the
                        // retry then skips the offending graph, which
                        // bounds the loop by the graph count.
                        self.quarantine_graph(gi, &fault);
                    }
                    FaultPolicy::SkipSample => {
                        unreachable!("skip policy recovers inside the attempt")
                    }
                },
            }
        }
    }

    /// One pass over the (non-quarantined) graphs. Returns the reward
    /// accumulators, or the first unrecovered fault with its graph index.
    fn epoch_attempt(
        &mut self,
        mut scratch: Option<&mut EpochScratch>,
    ) -> Result<(f64, usize, usize), (usize, StepFault)> {
        let mut sum_reward = 0.0;
        let mut n_rewards = 0usize;
        let mut steps = 0usize;
        for gi in 0..self.instances.len() {
            if self.quarantined[gi] {
                continue;
            }
            match self.step(gi, scratch.as_deref_mut()) {
                Ok(Some(mean_r)) => {
                    sum_reward += mean_r;
                    n_rewards += 1;
                    steps += 1;
                }
                Ok(None) => {}
                Err(fault) => {
                    if self.options.fault_policy == FaultPolicy::SkipSample {
                        // Sample-scoped faults were already skipped inside
                        // the step; what escapes is step-scoped, so the
                        // graph itself is the hazard — quarantine it.
                        self.quarantine_graph(gi, &fault);
                    } else {
                        return Err((gi, fault));
                    }
                }
            }
        }
        Ok((sum_reward, n_rewards, steps))
    }

    fn epoch_snapshot(&self) -> EpochSnapshot {
        let (adam_m, adam_v) = self.model.params().snapshot_moments();
        EpochSnapshot {
            params: self.model.params().snapshot(),
            adam_m,
            adam_v,
            adam_t: self.adam.steps(),
            rng: self.rng.clone(),
            buffers: self.instances.iter().map(|i| i.buffer.clone()).collect(),
        }
    }

    fn restore_epoch_snapshot(&mut self, snap: EpochSnapshot) {
        self.model.params().restore(&snap.params);
        self.model
            .params()
            .restore_moments(&snap.adam_m, &snap.adam_v);
        self.adam.set_steps(snap.adam_t);
        self.rng = snap.rng;
        for (inst, buf) in self.instances.iter_mut().zip(snap.buffers) {
            inst.buffer = buf;
        }
    }

    fn quarantine_graph(&mut self, gi: usize, fault: &StepFault) {
        if !self.quarantined[gi] {
            self.quarantined[gi] = true;
            self.fault_stats.quarantined_graphs += 1;
            self.sink.counter("fault.quarantined_graphs", 1);
        }
        self.fault_log.push(FaultEvent {
            kind: fault.kind,
            epoch: self.epochs_run,
            graph: gi,
            sample: fault.sample,
            detail: fault.detail.clone(),
            action: RecoveryAction::QuarantinedGraph,
        });
    }

    fn skip_sample(&mut self, gi: usize, fault: StepFault) {
        self.fault_stats.skipped_samples += 1;
        self.sink.counter("fault.skipped_samples", 1);
        self.fault_log.push(FaultEvent {
            kind: fault.kind,
            epoch: self.epochs_run,
            graph: gi,
            sample: fault.sample,
            detail: fault.detail,
            action: RecoveryAction::SkippedSample,
        });
    }

    /// Emit the per-epoch metric events (sink known to be enabled).
    fn emit_epoch_telemetry(&mut self, stats: &TrainStats, sc: &EpochScratch) {
        let sink = &self.sink;
        sink.gauge("epoch", self.epochs_run as f64);
        sink.gauge("reward.mean", stats.mean_reward);
        sink.gauge("reward.best", stats.mean_best);
        if sc.reward_min.is_finite() {
            sink.gauge("reward.min", sc.reward_min);
            sink.gauge("reward.max", sc.reward_max);
        }
        if sc.steps > 0 {
            let n = sc.steps as f64;
            sink.gauge("baseline.mean", sc.baseline_sum / n);
            sink.gauge("entropy.mean", sc.entropy_sum / n);
            sink.gauge("grad_norm.mean", sc.grad_norm_sum / n);
        }
        sink.gauge(
            "buffer.size",
            self.instances.iter().map(|i| i.buffer.len()).sum::<usize>() as f64,
        );
        sink.gauge("rollout.workers", self.options.effective_workers() as f64);

        // Reward memo-cache: per-epoch deltas + the absolute entry count.
        let (hits, misses) = (self.cache.hits(), self.cache.misses());
        sink.counter("cache.hits", hits - self.prev_cache.0);
        sink.counter("cache.misses", misses - self.prev_cache.1);
        self.prev_cache = (hits, misses);
        sink.gauge("cache.entries", self.cache.entries() as f64);

        // Simulator / partitioner probes: per-epoch deltas. Exact for a
        // lone trainer; upper bounds if other work shares the process.
        for (probe, prev) in probe::all().into_iter().zip(&mut self.prev_probes) {
            let snap = probe.snapshot();
            let d = snap.delta(*prev);
            *prev = snap;
            sink.counter(&format!("{}.calls", probe.name()), d.calls);
            sink.counter(&format!("{}.us", probe.name()), d.us);
        }
    }

    /// One policy-gradient step on graph `gi`. Returns the mean on-policy
    /// reward (`None` if the graph has no edges or the whole batch was
    /// skipped), or the first fault the [`FaultPolicy`] does not recover
    /// at sample scope. `scratch` collects telemetry-only metrics when a
    /// sink is enabled.
    fn step(
        &mut self,
        gi: usize,
        scratch: Option<&mut EpochScratch>,
    ) -> Result<Option<f64>, StepFault> {
        let opts = self.options.clone();

        // Forward pass (kept for the gradient).
        let forward_span = self.sink.span("step.forward");
        let mut tape = Tape::new();
        let (logits, probs) = {
            let inst = &self.instances[gi];
            let Some(logits) = self.model.forward(&mut tape, &inst.graph, &inst.feats) else {
                return Ok(None);
            };
            let probs: Vec<f32> = tape
                .value(logits)
                .data
                .iter()
                .map(|&z| crate::model::sigmoid(z))
                .collect();
            (logits, probs)
        };
        drop(forward_span);

        // Guard rail (forward boundary): non-finite collapse probabilities
        // mean the policy's log-probs are poisoned — no sample can be
        // salvaged, so this is always a step-scoped fault.
        if let Some(p) = probs.iter().find(|p| !p.is_finite()) {
            return Err(StepFault {
                kind: FaultKind::NonFiniteLogProb,
                sample: None,
                detail: format!("collapse probability {p} from the forward pass"),
            });
        }

        // On-policy rollouts on the deterministic engine: pre-draw one
        // decode seed per sample from the master RNG, so every sample's
        // stream is a pure function of its index and the batch runs on
        // any number of workers with bitwise identical results.
        let priority = priority_by_prob(&probs);
        let seeds: Vec<u64> = (0..opts.on_policy_samples)
            .map(|_| self.rng.gen())
            .collect();
        let rollout_span = self.sink.span("step.rollout");
        let epoch = self.epochs_run;
        let outcomes: Vec<Result<RolloutOutcome, String>> = {
            let inst = &self.instances[gi];
            let policy = &self.policy;
            let placer = &self.placer;
            let cluster = &self.cluster;
            let probs = &probs;
            let priority = &priority[..];
            // Per-sample wall-clock goes to the sink from worker threads;
            // the clock is only read while telemetry is on.
            let sink = &self.sink;
            let timed = sink.enabled();
            // Workers read one cache snapshot for the whole batch;
            // misses are inserted afterwards in sample order.
            let cache = self.cache.graph(gi);
            // Worker panics are caught per sample, so one poisoned rollout
            // degrades to one `Err` slot instead of killing the epoch.
            rollout::run_ordered_catching(opts.effective_workers(), seeds.len(), |i| {
                let t0 = timed.then(Instant::now);
                let inject_key = spg_sim::inject::rollout_key(epoch, gi, i);
                let injected = spg_sim::inject::at(spg_sim::inject::Site::Rollout, inject_key);
                if injected == Some(spg_sim::inject::Fault::WorkerPanic) {
                    panic!("injected worker panic (epoch {epoch}, graph {gi}, sample {i})");
                }
                let mut rng = ChaCha8Rng::seed_from_u64(seeds[i]);
                let decisions = policy.decode(probs, DecodeMode::Sample, &mut rng);
                let key = rollout::collapse_key(priority, &decisions);
                let outcome = if injected == Some(spg_sim::inject::Fault::NanReward) {
                    RolloutOutcome {
                        decisions,
                        key,
                        reward: f64::NAN,
                        cached: false,
                    }
                } else {
                    match cache.get(&key).copied() {
                        Some(reward) => RolloutOutcome {
                            decisions,
                            key,
                            reward,
                            cached: true,
                        },
                        None => {
                            // Give simulator-site injection a stable
                            // per-sample identity for the duration of the
                            // reward computation.
                            let ctx = InjectContextGuard(spg_sim::inject::set_context(inject_key));
                            let reward = rollout_reward(
                                policy,
                                &inst.graph,
                                &inst.rates,
                                cluster,
                                &decisions,
                                probs,
                                placer,
                            );
                            drop(ctx);
                            RolloutOutcome {
                                decisions,
                                key,
                                reward,
                                cached: false,
                            }
                        }
                    }
                };
                if let Some(t0) = t0 {
                    sink.hist("rollout.sample_us", t0.elapsed().as_secs_f64() * 1e6);
                }
                outcome
            })
        };
        drop(rollout_span);

        let mut samples: Vec<(Vec<bool>, f64, bool)> = Vec::new();
        let mut on_policy_sum = 0.0;
        let mut n_on_policy = 0usize;
        for (i, res) in outcomes.into_iter().enumerate() {
            // Guard rail (rollout boundary): non-finite rewards and worker
            // panics are sample-scoped — under the skip policy the batch
            // simply loses this sample.
            let fault = match res {
                Ok(out) if out.reward.is_finite() => {
                    self.cache.record(out.cached);
                    if !out.cached {
                        self.cache.insert(gi, out.key, out.reward);
                    }
                    on_policy_sum += out.reward;
                    n_on_policy += 1;
                    samples.push((out.decisions, out.reward, false));
                    continue;
                }
                Ok(out) => {
                    // The lookup happened and missed; never memoize a
                    // non-finite reward.
                    self.cache.record(out.cached);
                    StepFault {
                        kind: FaultKind::NonFiniteReward,
                        sample: Some(i),
                        detail: format!("rollout reward {}", out.reward),
                    }
                }
                Err(panic_msg) => StepFault {
                    kind: FaultKind::WorkerPanic,
                    sample: Some(i),
                    detail: panic_msg,
                },
            };
            if opts.fault_policy == FaultPolicy::SkipSample {
                self.skip_sample(gi, fault);
            } else {
                return Err(fault);
            }
        }
        let on_policy_mean = on_policy_sum / n_on_policy.max(1) as f64;

        // Mix in buffered best samples.
        {
            let inst = &self.instances[gi];
            for s in inst.buffer.iter().take(opts.buffer_samples) {
                samples.push((s.decisions.clone(), s.reward, s.guided));
            }
        }
        if samples.is_empty() {
            // Every on-policy sample was skipped and the buffer is empty:
            // there is nothing to form a gradient from.
            return Ok(None);
        }

        // Policy gradient with mean-reward baseline.
        let backprop_span = self.sink.span("step.backprop");
        let baseline: f64 = samples.iter().map(|(_, r, _)| *r).sum::<f64>() / samples.len() as f64;
        let n = samples.len() as f32;
        let mut loss_terms = Vec::with_capacity(samples.len());
        for (decisions, reward, _) in &samples {
            let actions: Vec<f32> = decisions
                .iter()
                .map(|&d| if d { 1.0 } else { 0.0 })
                .collect();
            let ll = tape.bernoulli_log_prob(logits, &actions);
            // Minimise -(r - b)/N * log π.
            let coef = -((reward - baseline) as f32) / n;
            loss_terms.push(tape.scale(ll, coef));
        }
        let mut loss = loss_terms[0];
        for &term in &loss_terms[1..] {
            loss = tape.add(loss, term);
        }
        self.model.params().zero_grad();
        tape.backward(loss);

        // Guard rail (gradient boundary): check the loss value and the
        // accumulated gradient norm before they can reach the optimiser.
        // Both scans are pure reads, so results stay bitwise identical
        // whether or not a fault ever fires.
        let loss_value: f32 = tape.value(loss).data.iter().sum();
        let grad_sq: f64 = self
            .model
            .params()
            .params()
            .iter()
            .map(|p| {
                p.0.borrow()
                    .grad
                    .data
                    .iter()
                    .map(|&g| f64::from(g) * f64::from(g))
                    .sum::<f64>()
            })
            .sum();
        if !loss_value.is_finite() || !grad_sq.is_finite() {
            // Leave no poisoned gradients behind for the next step.
            self.model.params().zero_grad();
            return Err(StepFault {
                kind: FaultKind::NonFiniteGradient,
                sample: None,
                detail: format!("loss {loss_value}, gradient norm² {grad_sq} after backward"),
            });
        }
        if let Some(sc) = scratch {
            // Telemetry-only metrics (the sink is enabled): min/max of the
            // on-policy rewards, the step baseline, mean Bernoulli entropy
            // of the policy, and the global gradient L2 norm. None of this
            // feeds back into the update.
            for (_, reward, guided) in &samples[..opts.on_policy_samples.min(samples.len())] {
                debug_assert!(!*guided);
                sc.reward_min = sc.reward_min.min(*reward);
                sc.reward_max = sc.reward_max.max(*reward);
            }
            sc.baseline_sum += baseline;
            let entropy: f64 = probs
                .iter()
                .map(|&p| {
                    let p = f64::from(p).clamp(1e-12, 1.0 - 1e-12);
                    -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
                })
                .sum::<f64>()
                / probs.len().max(1) as f64;
            sc.entropy_sum += entropy;
            sc.grad_norm_sum += grad_sq.sqrt();
            sc.steps += 1;
        }

        // Under the skip policy a corrupted optimiser step must be
        // undoable without an epoch snapshot, so stash the pre-step state.
        let undo = (opts.fault_policy == FaultPolicy::SkipSample).then(|| {
            let (m, v) = self.model.params().snapshot_moments();
            (self.model.params().snapshot(), m, v, self.adam.steps())
        });
        self.adam.step(self.model.params());

        // Guard rail (Adam-step boundary): a non-finite parameter norm
        // after the update means the model itself is corrupt.
        let param_sq: f64 = self
            .model
            .params()
            .params()
            .iter()
            .map(|p| {
                p.0.borrow()
                    .value
                    .data
                    .iter()
                    .map(|&x| f64::from(x) * f64::from(x))
                    .sum::<f64>()
            })
            .sum();
        if !param_sq.is_finite() {
            if let Some((values, m, v, t)) = undo {
                self.model.params().restore(&values);
                self.model.params().restore_moments(&m, &v);
                self.adam.set_steps(t);
            }
            return Err(StepFault {
                kind: FaultKind::NonFiniteParameters,
                sample: None,
                detail: format!("parameter norm² {param_sq} after the Adam step"),
            });
        }
        drop(backprop_span);

        // Buffer update: keep the top `buffer_capacity` by reward; drop
        // guided samples once an on-policy sample beats them.
        let inst = &mut self.instances[gi];
        for (decisions, reward, guided) in samples.into_iter().filter(|(_, _, g)| !*g) {
            inst.buffer.push(BufferedSample {
                decisions,
                reward,
                guided,
            });
        }
        inst.buffer.sort_by(|a, b| b.reward.total_cmp(&a.reward));
        inst.buffer.dedup_by(|a, b| a.decisions == b.decisions);
        if opts.drop_guided_when_beaten {
            let best_unguided = inst
                .buffer
                .iter()
                .filter(|s| !s.guided)
                .map(|s| s.reward)
                .fold(f64::NEG_INFINITY, f64::max);
            inst.buffer
                .retain(|s| !s.guided || s.reward > best_unguided);
        }
        inst.buffer.truncate(opts.buffer_capacity);

        // A step with every on-policy sample skipped contributes no mean
        // reward (a zero would skew the epoch statistics).
        Ok((n_on_policy > 0 || opts.on_policy_samples == 0).then_some(on_policy_mean))
    }

    /// Mean greedy-decode reward over an evaluation set. Per-graph work
    /// fans out over the rollout engine; the sum reduces in graph order,
    /// so the result does not depend on the worker count.
    pub fn evaluate(&self, graphs: &[StreamGraph]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        let workers = self.options.effective_workers();
        // Borrow the shareable fields individually: capturing `self`
        // would drag the `Rc`-backed model into the worker closures.
        let (policy, placer, cluster) = (&self.policy, &self.placer, &self.cluster);
        let source_rate = self.source_rate;
        // Rates and features are model-free — compute them in parallel.
        let prepared: Vec<(TupleRates, GraphFeatures)> =
            rollout::run_ordered(workers, graphs.len(), |i| {
                let rates = TupleRates::compute(&graphs[i], source_rate);
                let feats = GraphFeatures::extract_with_rates(&graphs[i], cluster, &rates);
                (rates, feats)
            });
        // Forward passes stay on this thread (`Rc`-shared parameters);
        // greedy decoding ignores the RNG, so nothing couples graphs.
        let mut rng = ChaCha8Rng::seed_from_u64(0xEA7_5EED);
        let decoded: Vec<(Vec<f32>, Vec<bool>)> = graphs
            .iter()
            .zip(&prepared)
            .map(|(g, (_, feats))| {
                let probs = self.model.predict_probs_with_features(g, feats);
                let decisions = self.policy.decode(&probs, DecodeMode::Greedy, &mut rng);
                (probs, decisions)
            })
            .collect();
        let rewards = rollout::run_ordered(workers, graphs.len(), |i| {
            rollout_reward(
                policy,
                &graphs[i],
                &prepared[i].0,
                cluster,
                &decoded[i].1,
                &decoded[i].0,
                placer,
            )
        });
        rewards.iter().sum::<f64>() / graphs.len() as f64
    }
}

/// Coarsen with `decisions`, place the coarse graph, lift, simulate.
fn rollout_reward<P: CoarsePlacer>(
    policy: &CoarseningPolicy,
    graph: &StreamGraph,
    rates: &TupleRates,
    cluster: &ClusterSpec,
    decisions: &[bool],
    probs: &[f32],
    placer: &P,
) -> f64 {
    let coarsening = policy.apply(graph, rates, cluster, decisions, probs);
    let coarse_placement = placer.place_coarse(&coarsening.coarse, cluster);
    let placement = Placement::lift(&coarse_placement, &coarsening.node_map);
    spg_sim::reward::relative_throughput_with_rates(graph, cluster, &placement, rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoarsenConfig;
    use crate::pipeline::MetisCoarsePlacer;
    use spg_gen::{DatasetSpec, Setting};

    fn trainer_with(
        n_graphs: usize,
        metis_guided: bool,
        num_workers: usize,
    ) -> ReinforceTrainer<MetisCoarsePlacer> {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let graphs: Vec<StreamGraph> = (0..n_graphs as u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        ReinforceTrainer::builder(model, MetisCoarsePlacer::new(5))
            .graphs(graphs)
            .cluster(cluster)
            .source_rate(spec.source_rate)
            .options(
                TrainOptions::new()
                    .metis_guided(metis_guided)
                    .seed(9)
                    .num_workers(num_workers),
            )
            .build()
    }

    fn trainer(n_graphs: usize, metis_guided: bool) -> ReinforceTrainer<MetisCoarsePlacer> {
        trainer_with(n_graphs, metis_guided, 1)
    }

    #[test]
    fn effective_workers_clamps_to_available_parallelism() {
        let avail = rollout::default_workers();
        assert_eq!(TrainOptions::new().num_workers(0).effective_workers(), 1);
        assert_eq!(TrainOptions::new().num_workers(1).effective_workers(), 1);
        assert_eq!(
            TrainOptions::new()
                .num_workers(usize::MAX)
                .effective_workers(),
            avail,
            "oversubscription must clamp to the core count"
        );
        assert!(TrainOptions::new().effective_workers() <= avail);
    }

    #[test]
    fn epoch_runs_and_rewards_are_unit_interval() {
        let mut t = trainer(3, false);
        let stats = t.train_epoch();
        assert_eq!(stats.steps, 3);
        assert!((0.0..=1.0).contains(&stats.mean_reward), "{stats:?}");
        assert!((0.0..=1.0).contains(&stats.mean_best), "{stats:?}");
    }

    #[test]
    fn metis_guided_seeds_buffers() {
        let t = trainer(2, true);
        for inst in &t.instances {
            assert_eq!(inst.buffer.len(), 1);
            assert!(inst.buffer[0].guided);
            assert!((0.0..=1.0).contains(&inst.buffer[0].reward));
        }
    }

    #[test]
    fn training_improves_mean_best_reward() {
        let mut t = trainer(4, true);
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..5 {
            last = t.train_epoch();
        }
        // The buffer keeps the best sample ever seen per graph, so
        // mean_best is monotone; require it not to regress and training to
        // run without numerical blowups.
        assert!(last.mean_best >= first.mean_best - 1e-9);
        assert!(last.mean_reward.is_finite());
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut t = trainer(2, false);
        for _ in 0..4 {
            t.train_epoch();
        }
        for inst in &t.instances {
            assert!(inst.buffer.len() <= t.options.buffer_capacity);
            // Buffer must be sorted descending by reward.
            for w in inst.buffer.windows(2) {
                assert!(w[0].reward >= w[1].reward);
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut t1 = trainer_with(3, true, 1);
        let mut t4 = trainer_with(3, true, 4);
        for _ in 0..3 {
            let s1 = t1.train_epoch();
            let s4 = t4.train_epoch();
            assert_eq!(s1, s4, "TrainStats diverged between 1 and 4 workers");
        }
        // Buffers must be bitwise identical: same decision vectors, same
        // reward bits, same provenance, in the same order.
        for (a, b) in t1.instances.iter().zip(&t4.instances) {
            assert_eq!(a.buffer.len(), b.buffer.len());
            for (x, y) in a.buffer.iter().zip(&b.buffer) {
                assert_eq!(x.decisions, y.decisions);
                assert_eq!(x.reward.to_bits(), y.reward.to_bits());
                assert_eq!(x.guided, y.guided);
            }
        }
        // Cache bookkeeping is scheduling-independent too.
        assert_eq!(t1.reward_cache().hits(), t4.reward_cache().hits());
        assert_eq!(t1.reward_cache().misses(), t4.reward_cache().misses());
        assert_eq!(t1.reward_cache().entries(), t4.reward_cache().entries());
        // And so is the parallel evaluation pass.
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let test_graphs: Vec<StreamGraph> = (50..54u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        assert_eq!(
            t1.evaluate(&test_graphs).to_bits(),
            t4.evaluate(&test_graphs).to_bits()
        );
    }

    #[test]
    fn repeated_decisions_hit_the_reward_cache() {
        use spg_graph::{Channel, Operator, StreamGraphBuilder};
        // A 2-edge chain admits at most 5 distinct collapse keys
        // ({}, [0], [1], [0,1], [1,0]), so after the first few epochs
        // every sampled vector must already be memoized.
        let mut b = StreamGraphBuilder::new();
        let mut prev = b.add_node(Operator::new(10.0));
        for _ in 1..3 {
            let next = b.add_node(Operator::new(10.0));
            b.add_edge(prev, next, Channel::new(8.0)).unwrap();
            prev = next;
        }
        let g = b.finish().unwrap();
        let cluster = spg_graph::ClusterSpec::new(2, 0.2, 100.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let mut t = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(5))
            .graphs(vec![g])
            .cluster(cluster)
            .source_rate(1e4)
            .options(
                TrainOptions::new()
                    .metis_guided(false)
                    .seed(9)
                    .num_workers(1),
            )
            .build();
        let epochs = 10;
        for _ in 0..epochs {
            t.train_epoch();
        }
        let cache = t.reward_cache();
        let total = (epochs * t.options.on_policy_samples) as u64;
        assert_eq!(cache.hits() + cache.misses(), total);
        assert!(cache.hits() > 0, "no rollout was ever served from cache");
        assert!(cache.entries() <= 5, "entries = {}", cache.entries());
        // A key can be evaluated at most once per batch it is missing in,
        // so distinct entries never exceed simulator invocations.
        assert!(cache.entries() as u64 <= cache.misses());
    }

    #[test]
    fn collapse_key_determines_reward() {
        // The memoization premise: the reward depends on (decisions,
        // probs) only through the collapse key. Two prob vectors with the
        // same induced priority must yield bitwise-equal rewards.
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 0);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let policy = CoarseningPolicy::from_config(&CoarsenConfig::default());
        let placer = MetisCoarsePlacer::new(5);
        let m = g.num_edges();
        let probs_a: Vec<f32> = (0..m).map(|e| 0.9 - e as f32 * (0.8 / m as f32)).collect();
        let probs_b: Vec<f32> = (0..m).map(|e| 0.6 - e as f32 * (0.5 / m as f32)).collect();
        let decisions: Vec<bool> = (0..m).map(|e| e % 3 == 0).collect();
        let ka = rollout::collapse_key(&priority_by_prob(&probs_a), &decisions);
        let kb = rollout::collapse_key(&priority_by_prob(&probs_b), &decisions);
        assert_eq!(ka, kb);
        let ra = rollout_reward(&policy, &g, &rates, &cluster, &decisions, &probs_a, &placer);
        let rb = rollout_reward(&policy, &g, &rates, &cluster, &decisions, &probs_b, &placer);
        assert_eq!(ra.to_bits(), rb.to_bits());
    }

    #[test]
    fn evaluate_returns_unit_interval() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let t = trainer(2, false);
        let test_graphs: Vec<StreamGraph> = (100..103u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let r = t.evaluate(&test_graphs);
        assert!((0.0..=1.0).contains(&r), "r = {r}");
    }
}
