//! REINFORCE training (§III) with a best-sample memory buffer and optional
//! Metis-guided seeding (§IV-C).
//!
//! Per graph and step: one differentiable forward pass produces the edge
//! logits; several on-policy decision vectors are sampled and evaluated by
//! the simulator; buffered historically-best samples (and, early on,
//! Metis-derived samples) are added; the policy gradient
//! `∇J = (1/N) Σ ∇log π(a_n) · (r_n − b)` uses the mean reward of the
//! considered samples as the baseline `b`.

use crate::model::CoarsenModel;
use crate::pipeline::CoarsePlacer;
use crate::policy::{CoarseningPolicy, DecodeMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_graph::{ClusterSpec, GraphFeatures, Placement, StreamGraph, TupleRates};
use spg_nn::{Adam, Tape};

/// Trainer options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// On-policy samples per step (paper: 3).
    pub on_policy_samples: usize,
    /// Buffer samples mixed in per step (paper: up to 3).
    pub buffer_samples: usize,
    /// Historically-best samples kept per graph.
    pub buffer_capacity: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Seed the buffers with Metis-derived collapse decisions (§IV-C).
    pub metis_guided: bool,
    /// Drop Metis-guided samples once an on-policy sample beats them.
    pub drop_guided_when_beaten: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            on_policy_samples: 3,
            buffer_samples: 3,
            buffer_capacity: 3,
            lr: 1e-3,
            metis_guided: true,
            drop_guided_when_beaten: true,
            seed: 0,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean on-policy reward over the epoch.
    pub mean_reward: f64,
    /// Mean best-in-buffer reward over graphs.
    pub mean_best: f64,
    /// Number of policy-gradient steps taken.
    pub steps: usize,
}

/// A buffered sample: decisions, its reward, and whether it came from the
/// Metis guide.
#[derive(Debug, Clone)]
struct BufferedSample {
    decisions: Vec<bool>,
    reward: f64,
    guided: bool,
}

/// Everything precomputed per training graph.
struct Instance {
    graph: StreamGraph,
    rates: TupleRates,
    feats: GraphFeatures,
    buffer: Vec<BufferedSample>,
}

/// The REINFORCE trainer. Owns the model during training.
pub struct ReinforceTrainer<P: CoarsePlacer> {
    /// The model being trained.
    pub model: CoarsenModel,
    /// Placement backend used inside the reward rollout.
    pub placer: P,
    /// Options.
    pub options: TrainOptions,
    policy: CoarseningPolicy,
    adam: Adam,
    instances: Vec<Instance>,
    cluster: ClusterSpec,
    source_rate: f64,
    rng: ChaCha8Rng,
}

impl<P: CoarsePlacer> ReinforceTrainer<P> {
    /// Prepare a trainer over `graphs`. Precomputes rates/features and, if
    /// configured, Metis-guided buffer seeds.
    pub fn new(
        model: CoarsenModel,
        placer: P,
        graphs: Vec<StreamGraph>,
        cluster: ClusterSpec,
        source_rate: f64,
        options: TrainOptions,
    ) -> Self {
        let policy = CoarseningPolicy::from_config(&model.config);
        let adam = Adam::new(options.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(options.seed);

        let mut instances: Vec<Instance> = graphs
            .into_iter()
            .map(|graph| {
                let rates = TupleRates::compute(&graph, source_rate);
                let feats = GraphFeatures::extract_with_rates(&graph, &cluster, &rates);
                Instance {
                    graph,
                    rates,
                    feats,
                    buffer: Vec::new(),
                }
            })
            .collect();

        if options.metis_guided {
            let metis = spg_partition::MetisAllocator::new(options.seed ^ 0xC0FFEE);
            for inst in &mut instances {
                let placement =
                    spg_graph::Allocator::allocate(&metis, &inst.graph, &cluster, source_rate);
                let decisions = spg_partition::guided::infer_collapsed_edges(
                    &inst.graph,
                    &inst.rates,
                    placement.as_slice(),
                );
                // Reward of replaying the guided decisions through our own
                // pipeline (not of the raw Metis placement) — that is what
                // the policy is asked to imitate.
                let probs = vec![0.5f32; decisions.len()];
                let reward = rollout_reward(
                    &policy,
                    &inst.graph,
                    &inst.rates,
                    &inst.feats,
                    &cluster,
                    source_rate,
                    &decisions,
                    &probs,
                    &placer,
                );
                inst.buffer.push(BufferedSample {
                    decisions,
                    reward,
                    guided: true,
                });
            }
        }

        // Fresh rng stream decoupled from seeding above.
        rng.set_word_pos(1 << 20);

        Self {
            model,
            placer,
            options,
            policy,
            adam,
            instances,
            cluster,
            source_rate,
            rng,
        }
    }

    /// Number of training graphs.
    pub fn num_graphs(&self) -> usize {
        self.instances.len()
    }

    /// Run one epoch (one policy-gradient step per graph).
    pub fn train_epoch(&mut self) -> TrainStats {
        let mut sum_reward = 0.0;
        let mut n_rewards = 0usize;
        let mut steps = 0usize;

        for gi in 0..self.instances.len() {
            if let Some(mean_r) = self.step(gi) {
                sum_reward += mean_r;
                n_rewards += 1;
                steps += 1;
            }
        }

        let mean_best = if self.instances.is_empty() {
            0.0
        } else {
            self.instances
                .iter()
                .map(|i| i.buffer.iter().map(|s| s.reward).fold(0.0, f64::max))
                .sum::<f64>()
                / self.instances.len() as f64
        };

        TrainStats {
            mean_reward: if n_rewards > 0 {
                sum_reward / n_rewards as f64
            } else {
                0.0
            },
            mean_best,
            steps,
        }
    }

    /// One policy-gradient step on graph `gi`. Returns the mean on-policy
    /// reward, or `None` if the graph has no edges.
    fn step(&mut self, gi: usize) -> Option<f64> {
        let opts = self.options.clone();

        // Forward pass (kept for the gradient).
        let mut tape = Tape::new();
        let (logits, probs) = {
            let inst = &self.instances[gi];
            let logits = self.model.forward(&mut tape, &inst.graph, &inst.feats)?;
            let probs: Vec<f32> = tape
                .value(logits)
                .data
                .iter()
                .map(|&z| crate::model::sigmoid(z))
                .collect();
            (logits, probs)
        };

        // On-policy rollouts.
        let mut samples: Vec<(Vec<bool>, f64, bool)> = Vec::new();
        let mut on_policy_sum = 0.0;
        for _ in 0..opts.on_policy_samples {
            let decisions = self
                .policy
                .decode(&probs, DecodeMode::Sample, &mut self.rng);
            let inst = &self.instances[gi];
            let reward = rollout_reward(
                &self.policy,
                &inst.graph,
                &inst.rates,
                &inst.feats,
                &self.cluster,
                self.source_rate,
                &decisions,
                &probs,
                &self.placer,
            );
            on_policy_sum += reward;
            samples.push((decisions, reward, false));
        }
        let on_policy_mean = on_policy_sum / opts.on_policy_samples.max(1) as f64;

        // Mix in buffered best samples.
        {
            let inst = &self.instances[gi];
            for s in inst.buffer.iter().take(opts.buffer_samples) {
                samples.push((s.decisions.clone(), s.reward, s.guided));
            }
        }

        // Policy gradient with mean-reward baseline.
        let baseline: f64 = samples.iter().map(|(_, r, _)| *r).sum::<f64>() / samples.len() as f64;
        let n = samples.len() as f32;
        let mut loss_terms = Vec::with_capacity(samples.len());
        for (decisions, reward, _) in &samples {
            let actions: Vec<f32> = decisions
                .iter()
                .map(|&d| if d { 1.0 } else { 0.0 })
                .collect();
            let ll = tape.bernoulli_log_prob(logits, &actions);
            // Minimise -(r - b)/N * log π.
            let coef = -((reward - baseline) as f32) / n;
            loss_terms.push(tape.scale(ll, coef));
        }
        let mut loss = loss_terms[0];
        for &term in &loss_terms[1..] {
            loss = tape.add(loss, term);
        }
        self.model.params().zero_grad();
        tape.backward(loss);
        self.adam.step(self.model.params());

        // Buffer update: keep the top `buffer_capacity` by reward; drop
        // guided samples once an on-policy sample beats them.
        let inst = &mut self.instances[gi];
        for (decisions, reward, guided) in samples.into_iter().filter(|(_, _, g)| !*g) {
            inst.buffer.push(BufferedSample {
                decisions,
                reward,
                guided,
            });
        }
        inst.buffer.sort_by(|a, b| b.reward.total_cmp(&a.reward));
        inst.buffer.dedup_by(|a, b| a.decisions == b.decisions);
        if opts.drop_guided_when_beaten {
            let best_unguided = inst
                .buffer
                .iter()
                .filter(|s| !s.guided)
                .map(|s| s.reward)
                .fold(f64::NEG_INFINITY, f64::max);
            inst.buffer
                .retain(|s| !s.guided || s.reward > best_unguided);
        }
        inst.buffer.truncate(opts.buffer_capacity);

        Some(on_policy_mean)
    }

    /// Mean greedy-decode reward over an evaluation set.
    pub fn evaluate(&self, graphs: &[StreamGraph]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(0xEA7_5EED);
        let sum: f64 = graphs
            .iter()
            .map(|g| {
                let rates = TupleRates::compute(g, self.source_rate);
                let feats = GraphFeatures::extract_with_rates(g, &self.cluster, &rates);
                let probs = self.model.predict_probs_with_features(g, &feats);
                let decisions = self.policy.decode(&probs, DecodeMode::Greedy, &mut rng);
                rollout_reward(
                    &self.policy,
                    g,
                    &rates,
                    &feats,
                    &self.cluster,
                    self.source_rate,
                    &decisions,
                    &probs,
                    &self.placer,
                )
            })
            .sum();
        sum / graphs.len() as f64
    }

    /// Consume the trainer, returning the trained model.
    pub fn into_model(self) -> CoarsenModel {
        self.model
    }
}

/// Coarsen with `decisions`, place the coarse graph, lift, simulate.
#[allow(clippy::too_many_arguments)]
fn rollout_reward<P: CoarsePlacer>(
    policy: &CoarseningPolicy,
    graph: &StreamGraph,
    rates: &TupleRates,
    _feats: &GraphFeatures,
    cluster: &ClusterSpec,
    source_rate: f64,
    decisions: &[bool],
    probs: &[f32],
    placer: &P,
) -> f64 {
    let coarsening = policy.apply(graph, rates, cluster, decisions, probs);
    let coarse_placement = placer.place_coarse(&coarsening.coarse, cluster);
    let placement = Placement::lift(&coarse_placement, &coarsening.node_map);
    let _ = source_rate;
    spg_sim::reward::relative_throughput_with_rates(graph, cluster, &placement, rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoarsenConfig;
    use crate::pipeline::MetisCoarsePlacer;
    use spg_gen::{DatasetSpec, Setting};

    fn trainer(n_graphs: usize, metis_guided: bool) -> ReinforceTrainer<MetisCoarsePlacer> {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let graphs: Vec<StreamGraph> = (0..n_graphs as u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        ReinforceTrainer::new(
            model,
            MetisCoarsePlacer::new(5),
            graphs,
            cluster,
            spec.source_rate,
            TrainOptions {
                metis_guided,
                seed: 9,
                ..Default::default()
            },
        )
    }

    #[test]
    fn epoch_runs_and_rewards_are_unit_interval() {
        let mut t = trainer(3, false);
        let stats = t.train_epoch();
        assert_eq!(stats.steps, 3);
        assert!((0.0..=1.0).contains(&stats.mean_reward), "{stats:?}");
        assert!((0.0..=1.0).contains(&stats.mean_best), "{stats:?}");
    }

    #[test]
    fn metis_guided_seeds_buffers() {
        let t = trainer(2, true);
        for inst in &t.instances {
            assert_eq!(inst.buffer.len(), 1);
            assert!(inst.buffer[0].guided);
            assert!((0.0..=1.0).contains(&inst.buffer[0].reward));
        }
    }

    #[test]
    fn training_improves_mean_best_reward() {
        let mut t = trainer(4, true);
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..5 {
            last = t.train_epoch();
        }
        // The buffer keeps the best sample ever seen per graph, so
        // mean_best is monotone; require it not to regress and training to
        // run without numerical blowups.
        assert!(last.mean_best >= first.mean_best - 1e-9);
        assert!(last.mean_reward.is_finite());
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut t = trainer(2, false);
        for _ in 0..4 {
            t.train_epoch();
        }
        for inst in &t.instances {
            assert!(inst.buffer.len() <= t.options.buffer_capacity);
            // Buffer must be sorted descending by reward.
            for w in inst.buffer.windows(2) {
                assert!(w[0].reward >= w[1].reward);
            }
        }
    }

    #[test]
    fn evaluate_returns_unit_interval() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let t = trainer(2, false);
        let test_graphs: Vec<StreamGraph> = (100..103u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let r = t.evaluate(&test_graphs);
        assert!((0.0..=1.0).contains(&r), "r = {r}");
    }
}
