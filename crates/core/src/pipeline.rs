//! The coarsening-partitioning pipeline (§III, Fig. 2): coarsen with the
//! learned model, place the coarse graph with an existing partitioner, lift
//! the placement back.

use crate::model::CoarsenModel;
use crate::policy::{CoarseningPolicy, DecodeMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_graph::{
    Allocator, ClusterSpec, CoarseGraph, Coarsening, GraphFeatures, Placement, StreamGraph,
    TupleRates,
};
use spg_partition::{kway_partition, PartitionConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Places a coarse graph onto devices — the `M` of the paper's framework.
/// Metis and the learned Graph-enc-dec baseline both implement this.
/// (Not `Send`/`Sync`: learned placers hold `Rc`-shared parameters.)
pub trait CoarsePlacer {
    /// Assign each coarse node to a device in `0..cluster.devices`.
    fn place_coarse(&self, coarse: &CoarseGraph, cluster: &ClusterSpec) -> Placement;

    /// Name for experiment tables.
    fn placer_name(&self) -> &str;
}

/// Metis-style multilevel partitioning of the coarse graph.
#[derive(Debug)]
pub struct MetisCoarsePlacer {
    /// Partitioner tuning.
    pub config: PartitionConfig,
    seed: AtomicU64,
}

impl MetisCoarsePlacer {
    /// Placer with a deterministic seed stream.
    pub fn new(seed: u64) -> Self {
        Self {
            config: PartitionConfig::default(),
            seed: AtomicU64::new(seed),
        }
    }
}

impl Clone for MetisCoarsePlacer {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            seed: AtomicU64::new(self.seed.load(Ordering::Relaxed)),
        }
    }
}

impl CoarsePlacer for MetisCoarsePlacer {
    fn place_coarse(&self, coarse: &CoarseGraph, cluster: &ClusterSpec) -> Placement {
        let w = coarse.to_weighted();
        let k = cluster.devices.min(coarse.num_nodes().max(1));
        // Seed from the coarse graph's content instead of a call counter:
        // identical coarsenings then get identical placements and rewards,
        // which removes a large variance term from the policy gradient and
        // keeps buffered sample rewards valid across steps.
        let base = self.seed.load(Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(base ^ fingerprint(coarse));
        Placement::new(kway_partition(&w, k, &self.config, &mut rng))
    }

    fn placer_name(&self) -> &str {
        "Metis"
    }
}

/// Cheap content fingerprint of a coarse graph (FNV-1a over its shape and
/// quantised weights).
fn fingerprint(coarse: &CoarseGraph) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(coarse.num_nodes() as u64);
    mix(coarse.num_edges() as u64);
    for &c in &coarse.node_cpu {
        mix(c.to_bits());
    }
    for (&(a, b), &t) in coarse.edges.iter().zip(&coarse.edge_traffic) {
        mix(((a as u64) << 32) | b as u64);
        mix(t.to_bits());
    }
    h
}

/// The full Coarsen+`M` allocator.
pub struct CoarsenAllocator<P: CoarsePlacer> {
    /// The trained coarsening model.
    pub model: CoarsenModel,
    /// The partitioning model `M`.
    pub placer: P,
    /// Decision decoding (greedy for deployment).
    pub mode: DecodeMode,
    /// When > 0, evaluate this many candidate coarsenings (greedy +
    /// samples + identity) in the simulator and keep the best.
    pub best_of: usize,
    name: String,
    seed: AtomicU64,
}

impl<P: CoarsePlacer> CoarsenAllocator<P> {
    /// Deployment allocator: greedy decoding.
    pub fn new(model: CoarsenModel, placer: P) -> Self {
        let name = format!("Coarsen+{}", placer.placer_name());
        Self {
            model,
            placer,
            mode: DecodeMode::Greedy,
            best_of: 0,
            name,
            seed: AtomicU64::new(7),
        }
    }

    /// Enable best-of-N inference: decode the greedy coarsening, `n - 2`
    /// sampled ones and the identity coarsening, place each, and keep the
    /// placement with the best simulated throughput. The analytic
    /// simulator costs microseconds, so this is cheap insurance in
    /// deployment (the identity candidate makes the allocator no worse
    /// than its placer alone). The paper's evaluation uses plain greedy
    /// decoding; benches keep `best_of = 0`.
    pub fn with_best_of(mut self, n: usize) -> Self {
        self.best_of = n;
        self
    }

    /// Coarsen `graph` with the model (no placement).
    pub fn coarsen(
        &self,
        graph: &StreamGraph,
        cluster: &ClusterSpec,
        source_rate: f64,
    ) -> Coarsening {
        let rates = TupleRates::compute(graph, source_rate);
        let feats = GraphFeatures::extract_with_rates(graph, cluster, &rates);
        let probs = self.model.predict_probs_with_features(graph, &feats);
        let policy = CoarseningPolicy::from_config(&self.model.config);
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let decisions = policy.decode(&probs, self.mode, &mut rng);
        policy.apply(graph, &rates, cluster, &decisions, &probs)
    }
}

impl<P: CoarsePlacer> CoarsenAllocator<P> {
    fn place(&self, coarsening: &Coarsening, cluster: &ClusterSpec) -> Placement {
        let coarse_placement = self.placer.place_coarse(&coarsening.coarse, cluster);
        Placement::lift(&coarse_placement, &coarsening.node_map)
    }
}

impl<P: CoarsePlacer> Allocator for CoarsenAllocator<P> {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        if self.best_of == 0 {
            let coarsening = self.coarsen(graph, cluster, source_rate);
            return self.place(&coarsening, cluster);
        }

        // Best-of-N: greedy + sampled + identity candidates, scored by the
        // analytic simulator.
        let rates = TupleRates::compute(graph, source_rate);
        let feats = GraphFeatures::extract_with_rates(graph, cluster, &rates);
        let probs = self.model.predict_probs_with_features(graph, &feats);
        let policy = CoarseningPolicy::from_config(&self.model.config);
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut candidates: Vec<Coarsening> = Vec::with_capacity(self.best_of);
        let greedy = policy.decode(&probs, DecodeMode::Greedy, &mut rng);
        candidates.push(policy.apply(graph, &rates, cluster, &greedy, &probs));
        candidates.push(Coarsening::identity(graph, &rates));
        while candidates.len() < self.best_of {
            let sampled = policy.decode(&probs, DecodeMode::Sample, &mut rng);
            candidates.push(policy.apply(graph, &rates, cluster, &sampled, &probs));
        }

        let mut best: Option<(f64, Placement)> = None;
        for c in &candidates {
            let placement = self.place(c, cluster);
            let r =
                spg_sim::reward::relative_throughput_with_rates(graph, cluster, &placement, &rates);
            if best.as_ref().is_none_or(|(br, _)| r > *br) {
                best = Some((r, placement));
            }
        }
        best.expect("at least one candidate").1
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Coarsen+Metis-oracle (Table I / Fig. 7): coarsen with the model, then
/// sweep the number of parts `k = 1..=D` on the coarse graph, simulate the
/// *lifted* placement for each, and keep the best — the coarsening
/// counterpart of [`spg_partition::MetisOracle`]. This is what lets the
/// framework pick the right device subset in the excess-device setting.
pub struct CoarsenOracleAllocator {
    /// The trained coarsening model.
    pub model: CoarsenModel,
    /// Partitioner tuning for the per-k partitions.
    pub config: PartitionConfig,
    seed: AtomicU64,
}

impl CoarsenOracleAllocator {
    /// Oracle allocator with a deterministic seed stream.
    pub fn new(model: CoarsenModel, seed: u64) -> Self {
        Self {
            model,
            config: PartitionConfig::default(),
            seed: AtomicU64::new(seed),
        }
    }
}

impl Allocator for CoarsenOracleAllocator {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let rates = TupleRates::compute(graph, source_rate);
        let feats = GraphFeatures::extract_with_rates(graph, cluster, &rates);
        let probs = self.model.predict_probs_with_features(graph, &feats);
        let policy = CoarseningPolicy::from_config(&self.model.config);
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let decisions = policy.decode(&probs, DecodeMode::Greedy, &mut rng);
        let coarsening = policy.apply(graph, &rates, cluster, &decisions, &probs);

        let w = coarsening.coarse.to_weighted();
        let mut best: Option<(f64, Placement)> = None;
        for k in 1..=cluster.devices.min(coarsening.coarse.num_nodes()) {
            let part = kway_partition(&w, k, &self.config, &mut rng);
            let lifted = Placement::lift(&Placement::new(part), &coarsening.node_map);
            let r =
                spg_sim::reward::relative_throughput_with_rates(graph, cluster, &lifted, &rates);
            if best.as_ref().is_none_or(|(br, _)| r > *br) {
                best = Some((r, lifted));
            }
        }
        best.expect("at least one k").1
    }

    fn name(&self) -> &str {
        "Coarsen+Metis-oracle"
    }
}

/// Coarsen-only ablation (Table II): merge down to the device count with
/// the model alone; every coarse node gets its own device.
pub struct CoarsenOnlyAllocator {
    /// The trained coarsening model.
    pub model: CoarsenModel,
}

impl Allocator for CoarsenOnlyAllocator {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let rates = TupleRates::compute(graph, source_rate);
        let feats = GraphFeatures::extract_with_rates(graph, cluster, &rates);
        let probs = self.model.predict_probs_with_features(graph, &feats);
        let policy = CoarseningPolicy::from_config(&self.model.config);
        let coarsening = policy.coarsen_only(graph, &rates, cluster, &probs);
        // One device per coarse node. Disconnected graphs can end with
        // more groups than devices even after merging every edge; wrap
        // those round-robin.
        let d = cluster.devices as u32;
        let coarse_placement = Placement::new(
            (0..coarsening.coarse.num_nodes() as u32)
                .map(|i| i % d)
                .collect::<Vec<_>>(),
        );
        Placement::lift(&coarse_placement, &coarsening.node_map)
    }

    fn name(&self) -> &str {
        "Coarsen-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoarsenConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spg_gen::{DatasetSpec, Setting};

    #[test]
    fn pipeline_produces_valid_placements() {
        let spec = DatasetSpec::scaled_down(Setting::Medium);
        let cluster = spec.cluster();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let alloc = CoarsenAllocator::new(model, MetisCoarsePlacer::new(1));
        for seed in 0..4 {
            let g = spg_gen::generate_graph(&spec, seed);
            let p = alloc.allocate(&g, &cluster, spec.source_rate);
            assert!(
                p.validate(&g, cluster.devices),
                "invalid placement (seed {seed})"
            );
            let r = spg_sim::relative_throughput(&g, &cluster, &p, spec.source_rate);
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn lifted_placement_matches_coarse_groups() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let alloc = CoarsenAllocator::new(model, MetisCoarsePlacer::new(2));
        let g = spg_gen::generate_graph(&spec, 0);
        let coarsening = alloc.coarsen(&g, &cluster, spec.source_rate);
        let coarse_placement = alloc.placer.place_coarse(&coarsening.coarse, &cluster);
        let lifted = Placement::lift(&coarse_placement, &coarsening.node_map);
        // Nodes in the same coarse group share a device.
        for v in 0..g.num_nodes() {
            for u in 0..g.num_nodes() {
                if coarsening.node_map[v] == coarsening.node_map[u] {
                    assert_eq!(lifted.device(v), lifted.device(u));
                }
            }
        }
    }

    #[test]
    fn oracle_allocator_at_least_matches_fixed_k() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let fixed = CoarsenAllocator::new(model.clone(), MetisCoarsePlacer::new(9));
        let oracle = CoarsenOracleAllocator::new(model, 9);
        let mut wins = 0;
        let n = 4;
        for seed in 0..n {
            let g = spg_gen::generate_graph(&spec, seed);
            let rf = spg_sim::relative_throughput(
                &g,
                &cluster,
                &fixed.allocate(&g, &cluster, spec.source_rate),
                spec.source_rate,
            );
            let ro = spg_sim::relative_throughput(
                &g,
                &cluster,
                &oracle.allocate(&g, &cluster, spec.source_rate),
                spec.source_rate,
            );
            if ro >= rf - 1e-9 {
                wins += 1;
            }
        }
        assert!(wins >= n - 1, "oracle won only {wins}/{n} against fixed k");
    }

    #[test]
    fn coarsen_only_uses_at_most_device_count() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let alloc = CoarsenOnlyAllocator { model };
        let g = spg_gen::generate_graph(&spec, 3);
        let p = alloc.allocate(&g, &cluster, spec.source_rate);
        assert!(p.devices_used() <= cluster.devices);
        assert!(p.validate(&g, cluster.devices));
    }
}
