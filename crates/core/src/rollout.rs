//! Deterministic parallel rollout engine and reward memoization.
//!
//! REINFORCE training spends almost all of its wall-clock time in
//! rollouts — decode a decision vector, contract the graph, place the
//! coarse graph, simulate. The rollouts of one policy-gradient step (and
//! the graphs of one evaluation pass) are independent, so they fan out
//! over a scoped worker pool here. Two invariants keep the parallel path
//! **bitwise identical** to the sequential one:
//!
//! * **Seed-per-sample**: the master RNG pre-draws one `u64` seed per
//!   sample *before* the batch starts. Each sample decodes from its own
//!   `ChaCha8Rng::seed_from_u64(seed)`, so its stream is a pure function
//!   of its index no matter which worker (or how many workers) runs it,
//!   and the master RNG advances identically either way.
//! * **Ordered reduction**: every job writes into its own slot and the
//!   results are consumed in job order, so downstream floating-point
//!   accumulation sees the same operand sequence regardless of
//!   scheduling.
//!
//! [`run_ordered`] with `num_workers <= 1` is a plain sequential loop
//! over the same closures, which makes the equivalence trivial to state:
//! both paths evaluate the identical pure function at every index.
//!
//! The [`RewardCache`] exploits that a rollout's reward is a pure
//! function of its *collapse key* — the accepted edges in
//! descending-probability order: [`crate::policy::CoarseningPolicy::apply`]
//! consumes the probabilities only through that priority, and
//! [`crate::pipeline::MetisCoarsePlacer`] seeds its placement RNG from
//! the coarse graph's content fingerprint. Repeated decision vectors
//! (converging policies, buffer replays) therefore skip the simulator
//! entirely.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluate `f(0), ..., f(n_jobs - 1)` and return the results in index
/// order. With `num_workers <= 1` (or a single job) this is a plain
/// sequential map; otherwise jobs are pulled from a shared counter by a
/// scoped worker pool and written into per-index slots, so the output —
/// and any reduction over it — is independent of scheduling.
pub fn run_ordered<T, F>(num_workers: usize, n_jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_workers <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..num_workers.min(n_jobs) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let r = f(i);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("rollout worker panicked");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every job ran"))
        .collect()
}

/// [`run_ordered`] with per-job panic isolation: job `i`'s panic becomes
/// `Err(message)` in slot `i` instead of unwinding through the pool, so
/// one poisoned sample cannot take down the epoch and the ordered
/// deterministic reduction over the surviving slots is preserved (the
/// catch wraps the closure itself, so the sequential and parallel paths
/// degrade identically).
pub fn run_ordered_catching<T, F>(num_workers: usize, n_jobs: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_ordered(num_workers, n_jobs, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(panic_message)
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Canonical memoization key of a rollout: the accepted (collapsed)
/// edges in the order [`crate::policy::CoarseningPolicy::apply`] applies
/// them. Two (decisions, probs) pairs with equal keys produce the same
/// coarsening and — under a content-seeded placer — the same reward.
pub type CollapseKey = Vec<u32>;

/// Build the [`CollapseKey`] for a decision vector under a priority
/// order (see [`crate::policy::priority_by_prob`]).
pub fn collapse_key(priority: &[u32], decisions: &[bool]) -> CollapseKey {
    priority
        .iter()
        .copied()
        .filter(|&e| decisions[e as usize])
        .collect()
}

/// The result of one rollout job: what was decoded, its memo key, the
/// reward, and whether the simulator was skipped.
#[derive(Debug, Clone)]
pub struct RolloutOutcome {
    /// The decoded decision vector.
    pub decisions: Vec<bool>,
    /// Memo key of the decisions under the step's priority order.
    pub key: CollapseKey,
    /// Relative-throughput reward.
    pub reward: f64,
    /// True if the reward came from the cache (simulator skipped).
    pub cached: bool,
}

/// Per-graph memoization of rollout rewards, keyed by [`CollapseKey`].
///
/// Workers read an immutable per-graph snapshot during a batch
/// ([`RewardCache::graph`]); the trainer inserts misses afterwards in
/// sample order, so cache contents — like everything else on the rollout
/// path — do not depend on the worker count. Keys are only meaningful
/// for the graph they were computed on; replacing a training graph
/// requires [`RewardCache::invalidate`] for its slot.
#[derive(Debug, Default)]
pub struct RewardCache {
    maps: Vec<HashMap<CollapseKey, f64>>,
    hits: u64,
    misses: u64,
}

impl RewardCache {
    /// Empty cache with one slot per training graph.
    pub fn new(num_graphs: usize) -> Self {
        Self {
            maps: (0..num_graphs).map(|_| HashMap::new()).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Read-only snapshot of graph `gi`'s memo map (shareable across
    /// workers for the duration of a batch).
    pub fn graph(&self, gi: usize) -> &HashMap<CollapseKey, f64> {
        &self.maps[gi]
    }

    /// Record a computed reward for graph `gi`.
    pub fn insert(&mut self, gi: usize, key: CollapseKey, reward: f64) {
        self.maps[gi].insert(key, reward);
    }

    /// Count one lookup.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Lookups served from the cache (simulator skipped).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh rollout.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total memoized rewards across graphs.
    pub fn entries(&self) -> usize {
        self.maps.iter().map(|m| m.len()).sum()
    }

    /// Drop every memoized reward for graph `gi` (required if the graph
    /// at that slot is replaced — keys do not transfer between graphs).
    pub fn invalidate(&mut self, gi: usize) {
        self.maps[gi].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_is_worker_count_invariant() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) as f64;
        let seq = run_ordered(1, 100, f);
        for workers in [2, 4, 7] {
            let par = run_ordered(workers, 100, f);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_single() {
        assert!(run_ordered(4, 0, |i| i).is_empty());
        assert_eq!(run_ordered(4, 1, |i| i), vec![0]);
    }

    #[test]
    fn run_ordered_catching_isolates_panics_per_job() {
        // Suppress the default panic hook's stderr spam for the
        // intentional panics below.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let f = |i: usize| {
            if i.is_multiple_of(3) {
                panic!("boom at {i}");
            }
            i * 10
        };
        let seq = run_ordered_catching(1, 10, f);
        let par = run_ordered_catching(4, 10, f);
        std::panic::set_hook(prev);
        assert_eq!(seq, par, "panic isolation must stay scheduling-invariant");
        assert_eq!(seq[0], Err("boom at 0".to_string()));
        assert_eq!(seq[1], Ok(10));
        assert_eq!(seq.iter().filter(|r| r.is_err()).count(), 4);
    }

    #[test]
    fn collapse_key_filters_in_priority_order() {
        let priority = [2u32, 0, 3, 1];
        let decisions = [true, true, false, true];
        assert_eq!(collapse_key(&priority, &decisions), vec![0, 3, 1]);
        assert_eq!(collapse_key(&priority, &[false; 4]), Vec::<u32>::new());
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut c = RewardCache::new(2);
        assert!(c.graph(0).get(&vec![1, 2]).is_none());
        c.record(false);
        c.insert(0, vec![1, 2], 0.5);
        assert_eq!(c.graph(0).get(&vec![1, 2]), Some(&0.5));
        c.record(true);
        // Same key on another graph is independent.
        assert!(c.graph(1).get(&vec![1, 2]).is_none());
        assert_eq!((c.hits(), c.misses(), c.entries()), (1, 1, 1));
        c.invalidate(0);
        assert_eq!(c.entries(), 0);
    }
}
