//! The complete coarsening model: encoder + collapse head.

use crate::collapse::CollapseHead;
use crate::config::CoarsenConfig;
use crate::encoder::EdgeAwareGnn;
use crate::infer::{BatchUnion, InferenceScratch};
use rand::Rng;
use spg_graph::{ClusterSpec, GraphFeatures, StreamGraph};
use spg_nn::{ParamSet, Tape, Var};

/// The edge-collapsing coarsening model (§IV).
#[derive(Debug, Clone)]
pub struct CoarsenModel {
    /// Hyperparameters (kept for checkpointing / ablation bookkeeping).
    pub config: CoarsenConfig,
    pub(crate) encoder: EdgeAwareGnn,
    pub(crate) head: CollapseHead,
    params: ParamSet,
}

impl CoarsenModel {
    /// Fresh model with Xavier-initialised weights.
    pub fn new<R: Rng>(config: CoarsenConfig, rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let encoder = EdgeAwareGnn::new(&config, &mut params, rng);
        let head = CollapseHead::new(&config, encoder.output_dim(), &mut params, rng);
        Self {
            config,
            encoder,
            head,
            params,
        }
    }

    /// The model's trainable parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Differentiable forward pass: per-edge collapse logits (`[E x 1]`).
    /// Returns `None` for edgeless graphs (nothing to collapse).
    pub fn forward(&self, t: &mut Tape, graph: &StreamGraph, feats: &GraphFeatures) -> Option<Var> {
        if graph.num_edges() == 0 {
            return None;
        }
        let view = graph.topo_view();
        let h = self.encoder.encode(t, &view, feats);
        Some(self.head.logits(t, &view, feats, h))
    }

    /// Inference-only collapse probabilities per edge.
    pub fn predict_probs(
        &self,
        graph: &StreamGraph,
        cluster: &ClusterSpec,
        source_rate: f64,
    ) -> Vec<f32> {
        let feats = GraphFeatures::extract(graph, cluster, source_rate);
        self.predict_probs_with_features(graph, &feats)
    }

    /// Inference-only probabilities reusing extracted features. Runs the
    /// tape-free forward (see [`crate::infer`]), which is pinned bitwise
    /// identical to the tape path by the `tests/infer.rs` corpus.
    pub fn predict_probs_with_features(
        &self,
        graph: &StreamGraph,
        feats: &GraphFeatures,
    ) -> Vec<f32> {
        let mut scratch = InferenceScratch::new();
        self.infer_probs(graph, feats, &mut scratch)
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Inference-only probabilities for many graphs in **one** forward
    /// pass, returned in input order.
    ///
    /// The batch is encoded as a disjoint union: node features are
    /// concatenated and edge endpoints offset by each graph's node base.
    /// Every op on the inference path is row-wise or segment-wise
    /// (gathers, per-row linears, per-destination mean pooling), and a
    /// union never mixes segments across graphs, so each graph's
    /// probabilities are **bitwise identical** to a solo
    /// [`Self::predict_probs_with_features`] call — batching is purely a
    /// throughput optimisation (one weight traversal).
    ///
    /// Edgeless graphs are excluded from the union (their solo pass
    /// early-returns before message passing, which a union would not
    /// replicate) and simply get an empty probability vector.
    ///
    /// This is a convenience wrapper over
    /// [`Self::predict_probs_batch_with`], which additionally reuses the
    /// union builder and scratch arena across calls (the serve batcher
    /// holds both).
    pub fn predict_probs_batch(&self, items: &[(&StreamGraph, &GraphFeatures)]) -> Vec<Vec<f32>> {
        let mut union = BatchUnion::new();
        let mut scratch = InferenceScratch::new();
        self.predict_probs_batch_with(&mut union, &mut scratch, None, items)
    }
}

/// The numerically stable sigmoid shared with the tape ops (identical
/// bits between training-forward probabilities and inference).
pub(crate) use spg_nn::stable_sigmoid as sigmoid;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    fn tiny() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        b.add_edge(a, c, Channel::new(10.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn probabilities_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let probs = model.predict_probs(&tiny(), &ClusterSpec::paper_medium(4), 1e4);
        assert_eq!(probs.len(), 1);
        assert!(probs
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p) && p.is_finite()));
    }

    #[test]
    fn edgeless_graph_gives_empty_probs() {
        let mut b = StreamGraphBuilder::new();
        b.add_node(Operator::new(1.0));
        let g = b.finish().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        assert!(model
            .predict_probs(&g, &ClusterSpec::paper_medium(2), 1e4)
            .is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let m1 = CoarsenModel::new(CoarsenConfig::default(), &mut r1);
        let m2 = CoarsenModel::new(CoarsenConfig::default(), &mut r2);
        let g = tiny();
        let c = ClusterSpec::paper_medium(4);
        assert_eq!(m1.predict_probs(&g, &c, 1e4), m2.predict_probs(&g, &c, 1e4));
    }

    #[test]
    fn batched_probs_are_bitwise_identical_to_solo() {
        use spg_gen::{DatasetSpec, Setting};
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();

        let mut edgeless = StreamGraphBuilder::new();
        edgeless.add_node(Operator::new(1.0));
        let graphs = [
            spg_gen::generate_graph(&spec, 0),
            edgeless.finish().unwrap(),
            spg_gen::generate_graph(&spec, 1),
            tiny(),
        ];
        let feats: Vec<_> = graphs
            .iter()
            .map(|g| spg_graph::GraphFeatures::extract(g, &cluster, spec.source_rate))
            .collect();
        let items: Vec<(&StreamGraph, &spg_graph::GraphFeatures)> =
            graphs.iter().zip(&feats).collect();

        let batched = model.predict_probs_batch(&items);
        assert_eq!(batched.len(), graphs.len());
        for (i, (g, f)) in items.iter().enumerate() {
            let solo = model.predict_probs_with_features(g, f);
            assert_eq!(solo.len(), g.num_edges());
            assert_eq!(
                solo.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                batched[i].iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "graph {i}: batched probs must be bitwise identical to solo"
            );
        }
        assert!(batched[1].is_empty(), "edgeless graph gets empty probs");
    }

    #[test]
    fn has_plausible_parameter_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let n = model.num_parameters();
        assert!(n > 1_000 && n < 1_000_000, "param count {n}");
    }
}
