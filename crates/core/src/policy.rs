//! Turning per-edge collapse probabilities into coarsenings.

use crate::config::CoarsenConfig;
use rand::Rng;
use spg_graph::unionfind::UnionFind;
use spg_graph::{ClusterSpec, Coarsening, StreamGraph, TupleRates};

/// How decisions are decoded from probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeMode {
    /// Sample each edge's Bernoulli independently (training rollouts).
    Sample,
    /// Deterministic threshold at 0.5 (inference).
    Greedy,
    /// Deterministic threshold at the given probability.
    Threshold(f32),
}

/// Policy wrapper: decodes decisions and applies them as a contraction.
#[derive(Debug, Clone)]
pub struct CoarseningPolicy {
    /// Hard CPU cap multiple for coarse nodes (0 disables).
    pub max_group_cpu_factor: f64,
    /// Sampling temperature (applied to logits as `p' = p^(1/T)`-style
    /// sharpening on probabilities; 1.0 leaves them unchanged).
    pub temperature: f32,
}

impl CoarseningPolicy {
    /// Policy from a model config.
    pub fn from_config(cfg: &CoarsenConfig) -> Self {
        Self {
            max_group_cpu_factor: cfg.max_group_cpu_factor,
            temperature: cfg.temperature,
        }
    }

    /// Decode a decision vector from probabilities.
    pub fn decode<R: Rng>(&self, probs: &[f32], mode: DecodeMode, rng: &mut R) -> Vec<bool> {
        match mode {
            DecodeMode::Sample => probs
                .iter()
                .map(|&p| {
                    let p = temper(p, self.temperature);
                    rng.gen::<f32>() < p
                })
                .collect(),
            DecodeMode::Greedy => probs.iter().map(|&p| p >= 0.5).collect(),
            DecodeMode::Threshold(th) => probs.iter().map(|&p| p >= th).collect(),
        }
    }

    /// Contract `graph` under `decisions`, respecting the CPU cap. Edges
    /// are applied in descending probability so the cap keeps the most
    /// confident merges.
    pub fn apply(
        &self,
        graph: &StreamGraph,
        rates: &TupleRates,
        cluster: &ClusterSpec,
        decisions: &[bool],
        probs: &[f32],
    ) -> Coarsening {
        let cap = if self.max_group_cpu_factor > 0.0 {
            Some(self.max_group_cpu_factor * cluster.instr_per_sec())
        } else {
            None
        };
        let priority = priority_by_prob(probs);
        Coarsening::from_collapse(graph, rates, decisions, cap, Some(&priority))
    }

    /// Coarsen-only mode (Table II ablation): keep merging the
    /// highest-probability edges until at most `cluster.devices` coarse
    /// nodes remain, then place each coarse node on its own device.
    pub fn coarsen_only(
        &self,
        graph: &StreamGraph,
        rates: &TupleRates,
        cluster: &ClusterSpec,
        probs: &[f32],
    ) -> Coarsening {
        let n = graph.num_nodes();
        let mut uf = UnionFind::new(n);
        let order = priority_by_prob(probs);
        let cpu = rates.cpu_demand(graph);
        let mut group_cpu = cpu.clone();
        // Two passes: first respect a soft CPU cap (avoids absurd merges),
        // then — if the cap stranded us above the device count — merge
        // without it. Reaching <= |devices| groups dominates, because each
        // coarse node becomes its own device.
        let soft_cap = cluster.instr_per_sec();
        for cap in [Some(soft_cap), None] {
            for &e in &order {
                if uf.num_sets() <= cluster.devices {
                    return Coarsening::from_union_find(graph, rates, &mut uf);
                }
                let (s, d) = graph.edge_list()[e as usize];
                let (rs, rd) = (uf.find(s), uf.find(d));
                if rs == rd {
                    continue;
                }
                if let Some(cap) = cap {
                    if group_cpu[rs as usize] + group_cpu[rd as usize] > cap
                        && uf.num_sets() > cluster.devices * 2
                    {
                        continue;
                    }
                }
                let merged = group_cpu[rs as usize] + group_cpu[rd as usize];
                uf.union(rs, rd);
                group_cpu[uf.find(rs) as usize] = merged;
            }
        }
        Coarsening::from_union_find(graph, rates, &mut uf)
    }
}

/// Edge ids sorted by descending probability — the order in which
/// [`CoarseningPolicy::apply`] attempts collapses. Together with the
/// decision vector it fully determines the coarsening (and, with a
/// content-seeded placer, the reward), which is what
/// [`crate::rollout::collapse_key`] exploits for memoization.
pub fn priority_by_prob(probs: &[f32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..probs.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| probs[b as usize].total_cmp(&probs[a as usize]));
    order
}

#[inline]
fn temper(p: f32, temperature: f32) -> f32 {
    if (temperature - 1.0).abs() < 1e-6 {
        return p;
    }
    // Temperature on the logit.
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    let z = (p / (1.0 - p)).ln() / temperature;
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    fn chain(n: usize) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let mut prev = b.add_node(Operator::new(10.0));
        for _ in 1..n {
            let next = b.add_node(Operator::new(10.0));
            b.add_edge(prev, next, Channel::new(8.0)).unwrap();
            prev = next;
        }
        b.finish().unwrap()
    }

    #[test]
    fn greedy_thresholds_at_half() {
        let policy = CoarseningPolicy {
            max_group_cpu_factor: 0.0,
            temperature: 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = policy.decode(&[0.2, 0.5, 0.9], DecodeMode::Greedy, &mut rng);
        assert_eq!(d, vec![false, true, true]);
    }

    #[test]
    fn sampling_respects_extreme_probs() {
        let policy = CoarseningPolicy {
            max_group_cpu_factor: 0.0,
            temperature: 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..50 {
            let d = policy.decode(&[0.0, 1.0], DecodeMode::Sample, &mut rng);
            assert_eq!(d, vec![false, true]);
        }
    }

    #[test]
    fn sampling_rate_tracks_probability() {
        let policy = CoarseningPolicy {
            max_group_cpu_factor: 0.0,
            temperature: 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 5000;
        let mut ones = 0;
        for _ in 0..n {
            if policy.decode(&[0.3], DecodeMode::Sample, &mut rng)[0] {
                ones += 1;
            }
        }
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn apply_respects_cpu_cap() {
        let g = chain(4);
        let rates = TupleRates::compute(&g, 1e4);
        // Each node demands 1e5 instr/s; device capacity 1.25e9. A factor
        // that allows only two nodes per group:
        let per_node = 1e5;
        let cluster = ClusterSpec::new(2, per_node * 2.0 / 1e6, 100.0);
        let policy = CoarseningPolicy {
            max_group_cpu_factor: 1.0,
            temperature: 1.0,
        };
        let c = policy.apply(&g, &rates, &cluster, &[true, true, true], &[0.9, 0.8, 0.7]);
        // Groups of at most 2 nodes.
        for &m in &c.coarse.members {
            assert!(m <= 2, "group of {m} nodes exceeds cap");
        }
    }

    #[test]
    fn coarsen_only_reaches_device_count() {
        let g = chain(10);
        let rates = TupleRates::compute(&g, 1e4);
        let cluster = ClusterSpec::paper_medium(3);
        let policy = CoarseningPolicy {
            max_group_cpu_factor: 1.0,
            temperature: 1.0,
        };
        let probs: Vec<f32> = (0..9).map(|i| 0.1 + 0.08 * i as f32).collect();
        let c = policy.coarsen_only(&g, &rates, &cluster, &probs);
        assert!(c.coarse.num_nodes() <= 3);
    }

    #[test]
    fn temper_is_identity_at_one_and_sharpens_below() {
        assert!((temper(0.7, 1.0) - 0.7).abs() < 1e-6);
        assert!(temper(0.7, 0.5) > 0.7, "low temperature must sharpen");
        assert!(temper(0.3, 0.5) < 0.3);
    }
}
