//! Tape-free batched inference for [`CoarsenModel`].
//!
//! The training forward builds a [`spg_nn::Tape`]: every op allocates a
//! node, every parameter use clones its matrix, and gather/segment passes
//! walk COO index vectors rebuilt per call. None of that is needed at
//! serve time — inference never backprops — so this module re-implements
//! the encoder and collapse head as plain [`Matrix`] ops with three
//! properties:
//!
//! * **Zero steady-state allocation**: intermediates come from an
//!   [`InferenceScratch`] arena reused across calls (and across serve
//!   batches), weights are read in place through `RefCell` borrows.
//! * **CSR-backed pooling**: segment means pull over
//!   [`spg_graph::Csr`] buckets (ascending edge ids) instead of
//!   scattering over a COO segment vector, and the batched path caches
//!   the disjoint-union CSR in a [`BatchUnion`] keyed by the serve LRU
//!   fingerprints.
//! * **Bitwise identity**: every op replicates its tape counterpart's
//!   accumulation order exactly (CSR buckets list edge ids ascending, so
//!   per-segment sums add in the same order the COO loop did; divisions
//!   use the same `/= count`). The `tests/infer.rs` corpus pins
//!   tape-vs-tape-free equality bit for bit.

use crate::collapse::CollapseHead;
use crate::encoder::EdgeAwareGnn;
use crate::model::{sigmoid, CoarsenModel};
use spg_graph::features::{EDGE_FEATURES, NODE_FEATURES};
use spg_graph::{Csr, GraphFeatures, StreamGraph};
use spg_nn::quant::tanh_assign_fast;
use spg_nn::{Matrix, QuantizedLinear, QuantizedMlp};

pub use spg_nn::{InferenceScratch, QuantScratch};

/// A topology view for inference: edge list plus forward/reverse CSR.
struct InferTopo<'a> {
    num_nodes: usize,
    edges: &'a [(u32, u32)],
    /// Edges bucketed by source (pools the downstream view).
    fwd: &'a Csr,
    /// Edges bucketed by destination (pools the upstream view).
    rev: &'a Csr,
}

/// Reusable disjoint-union builder for batched inference.
///
/// Holds the concatenated node/edge features, the offset edge list, and
/// both union CSRs, all with capacity reuse across batches. When the
/// caller supplies per-item cache keys (the serve LRU request
/// fingerprints), an identical consecutive batch skips the rebuild
/// entirely — the fingerprint covers graph topology, devices, and rate,
/// which determine the features too.
#[derive(Debug, Default)]
pub struct BatchUnion {
    node: Vec<f32>,
    edge: Vec<f32>,
    edges: Vec<(u32, u32)>,
    num_nodes: usize,
    fwd: Csr,
    rev: Csr,
    key: Option<Vec<u64>>,
    hits: u64,
}

impl BatchUnion {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many batches reused the cached union (diagnostics).
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// (Re)build the union over `items[edged]`, or skip when `keys`
    /// match the previous build.
    fn build(
        &mut self,
        items: &[(&StreamGraph, &GraphFeatures)],
        edged: &[usize],
        keys: Option<&[u64]>,
    ) {
        let new_key: Option<Vec<u64>> = keys.map(|ks| edged.iter().map(|&i| ks[i]).collect());
        if let (Some(nk), Some(ok)) = (&new_key, &self.key) {
            if nk == ok {
                self.hits += 1;
                return;
            }
        }
        self.node.clear();
        self.edge.clear();
        self.edges.clear();
        let mut base = 0u32;
        for &i in edged {
            let (g, f) = items[i];
            self.node.extend_from_slice(&f.node.0);
            self.edge.extend_from_slice(&f.edge.0);
            self.edges.extend(
                g.topo_view()
                    .edges
                    .iter()
                    .map(|&(u, v)| (u + base, v + base)),
            );
            base += g.num_nodes() as u32;
        }
        self.num_nodes = base as usize;
        self.fwd.rebuild(self.num_nodes, self.edges.iter().copied());
        self.rev
            .rebuild(self.num_nodes, self.edges.iter().map(|&(u, v)| (v, u)));
        self.key = new_key;
    }
}

/// Output row `i` = `[h[pick(edges[i])] : ef[i]]` — the fused
/// gather+concat that feeds the message MLP (one pass, no intermediate
/// gathered matrix).
fn gather_concat(h: &Matrix, edges: &[(u32, u32)], pick_src: bool, ef: &Matrix, out: &mut Matrix) {
    let m = h.cols;
    debug_assert_eq!(out.cols, m + ef.cols);
    for (i, &(u, v)) in edges.iter().enumerate() {
        let node = if pick_src { u } else { v } as usize;
        let row = out.row_mut(i);
        row[..m].copy_from_slice(h.row(node));
        row[m..].copy_from_slice(ef.row(i));
    }
}

/// Per-segment mean via a CSR pull: out row `v` accumulates `msg` rows
/// for `v`'s bucket in ascending edge-id order, then divides by the
/// bucket size — exactly the order and rounding of `Tape::segment_mean`.
/// `out` must be zeroed (empty buckets stay zero rows).
fn segment_mean_csr(msg: &Matrix, csr: &Csr, out: &mut Matrix) {
    debug_assert_eq!(out.rows, csr.num_nodes());
    for v in 0..csr.num_nodes() {
        let ids = csr.edge_id_slice(v as u32);
        if ids.is_empty() {
            continue;
        }
        let row = out.row_mut(v);
        for &eid in ids {
            for (o, &x) in row.iter_mut().zip(msg.row(eid as usize)) {
                *o += x;
            }
        }
        let c = ids.len() as f32;
        for x in row {
            *x /= c;
        }
    }
}

/// `out = [a : b]` column-wise (both `n x m`, out `n x 2m`).
fn concat2(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    debug_assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    debug_assert_eq!((out.rows, out.cols), (a.rows, 2 * a.cols));
    let m = a.cols;
    for r in 0..a.rows {
        let row = out.row_mut(r);
        row[..m].copy_from_slice(a.row(r));
        row[m..].copy_from_slice(b.row(r));
    }
}

impl EdgeAwareGnn {
    /// Tape-free [`EdgeAwareGnn::encode`]: returns the `[N x 2m]` node
    /// representation as an arena matrix (bitwise identical to the tape
    /// path). `put` it back when done.
    fn encode_infer(
        &self,
        topo: &InferTopo<'_>,
        node_feats: &[f32],
        edge_feats: &[f32],
        s: &mut InferenceScratch,
    ) -> Matrix {
        let n = topo.num_nodes;
        let e = topo.edges.len();
        let m = self.hidden;

        let mut nf = s.take(n, NODE_FEATURES);
        nf.data.copy_from_slice(node_feats);
        let mut h_up = s.take(n, m);
        self.input_proj.forward_infer(&nf, &mut h_up);
        s.put(nf);
        h_up.tanh_assign();

        if e == 0 {
            let mut out = s.take(n, 2 * m);
            concat2(&h_up, &h_up, &mut out);
            s.put(h_up);
            return out;
        }

        let mut h_down = s.take(n, m);
        h_down.data.copy_from_slice(&h_up.data);

        // Zeroed when the edge-encoding ablation is off, like the tape path.
        let mut ef = s.take(e, EDGE_FEATURES);
        if self.edge_encoding {
            ef.data.copy_from_slice(edge_feats);
        }

        let mut cat = s.take(e, m + EDGE_FEATURES);
        let mut pool = s.take(n, m);
        let mut cat2 = s.take(n, 2 * m);
        for _ in 0..self.hops {
            // Upstream view: messages flow along edge direction to dst.
            gather_concat(&h_up, topo.edges, true, &ef, &mut cat);
            let mut msg = self.msg.forward_infer(&cat, s);
            msg.tanh_assign();
            pool.fill_zero();
            segment_mean_csr(&msg, topo.rev, &mut pool);
            s.put(msg);
            concat2(&h_up, &pool, &mut cat2);
            let mut up_new = s.take(n, m);
            self.update.forward_infer(&cat2, &mut up_new);
            up_new.tanh_assign();

            // Downstream view: messages flow against edge direction to src.
            gather_concat(&h_down, topo.edges, false, &ef, &mut cat);
            let mut msg = self.msg.forward_infer(&cat, s);
            msg.tanh_assign();
            pool.fill_zero();
            segment_mean_csr(&msg, topo.fwd, &mut pool);
            s.put(msg);
            concat2(&h_down, &pool, &mut cat2);
            let mut down_new = s.take(n, m);
            self.update.forward_infer(&cat2, &mut down_new);
            down_new.tanh_assign();

            s.put(h_up);
            s.put(h_down);
            h_up = up_new;
            h_down = down_new;
        }
        s.put(ef);
        s.put(cat);
        s.put(pool);
        s.put(cat2);

        let mut out = s.take(n, 2 * m);
        concat2(&h_up, &h_down, &mut out);
        s.put(h_up);
        s.put(h_down);
        out
    }
}

impl CollapseHead {
    /// Tape-free [`CollapseHead::logits`]: per-edge logits `[E x 1]` as
    /// an arena matrix (bitwise identical to the tape path).
    fn logits_infer(
        &self,
        topo: &InferTopo<'_>,
        edge_feats: &[f32],
        h: &Matrix,
        s: &mut InferenceScratch,
    ) -> Matrix {
        let e = topo.edges.len();
        assert!(e > 0, "logits need at least one edge");
        let n = h.rows;
        let m = self.head_proj.output_dim();
        let eh = self.edge_proj.output_dim();

        let mut head_all = s.take(n, m);
        self.head_proj.forward_infer(h, &mut head_all);
        let mut tail_all = s.take(n, m);
        self.tail_proj.forward_infer(h, &mut tail_all);

        let mut ef_in = s.take(e, EDGE_FEATURES);
        if self.edge_collapse_features {
            ef_in.data.copy_from_slice(edge_feats);
        }
        let mut ef = s.take(e, eh);
        self.edge_proj.forward_infer(&ef_in, &mut ef);
        ef.tanh_assign();
        s.put(ef_in);

        let mut cat = s.take(e, 2 * m + eh);
        for (i, &(u, v)) in topo.edges.iter().enumerate() {
            let row = cat.row_mut(i);
            row[..m].copy_from_slice(head_all.row(u as usize));
            row[m..2 * m].copy_from_slice(tail_all.row(v as usize));
            row[2 * m..].copy_from_slice(ef.row(i));
        }
        s.put(head_all);
        s.put(tail_all);
        s.put(ef);

        let logits = self.merge.forward_infer(&cat, s);
        s.put(cat);
        logits
    }
}

impl CoarsenModel {
    /// Tape-free inference probabilities for one graph, reusing a scratch
    /// arena across calls. Bitwise identical to the tape forward
    /// ([`CoarsenModel::forward`] + sigmoid); empty for edgeless graphs.
    pub fn infer_probs(
        &self,
        graph: &StreamGraph,
        feats: &GraphFeatures,
        scratch: &mut InferenceScratch,
    ) -> Vec<f32> {
        if graph.num_edges() == 0 {
            return Vec::new();
        }
        let view = graph.topo_view();
        let topo = InferTopo {
            num_nodes: view.num_nodes,
            edges: view.edges,
            fwd: graph.out_csr(),
            rev: graph.in_csr(),
        };
        self.infer_probs_topo(&topo, &feats.node.0, &feats.edge.0, scratch)
    }

    fn infer_probs_topo(
        &self,
        topo: &InferTopo<'_>,
        node_feats: &[f32],
        edge_feats: &[f32],
        scratch: &mut InferenceScratch,
    ) -> Vec<f32> {
        let h = self
            .encoder
            .encode_infer(topo, node_feats, edge_feats, scratch);
        let z = self.head.logits_infer(topo, edge_feats, &h, scratch);
        scratch.put(h);
        let probs = z.data.iter().map(|&x| sigmoid(x)).collect();
        scratch.put(z);
        probs
    }

    /// Batched tape-free inference with explicit state: `union` and
    /// `scratch` persist across calls (the serve batcher owns one of
    /// each), and `keys` — one cache key per item, typically the serve
    /// LRU request fingerprint — lets an identical consecutive batch skip
    /// the union rebuild.
    ///
    /// Single-edged-graph batches (the common serve case after in-batch
    /// dedup) skip the union entirely and run on the graph's own CSR.
    /// Results are bitwise identical to solo [`CoarsenModel::infer_probs`]
    /// calls; edgeless graphs get empty vectors.
    pub fn predict_probs_batch_with(
        &self,
        union: &mut BatchUnion,
        scratch: &mut InferenceScratch,
        keys: Option<&[u64]>,
        items: &[(&StreamGraph, &GraphFeatures)],
    ) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); items.len()];
        let edged: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].0.num_edges() > 0)
            .collect();
        if edged.is_empty() {
            return out;
        }
        if edged.len() == 1 {
            let (g, f) = items[edged[0]];
            out[edged[0]] = self.infer_probs(g, f, scratch);
            return out;
        }

        union.build(items, &edged, keys);
        let topo = InferTopo {
            num_nodes: union.num_nodes,
            edges: &union.edges,
            fwd: &union.fwd,
            rev: &union.rev,
        };
        let probs = self.infer_probs_topo(&topo, &union.node, &union.edge, scratch);
        let mut pos = 0;
        for &i in &edged {
            let e = items[i].0.num_edges();
            out[i] = probs[pos..pos + e].to_vec();
            pos += e;
        }
        out
    }

    /// Quantize every weight matrix into an int8 [`QuantizedModel`].
    /// Done once at checkpoint load; the f32 model stays untouched.
    pub fn quantize(&self) -> QuantizedModel {
        QuantizedModel {
            input_proj: QuantizedLinear::from_linear(&self.encoder.input_proj),
            msg: QuantizedMlp::from_mlp(&self.encoder.msg),
            update: QuantizedLinear::from_linear(&self.encoder.update),
            head_proj: QuantizedLinear::from_linear(&self.head.head_proj),
            tail_proj: QuantizedLinear::from_linear(&self.head.tail_proj),
            edge_proj: QuantizedLinear::from_linear(&self.head.edge_proj),
            merge: QuantizedMlp::from_mlp(&self.head.merge),
            hidden: self.encoder.hidden,
            hops: self.encoder.hops,
            edge_encoding: self.encoder.edge_encoding,
            edge_collapse_features: self.head.edge_collapse_features,
        }
    }
}

/// Int8-quantized twin of [`CoarsenModel`] for the opt-in serve path:
/// every `Linear` becomes a [`QuantizedLinear`] (per-output-channel
/// symmetric scales fixed at quantization time), while the graph ops
/// (gather, segment mean, concat) and activations stay f32. Results are
/// deterministic across replicas and SIMD tiers — the integer
/// accumulation argument lives in `spg_nn::quant` — but are *not*
/// bitwise equal to the f32 path; `tests/quantized_agreement.rs` pins
/// how closely the resulting placements must agree.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    input_proj: QuantizedLinear,
    msg: QuantizedMlp,
    update: QuantizedLinear,
    head_proj: QuantizedLinear,
    tail_proj: QuantizedLinear,
    edge_proj: QuantizedLinear,
    merge: QuantizedMlp,
    hidden: usize,
    hops: usize,
    edge_encoding: bool,
    edge_collapse_features: bool,
}

impl QuantizedModel {
    /// Quantized twin of `EdgeAwareGnn::encode_infer`: same arena
    /// ping-pong and graph ops, quantized matmuls.
    fn encode_infer_quantized(
        &self,
        topo: &InferTopo<'_>,
        node_feats: &[f32],
        edge_feats: &[f32],
        s: &mut InferenceScratch,
        q: &mut QuantScratch,
    ) -> Matrix {
        let n = topo.num_nodes;
        let e = topo.edges.len();
        let m = self.hidden;

        let mut nf = s.take(n, NODE_FEATURES);
        nf.data.copy_from_slice(node_feats);
        let mut h_up = s.take(n, m);
        self.input_proj.forward_infer(&nf, q, &mut h_up);
        s.put(nf);
        tanh_assign_fast(&mut h_up);

        if e == 0 {
            let mut out = s.take(n, 2 * m);
            concat2(&h_up, &h_up, &mut out);
            s.put(h_up);
            return out;
        }

        let mut h_down = s.take(n, m);
        h_down.data.copy_from_slice(&h_up.data);

        let mut ef = s.take(e, EDGE_FEATURES);
        if self.edge_encoding {
            ef.data.copy_from_slice(edge_feats);
        }

        let mut cat = s.take(e, m + EDGE_FEATURES);
        let mut pool = s.take(n, m);
        let mut cat2 = s.take(n, 2 * m);
        for _ in 0..self.hops {
            gather_concat(&h_up, topo.edges, true, &ef, &mut cat);
            let mut msg = self.msg.forward_infer(&cat, q, s);
            tanh_assign_fast(&mut msg);
            pool.fill_zero();
            segment_mean_csr(&msg, topo.rev, &mut pool);
            s.put(msg);
            concat2(&h_up, &pool, &mut cat2);
            let mut up_new = s.take(n, m);
            self.update.forward_infer(&cat2, q, &mut up_new);
            tanh_assign_fast(&mut up_new);

            gather_concat(&h_down, topo.edges, false, &ef, &mut cat);
            let mut msg = self.msg.forward_infer(&cat, q, s);
            tanh_assign_fast(&mut msg);
            pool.fill_zero();
            segment_mean_csr(&msg, topo.fwd, &mut pool);
            s.put(msg);
            concat2(&h_down, &pool, &mut cat2);
            let mut down_new = s.take(n, m);
            self.update.forward_infer(&cat2, q, &mut down_new);
            tanh_assign_fast(&mut down_new);

            s.put(h_up);
            s.put(h_down);
            h_up = up_new;
            h_down = down_new;
        }
        s.put(ef);
        s.put(cat);
        s.put(pool);
        s.put(cat2);

        let mut out = s.take(n, 2 * m);
        concat2(&h_up, &h_down, &mut out);
        s.put(h_up);
        s.put(h_down);
        out
    }

    /// Quantized twin of `CollapseHead::logits_infer`.
    fn logits_infer_quantized(
        &self,
        topo: &InferTopo<'_>,
        edge_feats: &[f32],
        h: &Matrix,
        s: &mut InferenceScratch,
        q: &mut QuantScratch,
    ) -> Matrix {
        let e = topo.edges.len();
        assert!(e > 0, "logits need at least one edge");
        let n = h.rows;
        let m = self.head_proj.output_dim();
        let eh = self.edge_proj.output_dim();

        let mut head_all = s.take(n, m);
        self.head_proj.forward_infer(h, q, &mut head_all);
        let mut tail_all = s.take(n, m);
        self.tail_proj.forward_infer(h, q, &mut tail_all);

        let mut ef_in = s.take(e, EDGE_FEATURES);
        if self.edge_collapse_features {
            ef_in.data.copy_from_slice(edge_feats);
        }
        let mut ef = s.take(e, eh);
        self.edge_proj.forward_infer(&ef_in, q, &mut ef);
        tanh_assign_fast(&mut ef);
        s.put(ef_in);

        let mut cat = s.take(e, 2 * m + eh);
        for (i, &(u, v)) in topo.edges.iter().enumerate() {
            let row = cat.row_mut(i);
            row[..m].copy_from_slice(head_all.row(u as usize));
            row[m..2 * m].copy_from_slice(tail_all.row(v as usize));
            row[2 * m..].copy_from_slice(ef.row(i));
        }
        s.put(head_all);
        s.put(tail_all);
        s.put(ef);

        let logits = self.merge.forward_infer(&cat, q, s);
        s.put(cat);
        logits
    }

    /// Quantized twin of [`CoarsenModel::infer_probs`]: collapse
    /// probabilities for one graph; empty for edgeless graphs.
    pub fn infer_probs(
        &self,
        graph: &StreamGraph,
        feats: &GraphFeatures,
        scratch: &mut InferenceScratch,
        qscratch: &mut QuantScratch,
    ) -> Vec<f32> {
        if graph.num_edges() == 0 {
            return Vec::new();
        }
        let view = graph.topo_view();
        let topo = InferTopo {
            num_nodes: view.num_nodes,
            edges: view.edges,
            fwd: graph.out_csr(),
            rev: graph.in_csr(),
        };
        self.infer_probs_topo(&topo, &feats.node.0, &feats.edge.0, scratch, qscratch)
    }

    fn infer_probs_topo(
        &self,
        topo: &InferTopo<'_>,
        node_feats: &[f32],
        edge_feats: &[f32],
        scratch: &mut InferenceScratch,
        qscratch: &mut QuantScratch,
    ) -> Vec<f32> {
        let h = self.encode_infer_quantized(topo, node_feats, edge_feats, scratch, qscratch);
        let z = self.logits_infer_quantized(topo, edge_feats, &h, scratch, qscratch);
        scratch.put(h);
        let probs = z.data.iter().map(|&x| sigmoid(x)).collect();
        scratch.put(z);
        probs
    }

    /// Quantized twin of [`CoarsenModel::predict_probs_batch_with`]:
    /// identical batching, union caching, and result slicing; only the
    /// matmuls are quantized.
    pub fn predict_probs_batch_with(
        &self,
        union: &mut BatchUnion,
        scratch: &mut InferenceScratch,
        qscratch: &mut QuantScratch,
        keys: Option<&[u64]>,
        items: &[(&StreamGraph, &GraphFeatures)],
    ) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); items.len()];
        let edged: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].0.num_edges() > 0)
            .collect();
        if edged.is_empty() {
            return out;
        }
        if edged.len() == 1 {
            let (g, f) = items[edged[0]];
            out[edged[0]] = self.infer_probs(g, f, scratch, qscratch);
            return out;
        }

        union.build(items, &edged, keys);
        let topo = InferTopo {
            num_nodes: union.num_nodes,
            edges: &union.edges,
            fwd: &union.fwd,
            rev: &union.rev,
        };
        let probs = self.infer_probs_topo(&topo, &union.node, &union.edge, scratch, qscratch);
        let mut pos = 0;
        for &i in &edged {
            let e = items[i].0.num_edges();
            out[i] = probs[pos..pos + e].to_vec();
            pos += e;
        }
        out
    }
}
