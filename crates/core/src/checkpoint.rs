//! Model checkpointing: config + parameter values as versioned JSON.
//!
//! The on-disk format carries a `version` field so that a file written by
//! an incompatible build fails with a clear error instead of a confusing
//! deserialisation panic deep inside the weight arrays. The vendored serde
//! derive has no `#[serde(...)]` attributes, so [`Checkpoint`] implements
//! `Serialize`/`Deserialize` by hand over the `Value` model to do the
//! version check up front.

use crate::config::CoarsenConfig;
use crate::model::CoarsenModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};
use spg_nn::Matrix;
use std::io::{Read, Write};
use std::path::Path;

/// Version written into every checkpoint; bump on breaking format changes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A serialised model.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Hyperparameters (architecture must match on load).
    pub config: CoarsenConfig,
    /// Parameter values in registration order.
    pub params: Vec<Matrix>,
}

impl Serialize for Checkpoint {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), CHECKPOINT_VERSION.serialize()),
            ("config".to_string(), self.config.serialize()),
            ("params".to_string(), self.params.serialize()),
        ])
    }
}

impl Deserialize for Checkpoint {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let version = match v.field("version") {
            Ok(val) => u64::deserialize(val)?,
            Err(_) => {
                return Err(serde::Error(
                    "checkpoint has no `version` field (written by a pre-versioning \
                     build?); re-export it with a current build"
                        .to_string(),
                ))
            }
        };
        if version != CHECKPOINT_VERSION {
            return Err(serde::Error(format!(
                "unsupported checkpoint version {version} \
                 (this build supports {CHECKPOINT_VERSION})"
            )));
        }
        Ok(Self {
            config: CoarsenConfig::deserialize(v.field("config")?)?,
            params: Vec::<Matrix>::deserialize(v.field("params")?)?,
        })
    }
}

impl Checkpoint {
    /// Snapshot a model.
    pub fn from_model(model: &CoarsenModel) -> Self {
        Self {
            config: model.config.clone(),
            params: model.params().snapshot(),
        }
    }

    /// Rebuild the model (architecture from `config`, weights restored).
    pub fn into_model(self) -> CoarsenModel {
        // Seed irrelevant: every weight is overwritten by the snapshot.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(self.config, &mut rng);
        model.params().restore(&self.params);
        model
    }

    /// Write JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(json.as_bytes())
    }

    /// Read JSON from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut buf = String::new();
        std::io::BufReader::new(std::fs::File::open(path)?).read_to_string(&mut buf)?;
        serde_json::from_str(&buf).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, ClusterSpec, Operator, StreamGraphBuilder};

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);

        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        b.add_edge(a, c, Channel::new(50.0)).unwrap();
        let g = b.finish().unwrap();
        let cluster = ClusterSpec::paper_medium(4);
        let before = model.predict_probs(&g, &cluster, 1e4);

        let dir = std::env::temp_dir().join("spg-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        Checkpoint::from_model(&model).save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap().into_model();
        std::fs::remove_file(&path).ok();

        let after = restored.predict_probs(&g, &cluster, 1e4);
        assert_eq!(before, after);
    }

    #[test]
    fn checkpoint_carries_version_and_roundtrips() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let json = serde_json::to_string(&Checkpoint::from_model(&model)).unwrap();
        assert!(
            json.contains(&format!("\"version\":{CHECKPOINT_VERSION}")),
            "serialized checkpoint must carry the format version"
        );
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.params.len(), model.params().snapshot().len());
    }

    #[test]
    fn missing_version_is_a_clear_error() {
        let err = serde_json::from_str::<Checkpoint>("{\"config\":{},\"params\":[]}")
            .unwrap_err()
            .to_string();
        assert!(err.contains("no `version` field"), "got: {err}");
    }

    #[test]
    fn future_version_is_rejected_with_clear_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let json = serde_json::to_string(&Checkpoint::from_model(&model)).unwrap();
        let bumped = json.replace(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            "\"version\":99",
        );
        let err = serde_json::from_str::<Checkpoint>(&bumped)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unsupported checkpoint version 99"),
            "got: {err}"
        );
        assert!(
            err.contains(&format!("supports {CHECKPOINT_VERSION}")),
            "got: {err}"
        );
    }

    #[test]
    fn checkpoint_keeps_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::without_edge_encoding(), &mut rng);
        let ck = Checkpoint::from_model(&model);
        assert!(!ck.config.edge_encoding);
        let restored = ck.into_model();
        assert!(!restored.config.edge_encoding);
    }
}
