//! Crash-safe checkpointing: config + parameters + optional trainer state
//! as versioned JSON, written atomically.
//!
//! The on-disk format carries a `version` field so that a file written by
//! an incompatible build fails with a clear error instead of a confusing
//! deserialisation panic deep inside the weight arrays. Version 2 adds an
//! optional [`TrainerState`] (epoch counter, RNG position, Adam moments,
//! best-sample buffers) so a resumed run continues bitwise-identically;
//! version 1 files still load as model-only checkpoints. The vendored
//! serde derive has no `#[serde(...)]` attributes, so [`Checkpoint`]
//! implements `Serialize`/`Deserialize` by hand over the `Value` model to
//! do the version check up front.
//!
//! [`Checkpoint::save`] is atomic: the JSON goes to `<path>.tmp`, is
//! flushed and fsynced, and only then renamed over `path`. A crash at any
//! point — including the injectable kill-point between write and rename —
//! leaves the previous checkpoint intact and loadable.

use crate::config::CoarsenConfig;
use crate::model::CoarsenModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};
use spg_nn::Matrix;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version written into every checkpoint; bump on breaking format changes.
pub const CHECKPOINT_VERSION: u64 = 2;

/// One buffered best-sample, as persisted in a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleState {
    /// Per-edge collapse decisions.
    pub decisions: Vec<bool>,
    /// Reward the decisions earned.
    pub reward: f64,
    /// True if the sample came from the Metis guide.
    pub guided: bool,
}

/// Everything beyond the model that the trainer needs to continue a run
/// bitwise-identically: epoch counter, RNG stream position, optimiser
/// state, best-sample buffers, and the fault-handling history.
///
/// The reward memo-cache is deliberately *not* persisted: rewards are a
/// pure function of the collapse key (pinned by the
/// `collapse_key_determines_reward` test), so recomputing a dropped cache
/// entry yields the bitwise-identical value and only costs time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerState {
    /// Epochs completed when the checkpoint was taken.
    pub epoch: u64,
    /// Master seed the run was started with (resume refuses a mismatch).
    pub seed: u64,
    /// High 64 bits of the master RNG's word position.
    pub rng_word_pos_hi: u64,
    /// Low 64 bits of the master RNG's word position.
    pub rng_word_pos_lo: u64,
    /// Adam step counter (bias-correction schedule).
    pub adam_steps: u64,
    /// Adam first moments, in parameter registration order.
    pub adam_m: Vec<Matrix>,
    /// Adam second moments, in parameter registration order.
    pub adam_v: Vec<Matrix>,
    /// Best-sample memory buffer of each training graph.
    pub buffers: Vec<Vec<SampleState>>,
    /// Indices of graphs quarantined by the fault policy.
    pub quarantined: Vec<u64>,
    /// Samples skipped so far (fault policy `skip`).
    pub skipped_samples: u64,
    /// Graphs quarantined so far.
    pub quarantined_graphs: u64,
    /// Epoch rollbacks so far (fault policy `rollback`).
    pub rollbacks: u64,
}

impl TrainerState {
    /// Reassemble the RNG word position from its persisted halves.
    pub fn rng_word_pos(&self) -> u128 {
        (u128::from(self.rng_word_pos_hi) << 64) | u128::from(self.rng_word_pos_lo)
    }

    /// Split a word position into the persisted `(hi, lo)` halves.
    pub fn split_word_pos(pos: u128) -> (u64, u64) {
        ((pos >> 64) as u64, pos as u64)
    }
}

/// A serialised model, optionally with the trainer state needed to
/// resume training (see [`TrainerState`]).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Hyperparameters (architecture must match on load).
    pub config: CoarsenConfig,
    /// Parameter values in registration order.
    pub params: Vec<Matrix>,
    /// Trainer state for resume; `None` in model-only checkpoints.
    pub trainer: Option<TrainerState>,
}

impl Serialize for Checkpoint {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), CHECKPOINT_VERSION.serialize()),
            ("config".to_string(), self.config.serialize()),
            ("params".to_string(), self.params.serialize()),
            ("trainer".to_string(), self.trainer.serialize()),
        ])
    }
}

impl Deserialize for Checkpoint {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let version = match v.field("version") {
            Ok(val) => u64::deserialize(val)?,
            Err(_) => {
                return Err(serde::Error(
                    "checkpoint has no `version` field (written by a pre-versioning \
                     build?); re-export it with a current build"
                        .to_string(),
                ))
            }
        };
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(serde::Error(format!(
                "unsupported checkpoint version {version} \
                 (this build supports {CHECKPOINT_VERSION}, and loads \
                 version 1 files as model-only)"
            )));
        }
        let trainer = if version >= 2 {
            Option::<TrainerState>::deserialize(v.field("trainer")?)?
        } else {
            None
        };
        Ok(Self {
            config: CoarsenConfig::deserialize(v.field("config")?)?,
            params: Vec::<Matrix>::deserialize(v.field("params")?)?,
            trainer,
        })
    }
}

/// Per-process counter of save attempts, used as the injection key of
/// [`spg_sim::inject::Site::CheckpointSave`].
static SAVE_ATTEMPTS: AtomicU64 = AtomicU64::new(0);

impl Checkpoint {
    /// Snapshot a model (no trainer state).
    pub fn from_model(model: &CoarsenModel) -> Self {
        Self {
            config: model.config.clone(),
            params: model.params().snapshot(),
            trainer: None,
        }
    }

    /// Rebuild the model (architecture from `config`, weights restored).
    /// Any trainer state is dropped; resume instead via
    /// [`crate::reinforce::ReinforceTrainer::resume_from`].
    pub fn into_model(self) -> CoarsenModel {
        // Seed irrelevant: every weight is overwritten by the snapshot.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(self.config, &mut rng);
        model.params().restore(&self.params);
        model
    }

    /// The sibling temp path used during an atomic save.
    pub fn temp_path(path: &Path) -> PathBuf {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".tmp");
        path.with_file_name(name)
    }

    /// Write JSON to `path` atomically: temp file, flush + fsync, rename.
    /// If the process dies anywhere before the rename (exercised through
    /// the `CheckpointSave` injection site), the previous file at `path`
    /// is untouched.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        let tmp = Self::temp_path(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        let attempt = SAVE_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
        if let Some(spg_sim::inject::Fault::Kill) =
            spg_sim::inject::at(spg_sim::inject::Site::CheckpointSave, attempt)
        {
            // Simulated crash between temp write and rename: stop here,
            // leaving the temp file behind exactly as a real crash would.
            return Err(std::io::Error::other(format!(
                "injected crash during checkpoint save of {} \
                 (temp file written, rename skipped)",
                path.display()
            )));
        }
        std::fs::rename(&tmp, path)?;
        // Best-effort: make the rename itself durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read JSON from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut buf = String::new();
        std::io::BufReader::new(std::fs::File::open(path)?).read_to_string(&mut buf)?;
        serde_json::from_str(&buf)
            .map_err(|e| std::io::Error::other(format!("invalid checkpoint: {e}")))
    }
}

/// Why a checkpoint cannot resume a particular trainer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint is model-only (version 1 or saved without state).
    NoTrainerState,
    /// The model architecture in the checkpoint differs.
    ConfigMismatch,
    /// Parameter/moment count or shape differs from the model.
    ParamShapeMismatch {
        /// What is mismatched, e.g. "params" or "adam_m".
        what: &'static str,
    },
    /// The checkpoint holds buffers for a different number of graphs.
    GraphCountMismatch {
        /// Graphs in the checkpoint.
        expected: usize,
        /// Graphs in the trainer.
        actual: usize,
    },
    /// The run seed differs — resuming would silently diverge.
    SeedMismatch {
        /// Seed recorded in the checkpoint.
        expected: u64,
        /// Seed the trainer was built with.
        actual: u64,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::NoTrainerState => write!(
                f,
                "checkpoint is model-only (no trainer state); it can seed \
                 a fresh run but not resume one"
            ),
            ResumeError::ConfigMismatch => {
                write!(f, "checkpoint model config differs from the trainer's")
            }
            ResumeError::ParamShapeMismatch { what } => {
                write!(f, "checkpoint {what} do not match the model's parameters")
            }
            ResumeError::GraphCountMismatch { expected, actual } => write!(
                f,
                "checkpoint was taken over {expected} training graphs, \
                 trainer has {actual}"
            ),
            ResumeError::SeedMismatch { expected, actual } => write!(
                f,
                "checkpoint was written by a run with seed {expected}, \
                 trainer uses seed {actual}; resuming would diverge"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Periodic-snapshot policy: every `every` epochs write
/// `<base>.epoch-<N>` next to the final checkpoint and keep only the
/// newest `keep` snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    base: PathBuf,
    every: usize,
    keep: usize,
}

impl CheckpointManager {
    /// Snapshots of `base` every `every` epochs, keeping the last `keep`
    /// (at least 1). `every == 0` disables periodic snapshots.
    pub fn new(base: impl Into<PathBuf>, every: usize, keep: usize) -> Self {
        Self {
            base: base.into(),
            every,
            keep: keep.max(1),
        }
    }

    /// The snapshot interval in epochs (0 = disabled).
    pub fn every(&self) -> usize {
        self.every
    }

    /// Path of the snapshot for `epoch`.
    pub fn snapshot_path(&self, epoch: u64) -> PathBuf {
        let mut name = self
            .base
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(format!(".epoch-{epoch}"));
        self.base.with_file_name(name)
    }

    /// Save a snapshot if `epoch` is on the interval; prunes old
    /// snapshots afterwards. Returns the path written, if any.
    pub fn maybe_save(&self, ckpt: &Checkpoint, epoch: u64) -> std::io::Result<Option<PathBuf>> {
        if self.every == 0 || epoch == 0 || !epoch.is_multiple_of(self.every as u64) {
            return Ok(None);
        }
        let path = self.snapshot_path(epoch);
        ckpt.save(&path)?;
        self.prune()?;
        Ok(Some(path))
    }

    /// Existing snapshots as `(epoch, path)`, oldest first.
    pub fn snapshots(&self) -> Vec<(u64, PathBuf)> {
        let dir = match self.base.parent() {
            Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let prefix = match self.base.file_name() {
            Some(n) => format!("{}.epoch-", n.to_string_lossy()),
            None => return Vec::new(),
        };
        let mut found = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(rest) = name.strip_prefix(&prefix) {
                    if let Ok(epoch) = rest.parse::<u64>() {
                        found.push((epoch, entry.path()));
                    }
                }
            }
        }
        found.sort();
        found
    }

    /// The newest snapshot on disk, if any.
    pub fn latest(&self) -> Option<PathBuf> {
        self.snapshots().pop().map(|(_, p)| p)
    }

    fn prune(&self) -> std::io::Result<()> {
        let snaps = self.snapshots();
        if snaps.len() > self.keep {
            for (_, path) in &snaps[..snaps.len() - self.keep] {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, ClusterSpec, Operator, StreamGraphBuilder};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spg-checkpoint-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);

        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        b.add_edge(a, c, Channel::new(50.0)).unwrap();
        let g = b.finish().unwrap();
        let cluster = ClusterSpec::paper_medium(4);
        let before = model.predict_probs(&g, &cluster, 1e4);

        let path = tmp_dir("roundtrip").join("ckpt.json");
        Checkpoint::from_model(&model).save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap().into_model();
        std::fs::remove_file(&path).ok();

        let after = restored.predict_probs(&g, &cluster, 1e4);
        assert_eq!(before, after);
    }

    #[test]
    fn checkpoint_carries_version_and_roundtrips() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let json = serde_json::to_string(&Checkpoint::from_model(&model)).unwrap();
        assert!(
            json.contains(&format!("\"version\":{CHECKPOINT_VERSION}")),
            "serialized checkpoint must carry the format version"
        );
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.params.len(), model.params().snapshot().len());
        assert!(back.trainer.is_none());
    }

    #[test]
    fn missing_version_is_a_clear_error() {
        let err = serde_json::from_str::<Checkpoint>("{\"config\":{},\"params\":[]}")
            .unwrap_err()
            .to_string();
        assert!(err.contains("no `version` field"), "got: {err}");
    }

    #[test]
    fn future_version_is_rejected_with_clear_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let json = serde_json::to_string(&Checkpoint::from_model(&model)).unwrap();
        let bumped = json.replace(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            "\"version\":99",
        );
        let err = serde_json::from_str::<Checkpoint>(&bumped)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unsupported checkpoint version 99"),
            "got: {err}"
        );
        assert!(
            err.contains(&format!("supports {CHECKPOINT_VERSION}")),
            "got: {err}"
        );
    }

    #[test]
    fn version_1_loads_as_model_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let json = serde_json::to_string(&Checkpoint::from_model(&model)).unwrap();
        // A v1 file has no `trainer` field at all.
        let v1 = json
            .replace(
                &format!("\"version\":{CHECKPOINT_VERSION}"),
                "\"version\":1",
            )
            .replace(",\"trainer\":null", "");
        let back: Checkpoint = serde_json::from_str(&v1).unwrap();
        assert_eq!(back.params.len(), model.params().snapshot().len());
        assert!(back.trainer.is_none());
    }

    #[test]
    fn checkpoint_keeps_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::without_edge_encoding(), &mut rng);
        let ck = Checkpoint::from_model(&model);
        assert!(!ck.config.edge_encoding);
        let restored = ck.into_model();
        assert!(!restored.config.edge_encoding);
    }

    #[test]
    fn word_pos_split_roundtrips() {
        for pos in [0u128, 1, u128::from(u64::MAX) + 5, 1 << 80] {
            let (hi, lo) = TrainerState::split_word_pos(pos);
            let state = TrainerState {
                epoch: 0,
                seed: 0,
                rng_word_pos_hi: hi,
                rng_word_pos_lo: lo,
                adam_steps: 0,
                adam_m: vec![],
                adam_v: vec![],
                buffers: vec![],
                quarantined: vec![],
                skipped_samples: 0,
                quarantined_graphs: 0,
                rollbacks: 0,
            };
            assert_eq!(state.rng_word_pos(), pos);
        }
    }

    #[test]
    fn corrupt_checkpoints_fail_loudly() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let json = serde_json::to_string(&Checkpoint::from_model(&model)).unwrap();
        let dir = tmp_dir("corrupt");

        // Truncated file (torn non-atomic write).
        let trunc = dir.join("trunc.json");
        std::fs::write(&trunc, &json[..json.len() / 2]).unwrap();
        let err = Checkpoint::load(&trunc).unwrap_err().to_string();
        assert!(err.contains("invalid checkpoint"), "got: {err}");

        // Garbage that is not JSON at all.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, b"\x00\xffnot json").unwrap();
        assert!(Checkpoint::load(&garbage).is_err());

        // Valid JSON of the wrong shape.
        let shape = dir.join("shape.json");
        std::fs::write(&shape, "[1,2,3]").unwrap();
        let err = Checkpoint::load(&shape).unwrap_err().to_string();
        assert!(err.contains("invalid checkpoint"), "got: {err}");

        // Missing file names the OS error.
        assert!(Checkpoint::load(&dir.join("absent.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_save_leaves_previous_checkpoint_intact() {
        let _serial = spg_sim::inject::test_serial();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let old = Checkpoint::from_model(&CoarsenModel::new(CoarsenConfig::default(), &mut rng));
        let new = Checkpoint::from_model(&CoarsenModel::new(CoarsenConfig::default(), &mut rng));
        let dir = tmp_dir("interrupted");
        let path = dir.join("ckpt.json");
        old.save(&path).unwrap();
        let old_bytes = std::fs::read(&path).unwrap();
        drop(_serial);

        // Crash every save attempt between temp write and rename.
        {
            let _g = spg_sim::inject::armed(spg_sim::inject::FaultInjector::new(0).at(
                spg_sim::inject::Site::CheckpointSave,
                spg_sim::inject::ANY_KEY,
                spg_sim::inject::Fault::Kill,
            ));
            let err = new.save(&path).unwrap_err().to_string();
            assert!(err.contains("injected crash"), "got: {err}");
        }

        // The previous checkpoint is untouched and loadable; the torn
        // temp file is present (as after a real crash) but ignored.
        assert_eq!(std::fs::read(&path).unwrap(), old_bytes);
        Checkpoint::load(&path).unwrap();
        assert!(Checkpoint::temp_path(&path).exists());

        // A later save (post-restart) succeeds and replaces the file.
        new.save(&path).unwrap();
        Checkpoint::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manager_snapshots_on_interval_and_prunes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ckpt = Checkpoint::from_model(&CoarsenModel::new(CoarsenConfig::default(), &mut rng));
        let dir = tmp_dir("manager");
        let mgr = CheckpointManager::new(dir.join("model.json"), 2, 2);

        for epoch in 0..=8u64 {
            let wrote = mgr.maybe_save(&ckpt, epoch).unwrap();
            assert_eq!(
                wrote.is_some(),
                epoch > 0 && epoch % 2 == 0,
                "epoch {epoch}"
            );
        }
        let epochs: Vec<u64> = mgr.snapshots().iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![6, 8], "keep-last-2 retention");
        assert_eq!(mgr.latest().unwrap(), mgr.snapshot_path(8));
        for (_, p) in mgr.snapshots() {
            Checkpoint::load(&p).unwrap();
        }

        let disabled = CheckpointManager::new(dir.join("other.json"), 0, 3);
        assert_eq!(disabled.maybe_save(&ckpt, 4).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
