//! Model checkpointing: config + parameter values as JSON.

use crate::config::CoarsenConfig;
use crate::model::CoarsenModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use spg_nn::Matrix;
use std::io::{Read, Write};
use std::path::Path;

/// A serialised model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Hyperparameters (architecture must match on load).
    pub config: CoarsenConfig,
    /// Parameter values in registration order.
    pub params: Vec<Matrix>,
}

impl Checkpoint {
    /// Snapshot a model.
    pub fn from_model(model: &CoarsenModel) -> Self {
        Self {
            config: model.config.clone(),
            params: model.params().snapshot(),
        }
    }

    /// Rebuild the model (architecture from `config`, weights restored).
    pub fn into_model(self) -> CoarsenModel {
        // Seed irrelevant: every weight is overwritten by the snapshot.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(self.config, &mut rng);
        model.params().restore(&self.params);
        model
    }

    /// Write JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(json.as_bytes())
    }

    /// Read JSON from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut buf = String::new();
        std::io::BufReader::new(std::fs::File::open(path)?).read_to_string(&mut buf)?;
        serde_json::from_str(&buf).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, ClusterSpec, Operator, StreamGraphBuilder};

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);

        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        b.add_edge(a, c, Channel::new(50.0)).unwrap();
        let g = b.finish().unwrap();
        let cluster = ClusterSpec::paper_medium(4);
        let before = model.predict_probs(&g, &cluster, 1e4);

        let dir = std::env::temp_dir().join("spg-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        Checkpoint::from_model(&model).save(&path).unwrap();
        let restored = Checkpoint::load(&path).unwrap().into_model();
        std::fs::remove_file(&path).ok();

        let after = restored.predict_probs(&g, &cluster, 1e4);
        assert_eq!(before, after);
    }

    #[test]
    fn checkpoint_keeps_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::without_edge_encoding(), &mut rng);
        let ck = Checkpoint::from_model(&model);
        assert!(!ck.config.edge_encoding);
        let restored = ck.into_model();
        assert!(!restored.config.edge_encoding);
    }
}
