//! Edge-collapsing prediction head (§IV-B).
//!
//! For each directed edge `e = (u, v)`:
//!
//! ```text
//! h_head = W_head · h_u        h_tail = W_tail · h_v
//! h_{u,v} = W₁ · [h_head : h_tail : W_edge · f_{u,v}]
//! P(merge(u,v)) = σ(MLP(W₂ · h_{u,v}))
//! ```

use crate::config::CoarsenConfig;
use rand::Rng;
use spg_graph::features::EDGE_FEATURES;
use spg_graph::{GraphFeatures, TopoView};
use spg_nn::layers::{Activation, Linear, Mlp};
use spg_nn::{Matrix, ParamSet, Tape, Var};

/// The collapse head: node embeddings + edge features → per-edge logits.
#[derive(Debug, Clone)]
pub struct CollapseHead {
    pub(crate) head_proj: Linear,
    pub(crate) tail_proj: Linear,
    pub(crate) edge_proj: Linear,
    pub(crate) merge: Mlp,
    pub(crate) edge_collapse_features: bool,
}

impl CollapseHead {
    /// Build with parameters registered into `set`. `node_dim` is the width
    /// of the encoder output (`2m`).
    pub fn new<R: Rng>(
        cfg: &CoarsenConfig,
        node_dim: usize,
        set: &mut ParamSet,
        rng: &mut R,
    ) -> Self {
        let m = cfg.hidden;
        Self {
            head_proj: Linear::new(node_dim, m, set, rng),
            tail_proj: Linear::new(node_dim, m, set, rng),
            edge_proj: Linear::new(EDGE_FEATURES, cfg.edge_hidden, set, rng),
            merge: Mlp::new(
                &[2 * m + cfg.edge_hidden, cfg.head_hidden, 1],
                Activation::Relu,
                set,
                rng,
            ),
            edge_collapse_features: cfg.edge_collapse_features,
        }
    }

    /// Per-edge collapse logits (`[E x 1]`) from node representations
    /// `h` (`[N x 2m]`).
    pub fn logits(&self, t: &mut Tape, view: &TopoView<'_>, feats: &GraphFeatures, h: Var) -> Var {
        let e = view.edges.len();
        assert!(e > 0, "logits need at least one edge");

        let src: Vec<u32> = view.edges.iter().map(|&(s, _)| s).collect();
        let dst: Vec<u32> = view.edges.iter().map(|&(_, d)| d).collect();

        let head_all = self.head_proj.forward(t, h);
        let tail_all = self.tail_proj.forward(t, h);
        let h_head = t.gather_rows(head_all, &src);
        let h_tail = t.gather_rows(tail_all, &dst);

        let ef = if self.edge_collapse_features {
            Matrix::from_vec(e, EDGE_FEATURES, feats.edge.0.clone())
        } else {
            Matrix::zeros(e, EDGE_FEATURES)
        };
        let ef = t.input(ef);
        let ef = self.edge_proj.forward(t, ef);
        let ef = t.tanh(ef);

        let cat = t.concat_cols(&[h_head, h_tail, ef]);
        self.merge.forward(t, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EdgeAwareGnn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spg_graph::{Channel, ClusterSpec, Operator, StreamGraph, StreamGraphBuilder};

    fn tiny() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        let d = b.add_node(Operator::new(300.0));
        b.add_edge(a, c, Channel::new(10.0)).unwrap();
        b.add_edge(c, d, Channel::new(2000.0)).unwrap();
        b.finish().unwrap()
    }

    fn logits_for(cfg: &CoarsenConfig, seed: u64) -> Matrix {
        let g = tiny();
        let feats = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(4), 1e4);
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let enc = EdgeAwareGnn::new(cfg, &mut set, &mut rng);
        let head = CollapseHead::new(cfg, enc.output_dim(), &mut set, &mut rng);
        let mut t = Tape::new();
        let h = enc.encode(&mut t, &g.topo_view(), &feats);
        let z = head.logits(&mut t, &g.topo_view(), &feats, h);
        t.value(z).clone()
    }

    #[test]
    fn one_logit_per_edge() {
        let z = logits_for(&CoarsenConfig::default(), 0);
        assert_eq!((z.rows, z.cols), (2, 1));
        assert!(z.is_finite());
    }

    #[test]
    fn edge_feature_ablation_changes_logits() {
        let full = logits_for(&CoarsenConfig::default(), 3);
        let ablated = logits_for(&CoarsenConfig::without_edge_collapse_features(), 3);
        assert!(full != ablated);
    }

    #[test]
    fn gradients_reach_all_params() {
        let g = tiny();
        let feats = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(4), 1e4);
        let cfg = CoarsenConfig::default();
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let enc = EdgeAwareGnn::new(&cfg, &mut set, &mut rng);
        let head = CollapseHead::new(&cfg, enc.output_dim(), &mut set, &mut rng);
        set.zero_grad();
        let mut t = Tape::new();
        let h = enc.encode(&mut t, &g.topo_view(), &feats);
        let z = head.logits(&mut t, &g.topo_view(), &feats, h);
        let ll = t.bernoulli_log_prob(z, &[1.0, 0.0]);
        t.backward(ll);
        let with_grad = set
            .params()
            .iter()
            .filter(|p| p.0.borrow().grad.norm() > 0.0)
            .count();
        // Every parameter except possibly dead-ReLU branches must get
        // gradient; demand a strong majority.
        assert!(
            with_grad * 10 >= set.params().len() * 8,
            "{with_grad}/{} params got gradient",
            set.params().len()
        );
    }
}
