//! Edge-aware stream graph encoding (§IV-A).
//!
//! Each node carries two directional embeddings: an *upstream-view* half
//! `h⁺` aggregated from producers and a *downstream-view* half `h⁻`
//! aggregated from consumers. One hop:
//!
//! ```text
//! msg(u→v) = tanh(W₁·h⁺_u + W_edge·f_{u,v})          (information aggregation)
//! h⁺_v ← tanh(W₂·[h⁺_v : mean_{u∈N⁺(v)} msg(u→v)])   (node update)
//! ```
//!
//! and symmetrically for the downstream half on reversed edges. As in the
//! paper, `W₁`/`W₂` are shared between directions. The final node
//! representation is `h_v = [h⁺_v : h⁻_v]`.

use crate::config::CoarsenConfig;
use rand::Rng;
use spg_graph::features::{EDGE_FEATURES, NODE_FEATURES};
use spg_graph::{GraphFeatures, TopoView};
use spg_nn::layers::{Activation, Linear, Mlp};
use spg_nn::{Matrix, ParamSet, Tape, Var};

/// The edge-aware GNN encoder.
#[derive(Debug, Clone)]
pub struct EdgeAwareGnn {
    pub(crate) input_proj: Linear,
    pub(crate) msg: Mlp,
    pub(crate) update: Linear,
    pub(crate) hidden: usize,
    pub(crate) hops: usize,
    pub(crate) edge_encoding: bool,
}

impl EdgeAwareGnn {
    /// Build with parameters registered into `set`.
    pub fn new<R: Rng>(cfg: &CoarsenConfig, set: &mut ParamSet, rng: &mut R) -> Self {
        let m = cfg.hidden;
        Self {
            input_proj: Linear::new(NODE_FEATURES, m, set, rng),
            // W₁·h + W_edge·f with a bias, as one linear over the concat.
            msg: Mlp::new(&[m + EDGE_FEATURES, m], Activation::Tanh, set, rng),
            update: Linear::new(2 * m, m, set, rng),
            hidden: m,
            hops: cfg.hops,
            edge_encoding: cfg.edge_encoding,
        }
    }

    /// Width of the final node representation (`2m`).
    pub fn output_dim(&self) -> usize {
        2 * self.hidden
    }

    /// Encode a topology; returns the `[N x 2m]` node representation.
    pub fn encode(&self, t: &mut Tape, view: &TopoView<'_>, feats: &GraphFeatures) -> Var {
        let n = view.num_nodes;
        let e = view.edges.len();

        let node_feats = t.input(Matrix::from_vec(n, NODE_FEATURES, feats.node.0.clone()));
        let edge_feats = if self.edge_encoding {
            Matrix::from_vec(
                e.max(1),
                EDGE_FEATURES,
                if e == 0 {
                    vec![0.0; EDGE_FEATURES]
                } else {
                    feats.edge.0.clone()
                },
            )
        } else {
            Matrix::zeros(e.max(1), EDGE_FEATURES)
        };
        let edge_feats = t.input(edge_feats);

        let h0 = self.input_proj.forward(t, node_feats);
        let mut h_up = t.tanh(h0);
        let mut h_down = h_up;

        if e == 0 {
            return t.concat_cols(&[h_up, h_down]);
        }

        let src: Vec<u32> = view.edges.iter().map(|&(s, _)| s).collect();
        let dst: Vec<u32> = view.edges.iter().map(|&(_, d)| d).collect();

        for _ in 0..self.hops {
            // Upstream view: messages flow along edge direction to dst.
            let up_in = t.gather_rows(h_up, &src);
            let up_cat = t.concat_cols(&[up_in, edge_feats]);
            let up_msg = self.msg.forward(t, up_cat);
            let up_msg = t.tanh(up_msg);
            let up_pool = t.segment_mean(up_msg, &dst, n);
            let up_cat2 = t.concat_cols(&[h_up, up_pool]);
            let up_new = self.update.forward(t, up_cat2);
            let up_new = t.tanh(up_new);

            // Downstream view: messages flow against edge direction to src.
            let down_in = t.gather_rows(h_down, &dst);
            let down_cat = t.concat_cols(&[down_in, edge_feats]);
            let down_msg = self.msg.forward(t, down_cat);
            let down_msg = t.tanh(down_msg);
            let down_pool = t.segment_mean(down_msg, &src, n);
            let down_cat2 = t.concat_cols(&[h_down, down_pool]);
            let down_new = self.update.forward(t, down_cat2);
            let down_new = t.tanh(down_new);

            h_up = up_new;
            h_down = down_new;
        }

        t.concat_cols(&[h_up, h_down])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spg_graph::{Channel, ClusterSpec, Operator, StreamGraph, StreamGraphBuilder};

    fn tiny() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        let d = b.add_node(Operator::new(300.0));
        b.add_edge(a, c, Channel::new(10.0)).unwrap();
        b.add_edge(c, d, Channel::new(20.0)).unwrap();
        b.add_edge(a, d, Channel::new(5.0)).unwrap();
        b.finish().unwrap()
    }

    fn encode_tiny(cfg: &CoarsenConfig, seed: u64) -> Matrix {
        let g = tiny();
        let feats = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(4), 1e4);
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let enc = EdgeAwareGnn::new(cfg, &mut set, &mut rng);
        let mut t = Tape::new();
        let h = enc.encode(&mut t, &g.topo_view(), &feats);
        t.value(h).clone()
    }

    #[test]
    fn output_shape_is_n_by_2m() {
        let cfg = CoarsenConfig::default();
        let h = encode_tiny(&cfg, 0);
        assert_eq!(h.rows, 3);
        assert_eq!(h.cols, 2 * cfg.hidden);
        assert!(h.is_finite());
    }

    #[test]
    fn edge_features_change_embeddings() {
        let with = encode_tiny(&CoarsenConfig::default(), 0);
        let without = encode_tiny(&CoarsenConfig::without_edge_encoding(), 0);
        // Same seeds => same weights; only the edge features differ.
        assert!(with != without, "ablation must change the encoding");
    }

    #[test]
    fn directional_halves_differ() {
        let cfg = CoarsenConfig::default();
        let h = encode_tiny(&cfg, 1);
        let m = cfg.hidden;
        // The source node has no upstream neighbours but two downstream
        // ones, so its two halves should differ.
        let up = &h.row(0)[..m];
        let down = &h.row(0)[m..];
        assert!(up != down, "directional views should differ");
    }

    #[test]
    fn single_node_graph_encodes() {
        let mut b = StreamGraphBuilder::new();
        b.add_node(Operator::new(1.0));
        let g = b.finish().unwrap();
        let feats = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(2), 1e4);
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let enc = EdgeAwareGnn::new(&CoarsenConfig::default(), &mut set, &mut rng);
        let mut t = Tape::new();
        let h = enc.encode(&mut t, &g.topo_view(), &feats);
        assert_eq!(t.value(h).rows, 1);
        assert!(t.value(h).is_finite());
    }
}
