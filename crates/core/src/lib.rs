//! # spg-core
//!
//! The paper's contribution: a **generalizable RL-based coarsening model**
//! for resource allocation over stream processing graphs, plus the
//! **coarsening-partitioning framework** around it.
//!
//! Pipeline (§III, Fig. 2):
//!
//! 1. [`encoder::EdgeAwareGnn`] encodes the graph with directional
//!    (upstream/downstream) node embeddings that mix in edge features
//!    (§IV-A).
//! 2. [`collapse::CollapseHead`] builds an edge representation from the
//!    head/tail node embeddings and the edge features, and predicts a
//!    Bernoulli *collapse* probability per directed edge (§IV-B).
//! 3. [`policy::CoarseningPolicy`] samples (training) or thresholds
//!    (inference) the decisions and contracts the graph.
//! 4. A [`pipeline::CoarsePlacer`] (Metis by default) places the coarse
//!    graph; the placement is lifted back to the original graph.
//! 5. [`reinforce::ReinforceTrainer`] trains everything end-to-end with
//!    REINFORCE on the relative-throughput reward, using a best-sample
//!    memory buffer and optional Metis-guided seeding (§III, §IV-C).
//! 6. [`curriculum`] implements the size-levels curriculum (§IV-C).

pub mod checkpoint;
pub mod collapse;
pub mod config;
pub mod curriculum;
pub mod encoder;
pub mod fault;
pub mod infer;
pub mod model;
pub mod pipeline;
pub mod policy;
pub mod reinforce;
pub mod rollout;

pub use checkpoint::{
    Checkpoint, CheckpointManager, ResumeError, TrainerState, CHECKPOINT_VERSION,
};
pub use config::CoarsenConfig;
pub use fault::{FaultError, FaultEvent, FaultKind, FaultPolicy, FaultStats, RecoveryAction};
pub use infer::{BatchUnion, InferenceScratch, QuantScratch, QuantizedModel};
pub use model::CoarsenModel;
pub use pipeline::{CoarsePlacer, CoarsenAllocator, CoarsenOracleAllocator, MetisCoarsePlacer};
pub use policy::{CoarseningPolicy, DecodeMode};
pub use reinforce::{ReinforceTrainer, ReinforceTrainerBuilder, TrainOptions, TrainStats};
pub use rollout::RewardCache;

/// Re-export of the observability crate so downstream users can build
/// sinks and parse event streams without a separate dependency.
pub use spg_obs as telemetry;
pub use spg_obs::TelemetrySink;
