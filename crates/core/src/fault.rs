//! Fault taxonomy and recovery policy for the training runtime.
//!
//! The trainer checks for non-finite values at four boundaries — rollout
//! rewards (and worker panics), forward-pass collapse probabilities, the
//! loss/gradient after backward, and the parameter norm after the Adam
//! step. What happens when a check trips is the [`FaultPolicy`]:
//!
//! * [`FaultPolicy::Abort`] (default): [`ReinforceTrainer::try_train_epoch`]
//!   returns a [`FaultError`] naming the fault; nothing is swallowed.
//! * [`FaultPolicy::SkipSample`]: a faulty sample is dropped from the batch
//!   (counted and reported); a fault at a step-level boundary quarantines
//!   the whole graph for the rest of the run.
//! * [`FaultPolicy::RollbackToSnapshot`]: any fault restores the
//!   epoch-start snapshot (parameters, optimiser moments, RNG, buffers),
//!   quarantines the offending graph, and retries the epoch.
//!
//! [`ReinforceTrainer::try_train_epoch`]: crate::reinforce::ReinforceTrainer::try_train_epoch

use std::fmt;
use std::str::FromStr;

/// What to do when a training-time fault is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Drop the faulty sample (or quarantine the graph for step-level
    /// faults) and keep training.
    SkipSample,
    /// Restore the epoch-start snapshot, quarantine the offending graph,
    /// and retry the epoch.
    RollbackToSnapshot,
    /// Surface the fault as an error from `try_train_epoch` (and a panic
    /// from `train_epoch`). The default.
    #[default]
    Abort,
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultPolicy::SkipSample => "skip",
            FaultPolicy::RollbackToSnapshot => "rollback",
            FaultPolicy::Abort => "abort",
        })
    }
}

impl FromStr for FaultPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "skip" | "skip-sample" => Ok(FaultPolicy::SkipSample),
            "rollback" | "rollback-to-snapshot" => Ok(FaultPolicy::RollbackToSnapshot),
            "abort" => Ok(FaultPolicy::Abort),
            other => Err(format!(
                "unknown fault policy `{other}` (expected skip, rollback, or abort)"
            )),
        }
    }
}

/// The kind of fault detected, named after the failed check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A rollout produced a NaN/infinite reward.
    NonFiniteReward,
    /// The forward pass produced non-finite collapse probabilities (so the
    /// log-probabilities of the policy are non-finite too).
    NonFiniteLogProb,
    /// The loss or accumulated gradient norm is non-finite after backward.
    NonFiniteGradient,
    /// The parameter norm is non-finite after the Adam step.
    NonFiniteParameters,
    /// A rollout worker panicked while evaluating a sample.
    WorkerPanic,
}

impl FaultKind {
    /// Stable snake_case name (used in errors and telemetry).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NonFiniteReward => "non_finite_reward",
            FaultKind::NonFiniteLogProb => "non_finite_log_prob",
            FaultKind::NonFiniteGradient => "non_finite_gradient",
            FaultKind::NonFiniteParameters => "non_finite_parameters",
            FaultKind::WorkerPanic => "worker_panic",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the trainer recovered from (or surfaced) a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The sample was dropped from the batch.
    SkippedSample,
    /// The graph was quarantined for the rest of the run.
    QuarantinedGraph,
    /// The epoch was rolled back to its start snapshot.
    RolledBack,
    /// The fault was surfaced as an error (policy Abort).
    Aborted,
}

/// One recovery event, kept in the trainer's in-memory fault log.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// What was detected.
    pub kind: FaultKind,
    /// Epoch index (0-based) during which the fault fired.
    pub epoch: u64,
    /// Index of the graph being trained on.
    pub graph: usize,
    /// Sample index within the batch, when the fault was sample-scoped.
    pub sample: Option<usize>,
    /// Human-readable detail (offending value, panic message, ...).
    pub detail: String,
    /// How the policy responded.
    pub action: RecoveryAction,
}

/// Running totals of fault handling, mirrored to telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Samples dropped under [`FaultPolicy::SkipSample`].
    pub skipped_samples: u64,
    /// Graphs quarantined (skip or rollback policies).
    pub quarantined_graphs: u64,
    /// Epoch rollbacks under [`FaultPolicy::RollbackToSnapshot`].
    pub rollbacks: u64,
    /// Resume-from-checkpoint events (this process; not persisted).
    pub resumes: u64,
}

/// A training fault surfaced under [`FaultPolicy::Abort`].
#[derive(Debug, Clone)]
pub struct FaultError {
    /// What was detected.
    pub kind: FaultKind,
    /// Epoch index (0-based) during which the fault fired.
    pub epoch: u64,
    /// Index of the graph being trained on.
    pub graph: usize,
    /// Sample index within the batch, when sample-scoped.
    pub sample: Option<usize>,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at epoch {}, graph {}",
            self.kind, self.epoch, self.graph
        )?;
        if let Some(s) = self.sample {
            write!(f, ", sample {s}")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_round_trips() {
        for (text, policy) in [
            ("skip", FaultPolicy::SkipSample),
            ("skip-sample", FaultPolicy::SkipSample),
            ("rollback", FaultPolicy::RollbackToSnapshot),
            ("rollback-to-snapshot", FaultPolicy::RollbackToSnapshot),
            ("abort", FaultPolicy::Abort),
        ] {
            assert_eq!(text.parse::<FaultPolicy>().unwrap(), policy);
        }
        assert_eq!(FaultPolicy::SkipSample.to_string(), "skip");
        assert_eq!(FaultPolicy::default(), FaultPolicy::Abort);
        let err = "bogus".parse::<FaultPolicy>().unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn fault_error_names_kind_epoch_graph_and_sample() {
        let e = FaultError {
            kind: FaultKind::NonFiniteReward,
            epoch: 3,
            graph: 1,
            sample: Some(2),
            detail: "reward NaN".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("non_finite_reward"), "{text}");
        assert!(text.contains("epoch 3"), "{text}");
        assert!(text.contains("graph 1"), "{text}");
        assert!(text.contains("sample 2"), "{text}");
        assert!(text.contains("reward NaN"), "{text}");
    }
}
