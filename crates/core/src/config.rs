//! Model hyperparameters.

use serde::{Deserialize, Serialize};

/// Hyperparameters of the coarsening model.
///
/// The paper trains 512-wide node embeddings and 128-wide edge embeddings
/// on a GPU; [`CoarsenConfig::default`] is scaled for CPU training (the
/// architecture is identical) and [`CoarsenConfig::paper_scale`] restores
/// the published sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarsenConfig {
    /// Width `m` of each directional half of the node embedding (the full
    /// node representation is `2m`).
    pub hidden: usize,
    /// Width of the projected edge feature inside the collapse head.
    pub edge_hidden: usize,
    /// Number of message-passing hops `K` (paper: 2).
    pub hops: usize,
    /// Hidden width of the MLP on top of the edge representation.
    pub head_hidden: usize,
    /// Use edge features during graph encoding (§IV-A). Turning this off is
    /// the "w/o edge-encoding" ablation of Table II.
    pub edge_encoding: bool,
    /// Use edge features in the edge-collapsing head (§IV-B). Turning this
    /// off is the "w/o edge-collapsing features" ablation of Table II.
    pub edge_collapse_features: bool,
    /// Hard cap on a coarse node's CPU demand, as a multiple of one
    /// device's capacity (keeps rollouts feasible; 0 disables).
    pub max_group_cpu_factor: f64,
    /// Sampling temperature for on-policy rollouts.
    pub temperature: f32,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            edge_hidden: 8,
            hops: 2,
            head_hidden: 24,
            edge_encoding: true,
            edge_collapse_features: true,
            max_group_cpu_factor: 1.0,
            temperature: 1.0,
        }
    }
}

impl CoarsenConfig {
    /// The published model sizes (slow on CPU; provided for completeness).
    pub fn paper_scale() -> Self {
        Self {
            hidden: 256,
            edge_hidden: 128,
            head_hidden: 128,
            ..Default::default()
        }
    }

    /// The Table II "w/o edge-encoding" ablation.
    pub fn without_edge_encoding() -> Self {
        Self {
            edge_encoding: false,
            ..Default::default()
        }
    }

    /// The Table II "w/o edge-collapsing features" ablation.
    pub fn without_edge_collapse_features() -> Self {
        Self {
            edge_collapse_features: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CoarsenConfig::default();
        assert_eq!(c.hops, 2, "paper sets K = 2");
        assert!(c.edge_encoding && c.edge_collapse_features);
    }

    #[test]
    fn ablations_flip_exactly_one_flag() {
        let a = CoarsenConfig::without_edge_encoding();
        assert!(!a.edge_encoding && a.edge_collapse_features);
        let b = CoarsenConfig::without_edge_collapse_features();
        assert!(b.edge_encoding && !b.edge_collapse_features);
    }

    #[test]
    fn paper_scale_matches_publication() {
        let p = CoarsenConfig::paper_scale();
        assert_eq!(p.hidden * 2, 512);
        assert_eq!(p.edge_hidden, 128);
    }
}
