//! Curriculum learning over graph-size levels (§IV-C).
//!
//! The model is trained on the easiest level first (medium graphs on 10
//! devices in the paper), then fine-tuned level by level on larger graphs
//! and more devices. Each level reuses the weights of the previous one, so
//! later levels converge in a few epochs (1–3 in the paper).

use crate::model::CoarsenModel;
use crate::pipeline::CoarsePlacer;
use crate::reinforce::{ReinforceTrainer, TrainOptions, TrainStats};
use spg_graph::{ClusterSpec, StreamGraph};

/// One curriculum level.
#[derive(Debug, Clone)]
pub struct CurriculumLevel {
    /// Level name (for logs/tables).
    pub name: String,
    /// Training graphs of this level.
    pub graphs: Vec<StreamGraph>,
    /// Cluster of this level.
    pub cluster: ClusterSpec,
    /// Source tuple rate of this level.
    pub source_rate: f64,
    /// Epochs to train at this level.
    pub epochs: usize,
}

/// Per-level training history.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Level name.
    pub name: String,
    /// Stats per epoch.
    pub epochs: Vec<TrainStats>,
}

/// Train `model` through `levels` in order (the paper's size-based
/// curriculum); returns the trained model and per-level history.
pub fn train_curriculum<P: CoarsePlacer + Clone + Sync>(
    mut model: CoarsenModel,
    placer: &P,
    levels: &[CurriculumLevel],
    options: &TrainOptions,
) -> (CoarsenModel, Vec<LevelStats>) {
    let mut history = Vec::with_capacity(levels.len());
    for (li, level) in levels.iter().enumerate() {
        // Decorrelate sampling noise between levels deterministically.
        let opts = options
            .clone()
            .seed(options.seed.wrapping_add(li as u64 * 0x9E37));
        let mut trainer = ReinforceTrainer::builder(model, placer.clone())
            .graphs(level.graphs.clone())
            .cluster(level.cluster)
            .source_rate(level.source_rate)
            .options(opts)
            .build();
        let mut stats = Vec::with_capacity(level.epochs);
        for _ in 0..level.epochs {
            stats.push(trainer.train_epoch());
        }
        history.push(LevelStats {
            name: level.name.clone(),
            epochs: stats,
        });
        model = trainer.into_model();
    }
    (model, history)
}

/// Fine-tune an already-trained model on a new setting for a few epochs
/// (the paper's transfer experiments: medium→large, large→x-large,
/// simulator→real platform).
pub fn fine_tune<P: CoarsePlacer + Clone + Sync>(
    model: CoarsenModel,
    placer: &P,
    level: &CurriculumLevel,
    options: &TrainOptions,
) -> (CoarsenModel, LevelStats) {
    let (m, mut h) = train_curriculum(model, placer, std::slice::from_ref(level), options);
    (m, h.pop().expect("one level trained"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoarsenConfig;
    use crate::pipeline::MetisCoarsePlacer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spg_gen::{DatasetSpec, Setting};

    fn level(setting: Setting, n: usize, epochs: usize) -> CurriculumLevel {
        let spec = DatasetSpec::scaled_down(setting);
        CurriculumLevel {
            name: spec.name.clone(),
            graphs: (0..n as u64)
                .map(|s| spg_gen::generate_graph(&spec, s))
                .collect(),
            cluster: spec.cluster(),
            source_rate: spec.source_rate,
            epochs,
        }
    }

    #[test]
    fn curriculum_trains_through_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let levels = vec![level(Setting::Small, 2, 2), level(Setting::Medium, 2, 1)];
        let opts = TrainOptions::new().metis_guided(false);
        let (trained, history) =
            train_curriculum(model, &MetisCoarsePlacer::new(3), &levels, &opts);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].epochs.len(), 2);
        assert_eq!(history[1].epochs.len(), 1);
        assert!(trained.num_parameters() > 0);
    }

    #[test]
    fn fine_tune_runs_one_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let opts = TrainOptions::new().metis_guided(true);
        let (_m, stats) = fine_tune(
            model,
            &MetisCoarsePlacer::new(4),
            &level(Setting::Small, 2, 1),
            &opts,
        );
        assert_eq!(stats.epochs.len(), 1);
    }
}
