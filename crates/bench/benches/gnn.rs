//! Neural microbenches: GNN forward pass, full forward+backward training
//! step, and one REINFORCE rollout (coarsen → partition → simulate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::policy::{CoarseningPolicy, DecodeMode};
use spg_core::{CoarsenConfig, CoarsenModel};
use spg_gen::{DatasetSpec, Setting};
use spg_graph::{GraphFeatures, TupleRates};
use spg_nn::Tape;

fn bench_gnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn");
    group.sample_size(20);

    for setting in [Setting::Small, Setting::Medium, Setting::Large] {
        let spec = DatasetSpec::scaled_down(setting);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 13);
        let rates = TupleRates::compute(&g, spec.source_rate);
        let feats = GraphFeatures::extract_with_rates(&g, &cluster, &rates);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
        let label = format!("{}-{}n", setting.slug(), g.num_nodes());

        group.bench_with_input(BenchmarkId::new("forward", &label), &g, |b, g| {
            b.iter(|| std::hint::black_box(model.predict_probs_with_features(g, &feats)))
        });

        group.bench_with_input(BenchmarkId::new("forward_backward", &label), &g, |b, g| {
            let actions: Vec<f32> = (0..g.num_edges()).map(|e| (e % 2) as f32).collect();
            b.iter(|| {
                let mut tape = Tape::new();
                let logits = model.forward(&mut tape, g, &feats).expect("edges");
                let ll = tape.bernoulli_log_prob(logits, &actions);
                model.params().zero_grad();
                tape.backward(ll);
                std::hint::black_box(tape.len())
            })
        });

        group.bench_with_input(BenchmarkId::new("rollout_reward", &label), &g, |b, g| {
            let probs = model.predict_probs_with_features(g, &feats);
            let policy = CoarseningPolicy::from_config(&model.config);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| {
                let decisions = policy.decode(&probs, DecodeMode::Sample, &mut rng);
                let c = policy.apply(g, &rates, &cluster, &decisions, &probs);
                let w = c.coarse.to_weighted();
                let mut prng = ChaCha8Rng::seed_from_u64(2);
                let part = spg_partition::kway_partition(
                    &w,
                    cluster.devices.min(c.coarse.num_nodes().max(1)),
                    &spg_partition::PartitionConfig::default(),
                    &mut prng,
                );
                let placement =
                    spg_graph::Placement::lift(&spg_graph::Placement::new(part), &c.node_map);
                std::hint::black_box(spg_sim::reward::relative_throughput_with_rates(
                    g, &cluster, &placement, &rates,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gnn);
criterion_main!(benches);
