//! Partitioner microbenches: k-way partitioning cost vs graph size and
//! the FM-refinement ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_gen::{DatasetSpec, Setting};
use spg_graph::WeightedGraph;
use spg_partition::{kway_partition, PartitionConfig};

fn weighted(setting: Setting, seed: u64) -> WeightedGraph {
    let spec = DatasetSpec::scaled_down(setting);
    let g = spg_gen::generate_graph(&spec, seed);
    WeightedGraph::from_stream(&g, spec.source_rate)
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_partition");
    group.sample_size(20);

    for setting in [
        Setting::Small,
        Setting::Medium,
        Setting::Large,
        Setting::XLarge,
    ] {
        let w = weighted(setting, 3);
        group.bench_with_input(
            BenchmarkId::new("k10", format!("{}-{}n", setting.slug(), w.num_nodes())),
            &w,
            |b, w| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                b.iter(|| {
                    std::hint::black_box(kway_partition(
                        w,
                        10,
                        &PartitionConfig::default(),
                        &mut rng,
                    ))
                })
            },
        );
    }

    // Refinement ablation: same graph, refinement on/off.
    let w = weighted(Setting::Large, 5);
    for (name, cfg) in [
        ("refine-on", PartitionConfig::default()),
        (
            "refine-off",
            PartitionConfig {
                refine: false,
                ..Default::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "large"), &w, |b, w| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| std::hint::black_box(kway_partition(w, 10, &cfg, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
