//! Criterion companion to Table III: inference latency per graph for each
//! allocation method at two graph scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_baselines::{GdpLite, GraphEncDec, Hierarchical};
use spg_core::pipeline::MetisCoarsePlacer;
use spg_core::{CoarsenAllocator, CoarsenConfig, CoarsenModel};
use spg_gen::{DatasetSpec, Setting};
use spg_graph::{Allocator, StreamGraph};
use spg_partition::MetisAllocator;

fn graph_for(setting: Setting) -> (StreamGraph, spg_graph::ClusterSpec, f64) {
    let spec = DatasetSpec::scaled_down(setting);
    (
        spg_gen::generate_graph(&spec, 7),
        spec.cluster(),
        spec.source_rate,
    )
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_time");
    group.sample_size(20);

    for setting in [Setting::Medium, Setting::Large] {
        let (g, cluster, rate) = graph_for(setting);
        let mut rng = ChaCha8Rng::seed_from_u64(0);

        let metis = MetisAllocator::new(1);
        let coarsen = CoarsenAllocator::new(
            CoarsenModel::new(CoarsenConfig::default(), &mut rng),
            MetisCoarsePlacer::new(2),
        );
        let encdec = GraphEncDec::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let gdp = GdpLite::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let hier = Hierarchical::new(&CoarsenConfig::default(), 25, cluster.devices, &mut rng);

        let methods: Vec<(&str, &dyn Allocator)> = vec![
            ("Coarsen+Metis", &coarsen),
            ("Metis", &metis),
            ("Hierarchical", &hier),
            ("GDP", &gdp),
            ("Graph-enc-dec", &encdec),
        ];
        for (name, alloc) in methods {
            group.bench_with_input(BenchmarkId::new(name, setting.slug()), &g, |b, g| {
                b.iter(|| std::hint::black_box(alloc.allocate(g, &cluster, rate)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
