//! Simulator microbenches: analytic bottleneck model vs discrete-time
//! simulation (the speed asymmetry that makes RL training feasible — the
//! paper spent 98 of 108 minutes per epoch inside CEPSim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spg_gen::{DatasetSpec, Setting};
use spg_graph::Placement;
use spg_sim::des::{simulate_des, DesConfig};

fn bench_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    for setting in [Setting::Small, Setting::Medium, Setting::Large] {
        let spec = DatasetSpec::scaled_down(setting);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 9);
        let p = Placement::new(
            (0..g.num_nodes() as u32)
                .map(|v| v % cluster.devices as u32)
                .collect(),
        );

        group.bench_with_input(BenchmarkId::new("analytic", setting.slug()), &g, |b, g| {
            b.iter(|| {
                std::hint::black_box(spg_sim::analytic::simulate(
                    g,
                    &cluster,
                    &p,
                    spec.source_rate,
                ))
            })
        });

        // Shorter DES run for benching: small fixed blocks with the
        // adaptive extension capped so the bench measures the kernel,
        // not convergence patience.
        let cfg = DesConfig {
            dt: 1e-3,
            warmup_steps: 1000,
            measure_steps: 1000,
            max_measure_blocks: 1,
            ..DesConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("discrete_time", setting.slug()),
            &g,
            |b, g| {
                b.iter(|| {
                    std::hint::black_box(simulate_des(g, &cluster, &p, spec.source_rate, &cfg))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
