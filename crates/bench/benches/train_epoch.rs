//! REINFORCE train-epoch throughput at 1 vs N rollout workers, plus the
//! blocked matmul kernel rate. Besides the usual stdout report, writes
//! `BENCH_train.json` at the workspace root with ns/epoch per worker
//! count and the matmul GFLOP/s, so perf can be tracked across PRs.
//!
//! The worker counts share one RNG scheme (seed-per-sample), so every
//! row of this bench computes bitwise-identical training trajectories —
//! the comparison isolates scheduling cost/benefit only.

use criterion::{black_box, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::{
    CoarsenConfig, CoarsenModel, MetisCoarsePlacer, ReinforceTrainer, TelemetrySink, TrainOptions,
};
use spg_gen::{DatasetSpec, Setting};
use spg_graph::StreamGraph;
use spg_nn::quant::{gemm_i8, quantize_rows_i8};
use spg_nn::{MatmulMode, Matrix};
use std::path::Path;

const MATMUL_DIM: usize = 128;

fn make_trainer(num_workers: usize) -> ReinforceTrainer<MetisCoarsePlacer> {
    make_trainer_with_sink(num_workers, TelemetrySink::disabled())
}

fn make_trainer_with_sink(
    num_workers: usize,
    sink: TelemetrySink,
) -> ReinforceTrainer<MetisCoarsePlacer> {
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let cluster = spec.cluster();
    let graphs: Vec<StreamGraph> = (0..6u64)
        .map(|s| spg_gen::generate_graph(&spec, s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    ReinforceTrainer::builder(model, MetisCoarsePlacer::new(5))
        .graphs(graphs)
        .cluster(cluster)
        .source_rate(spec.source_rate)
        .options(
            TrainOptions::new()
                .metis_guided(false)
                .seed(11)
                .num_workers(num_workers),
        )
        .telemetry(sink)
        .build()
}

fn bench_train_epoch(c: &mut Criterion, worker_counts: &[usize]) {
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    for &w in worker_counts {
        group.bench_with_input(BenchmarkId::new("workers", w), &w, |b, &w| {
            let mut t = make_trainer(w);
            b.iter(|| black_box(t.train_epoch()))
        });
    }
    // Telemetry overhead row: identical training, events discarded into a
    // null writer. Compare against `workers/1` — the budget is <5%.
    group.bench_function(BenchmarkId::new("telemetry", 1), |b| {
        let sink = TelemetrySink::to_writer(Box::new(std::io::sink()));
        let mut t = make_trainer_with_sink(1, sink);
        b.iter(|| black_box(t.train_epoch()))
    });
    group.finish();
}

fn matmul_operands(n: usize, k: usize, m: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_vec(
        n,
        k,
        (0..n * k).map(|i| ((i % 17) as f32 - 8.0) * 0.1).collect(),
    );
    let b = Matrix::from_vec(
        k,
        m,
        (0..k * m).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect(),
    );
    (a, b)
}

fn bench_matmul(c: &mut Criterion) {
    let n = MATMUL_DIM;
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    // Square kernel-rate rows, strict vs fast-math (the `f32/128x128` id
    // is the key scripts/ci.sh's perf gate tracks across PRs).
    let (a, b) = matmul_operands(n, n, n);
    group.bench_function(BenchmarkId::new("f32", format!("{n}x{n}")), |bch| {
        bch.iter(|| black_box(a.matmul_with_mode(&b, MatmulMode::Strict)))
    });
    group.bench_function(BenchmarkId::new("f32-fast", format!("{n}x{n}")), |bch| {
        bch.iter(|| black_box(a.matmul_with_mode(&b, MatmulMode::Fast)))
    });
    // The shapes the inference path actually runs: [nodes x in]·[in x
    // hidden] of the encoder input projection and the per-hop update at
    // default config dims (ragged, not multiple-of-8 friendly).
    for (rows, cols, hidden) in [(320usize, 28usize, 24usize), (160, 48, 24)] {
        let (a, b) = matmul_operands(rows, cols, hidden);
        group.bench_function(
            BenchmarkId::new("f32", format!("{rows}x{cols}x{hidden}")),
            |bch| bch.iter(|| black_box(a.matmul_with_mode(&b, MatmulMode::Strict))),
        );
    }
    // Integer-accumulated kernel rate of the quantized serve path
    // (`spg serve --precision int8`): the i8×i8→i32 gemm on
    // pre-quantized operands, deterministic at any speed.
    {
        let (a, b) = matmul_operands(n, n, n);
        let mut bt = vec![0.0f32; n * n];
        for r in 0..n {
            for c in 0..n {
                bt[c * n + r] = b.data[r * n + c];
            }
        }
        let (mut a_q, mut a_scale) = (Vec::new(), Vec::new());
        let (mut bt_q, mut bt_scale) = (Vec::new(), Vec::new());
        quantize_rows_i8(&a.data, n, n, &mut a_q, &mut a_scale);
        quantize_rows_i8(&bt, n, n, &mut bt_q, &mut bt_scale);
        let mut out = vec![0i32; n * n];
        group.bench_function(BenchmarkId::new("int8", format!("{n}x{n}")), |bch| {
            bch.iter(|| {
                gemm_i8(&a_q, &bt_q, &mut out, n, n, n);
                black_box(&out);
            })
        });
    }
    group.finish();
}

/// `NxK` (square-output `NxKxN` shorthand for the legacy `128x128` id) or
/// `NxKxM` dims from a `matmul/<kind>/<shape>` bench id.
fn matmul_flops(id: &str) -> Option<f64> {
    let shape = id.rsplit('/').next()?;
    let dims: Vec<f64> = shape
        .split('x')
        .map(|d| d.parse().ok())
        .collect::<Option<_>>()?;
    match dims.as_slice() {
        [n, k] => Some(2.0 * n * k * n),
        [n, k, m] => Some(2.0 * n * k * m),
        _ => None,
    }
}

fn emit_json(c: &Criterion, path: &Path) {
    let mut lines = Vec::new();
    for r in &c.results {
        let mut fields = format!("\"ns_per_iter\": {:.1}", r.ns_per_iter);
        if r.id.starts_with("matmul/") {
            if let Some(flops) = matmul_flops(&r.id) {
                fields.push_str(&format!(", \"gflops\": {:.3}", flops / r.ns_per_iter));
            }
        }
        lines.push(format!("  \"{}\": {{ {} }}", r.id, fields));
    }
    let json = format!("{{\n{}\n}}\n", lines.join(",\n"));
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn main() {
    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 4];
    if max > 1 && max != 4 {
        worker_counts.push(max);
    }

    let mut c = Criterion::default();
    bench_train_epoch(&mut c, &worker_counts);
    bench_matmul(&mut c);

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    emit_json(&c, &root.join("BENCH_train.json"));
}
