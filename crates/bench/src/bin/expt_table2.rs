//! Table II — ablation study at 5K/s, 5 devices, 100–200 nodes:
//!
//! * Metis (baseline)
//! * Our best model (Coarsen+Metis)
//! * w/o edge features in the graph encoder
//! * w/o edge features in the edge-collapsing head
//! * Coarsen+Graph-enc-dec (swap the placer)
//! * Coarsen-only (no partitioning module)
//! * Graph-enc-dec (direct placement)
//!
//! Run: `cargo run --release -p spg-bench --bin expt_table2`

use spg_core::pipeline::CoarsenOnlyAllocator;
use spg_core::{CoarsenAllocator, CoarsenConfig};
use spg_eval::{evaluate_allocator, render_table, MethodResult, Protocol};
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::MetisAllocator;

fn renamed(mut r: MethodResult, name: &str) -> MethodResult {
    r.name = name.to_string();
    r
}

fn main() {
    let protocol = Protocol::from_env();
    let setting = Setting::MediumFiveDevices;
    let (_, test) = protocol.datasets(setting);
    eprintln!("[table2] {} test graphs", test.graphs.len());

    let metis = MetisAllocator::new(protocol.seed);
    let full = spg_bench::coarsen_metis(&protocol, setting, &CoarsenConfig::default(), "t2-full");
    let no_enc = spg_bench::coarsen_metis(
        &protocol,
        setting,
        &CoarsenConfig::without_edge_encoding(),
        "t2-noenc",
    );
    let no_head = spg_bench::coarsen_metis(
        &protocol,
        setting,
        &CoarsenConfig::without_edge_collapse_features(),
        "t2-nohead",
    );
    let coarsen_encdec = CoarsenAllocator::new(
        protocol.trained_coarsen_model(
            setting,
            &CoarsenConfig::default(),
            &Default::default(),
            "t2-full",
        ),
        spg_bench::trained_encdec(&protocol, setting),
    );
    let coarsen_only = CoarsenOnlyAllocator {
        model: protocol.trained_coarsen_model(
            setting,
            &CoarsenConfig::default(),
            &Default::default(),
            "t2-full",
        ),
    };
    let encdec = spg_bench::trained_encdec(&protocol, setting);

    let results = vec![
        evaluate_allocator(&metis as &dyn Allocator, &test),
        renamed(
            evaluate_allocator(&full as &dyn Allocator, &test),
            "Our best model (Coarsen+Metis)",
        ),
        renamed(
            evaluate_allocator(&no_enc as &dyn Allocator, &test),
            "Our best model w/o edge-encoding",
        ),
        renamed(
            evaluate_allocator(&no_head as &dyn Allocator, &test),
            "Our best model w/o edge-collapsing",
        ),
        evaluate_allocator(&coarsen_encdec as &dyn Allocator, &test),
        evaluate_allocator(&coarsen_only as &dyn Allocator, &test),
        evaluate_allocator(&encdec as &dyn Allocator, &test),
    ];
    println!(
        "{}",
        render_table(
            "Table II: ablations (5K/s, 5 devices, 100~200 nodes)",
            &results
        )
    );
}
