//! Table III — average inference time per graph (seconds) for datasets
//! with 100–200 and 400–500 nodes. The paper's shape: Metis is milliseconds,
//! the coarsening pipeline is a fraction of a second, sequential neural
//! decoders (Graph-enc-dec, GDP) are the slowest.
//!
//! Wall-clock timing with `std::time::Instant`; the Criterion bench
//! `inference_time` measures the same operations with statistical rigor.
//!
//! Run: `cargo run --release -p spg-bench --bin expt_table3`

use spg_core::CoarsenConfig;
use spg_eval::Protocol;
use spg_gen::Setting;
use spg_graph::serialize::Dataset;
use spg_graph::Allocator;
use spg_partition::MetisAllocator;
use std::time::Instant;

fn mean_inference_secs(alloc: &dyn Allocator, ds: &Dataset) -> f64 {
    let start = Instant::now();
    for g in &ds.graphs {
        let p = alloc.allocate(g, &ds.cluster, ds.source_rate);
        std::hint::black_box(p);
    }
    start.elapsed().as_secs_f64() / ds.graphs.len() as f64
}

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();

    let mut columns = Vec::new();
    for setting in [Setting::Medium, Setting::Large] {
        let (_, test) = protocol.datasets(setting);
        eprintln!(
            "[table3] timing on {} ({} graphs)",
            setting.slug(),
            test.graphs.len()
        );

        let metis = MetisAllocator::new(protocol.seed);
        let ours =
            spg_bench::coarsen_metis(&protocol, setting, &cfg, &format!("t3-{}", setting.slug()));
        let hier = spg_bench::trained_hier(&protocol, setting);
        let gdp = spg_bench::trained_gdp(&protocol, setting);
        let encdec = spg_bench::trained_encdec(&protocol, setting);

        let rows: Vec<(&str, f64)> = vec![
            ("Coarsen+Metis", mean_inference_secs(&ours, &test)),
            ("Metis", mean_inference_secs(&metis, &test)),
            ("Hierarchical", mean_inference_secs(&hier, &test)),
            ("GDP", mean_inference_secs(&gdp, &test)),
            ("Graph-enc-dec", mean_inference_secs(&encdec, &test)),
        ];
        columns.push((setting.slug(), rows));
    }

    println!("## Table III: average inference time (seconds per graph)");
    print!("{:<16}", "method");
    for (slug, _) in &columns {
        print!(" {slug:>14}");
    }
    println!();
    for i in 0..columns[0].1.len() {
        print!("{:<16}", columns[0].1[i].0);
        for (_, rows) in &columns {
            print!(" {:>14.4}", rows[i].1);
        }
        println!();
    }
}
