//! Figure 1 — the motivating comparison: throughput CDFs of Metis vs a
//! graph-encoder-decoder on medium graphs (100–200 nodes). The paper's
//! point: the learned direct-placement model that wins on small graphs
//! falls behind the classical partitioner once graphs grow.
//!
//! Run: `cargo run --release -p spg-bench --bin expt_fig1`
//! (`SPG_SCALE=paper` for full size).

use spg_eval::{evaluate_allocator, render_cdf_series, render_table, Protocol};
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::MetisAllocator;

fn main() {
    let protocol = Protocol::from_env();
    let setting = Setting::Medium;
    let (_, test) = protocol.datasets(setting);
    eprintln!(
        "[fig1] medium graphs: {} test graphs, {} devices, rate {}/s",
        test.graphs.len(),
        test.cluster.devices,
        test.source_rate
    );

    let metis = MetisAllocator::new(protocol.seed);
    let encdec = spg_bench::trained_encdec(&protocol, setting);

    let results = vec![
        evaluate_allocator(&metis as &dyn Allocator, &test),
        evaluate_allocator(&encdec as &dyn Allocator, &test),
    ];

    println!(
        "{}",
        render_table("Figure 1: Metis vs Graph-enc-dec (medium graphs)", &results)
    );
    println!("{}", render_cdf_series(&results, 20));
}
