//! Figure 9 — data saturation rates of coarsened-graph edges: Metis's
//! heavy-edge-matching coarsening vs the learned coarsening model. The
//! paper's claim: the learned model internalises the heavy flows, so the
//! *remaining* coarse edges have lower saturation.
//!
//! Run: `cargo run --release -p spg-bench --bin expt_fig9`

use spg_core::CoarsenConfig;
use spg_eval::Protocol;
use spg_gen::Setting;
use spg_graph::{Coarsening, TupleRates, WeightedGraph};
use spg_sim::metrics::{coarse_edge_saturations, histogram, Summary};

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();
    let setting = Setting::Medium;
    let (_, test) = protocol.datasets(setting);

    let ours = spg_bench::coarsen_metis(&protocol, setting, &cfg, "f9");

    let mut ours_sats: Vec<f64> = Vec::new();
    let mut metis_sats: Vec<f64> = Vec::new();
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(protocol.seed);

    for g in &test.graphs {
        // Learned coarsening.
        let c = ours.coarsen(g, &test.cluster, test.source_rate);
        ours_sats.extend(coarse_edge_saturations(&c.coarse, &test.cluster));

        // Metis coarsening phase, matched to the same coarse size.
        let rates = TupleRates::compute(g, test.source_rate);
        let w = WeightedGraph::from_stream_with_rates(g, &rates);
        let target = c.coarse.num_nodes().max(2);
        let h = spg_partition::coarsen::coarsen_to(&w, target, None, &mut rng);
        // Map the hierarchy down to a node map on the original graph.
        let coarsest_n = h.coarsest().num_nodes();
        let coarse_ids: Vec<u32> = (0..coarsest_n as u32).collect();
        let node_map = h.project_to_finest(&coarse_ids);
        let mc = Coarsening::from_node_map(g, &rates, node_map, coarsest_n);
        metis_sats.extend(coarse_edge_saturations(&mc.coarse, &test.cluster));
    }

    println!("## Fig. 9: saturation of coarse edges (traffic / bandwidth)");
    for (name, sats) in [("Coarsening model", &ours_sats), ("Metis", &metis_sats)] {
        let s = Summary::of(sats);
        println!(
            "{name:<20} edges {:>6}  mean {:.4}  std {:.4}  max {:.4}",
            s.n, s.mean, s.std, s.max
        );
    }

    // Histogram series (the figure's distribution comparison).
    let max_sat = ours_sats
        .iter()
        .chain(metis_sats.iter())
        .copied()
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let bins = 10;
    println!(
        "\nsaturation-bin  model  metis   (bin width {:.4})",
        max_sat / bins as f64
    );
    let ho = histogram(&ours_sats, 0.0, max_sat, bins);
    let hm = histogram(&metis_sats, 0.0, max_sat, bins);
    for i in 0..bins {
        println!(
            "{:>12.4} {:>6} {:>6}",
            (i as f64 + 0.5) * max_sat / bins as f64,
            ho[i],
            hm[i]
        );
    }
}
