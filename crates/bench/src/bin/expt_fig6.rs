//! Figure 6 — generalizability to larger unseen graphs.
//!
//! * (a) models trained on medium graphs (100–200 nodes, 10 devices),
//!   evaluated on large graphs (400–500 nodes, 10 devices), against Metis
//!   and the learned direct-placement baselines (also transferred).
//! * (b) curriculum ablation on the large setting: Coarsen-Fromscratch,
//!   Coarsen-Fromscratch+Metis-sample, transfer-from-medium (no
//!   fine-tuning), and the size curriculum.
//! * (c) transfer from large to x-large (1000–2000 nodes, 20 devices).
//!
//! Run: `cargo run --release -p spg-bench --bin expt_fig6`

use spg_core::{CoarsenConfig, TrainOptions};
use spg_eval::{evaluate_allocator, render_cdf_series, render_table, MethodResult, Protocol};
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::MetisAllocator;

fn renamed(mut r: MethodResult, name: &str) -> MethodResult {
    r.name = name.to_string();
    r
}

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();

    // ---- (a) medium -> large transfer ---------------------------------
    {
        let (_, test) = protocol.datasets(Setting::Large);
        eprintln!("[fig6a] eval on {} large graphs", test.graphs.len());
        let metis = MetisAllocator::new(protocol.seed);
        // All learned models trained on the medium setting only.
        let encdec = spg_bench::trained_encdec(&protocol, Setting::Medium);
        let gdp = spg_bench::trained_gdp(&protocol, Setting::Medium);
        let ours_medium = spg_bench::coarsen_metis(&protocol, Setting::Medium, &cfg, "f6-med");

        // NOTE: Graph-enc-dec/GDP are built for 10 devices; Medium and
        // Large both use 10 devices, so direct transfer is well-defined.
        let results = vec![
            evaluate_allocator(&metis as &dyn Allocator, &test),
            renamed(
                evaluate_allocator(&encdec as &dyn Allocator, &test),
                "Graph-enc-dec (trained on medium)",
            ),
            renamed(
                evaluate_allocator(&gdp as &dyn Allocator, &test),
                "GDP (trained on medium)",
            ),
            renamed(
                evaluate_allocator(&ours_medium as &dyn Allocator, &test),
                "Coarsen+Metis (trained on medium)",
            ),
        ];
        println!(
            "{}",
            render_table("Fig. 6(a) medium-trained models on large graphs", &results)
        );
        println!("{}", render_cdf_series(&results, 20));
    }

    // ---- (b) curriculum ablation on large -----------------------------
    {
        let (_, test) = protocol.datasets(Setting::Large);
        let metis = MetisAllocator::new(protocol.seed);

        // From scratch, no Metis guide.
        let scratch_model = protocol.trained_coarsen_model(
            Setting::Large,
            &cfg,
            &TrainOptions::new().metis_guided(false),
            "f6-scratch",
        );
        let scratch = spg_core::CoarsenAllocator::new(
            scratch_model,
            spg_core::pipeline::MetisCoarsePlacer::new(protocol.seed ^ 0x41),
        );
        // From scratch with Metis-guided samples.
        let guided = spg_bench::coarsen_metis(&protocol, Setting::Large, &cfg, "f6-guided");
        // Transfer from medium without fine-tuning.
        let transfer = spg_bench::coarsen_metis(&protocol, Setting::Medium, &cfg, "f6-med");
        // Size curriculum medium -> large.
        let curriculum = spg_bench::curriculum_coarsen_metis(
            &protocol,
            &[Setting::Medium, Setting::Large],
            &cfg,
            "f6-curr",
        );

        let results = vec![
            evaluate_allocator(&metis as &dyn Allocator, &test),
            renamed(
                evaluate_allocator(&scratch as &dyn Allocator, &test),
                "Coarsen-Fromscratch",
            ),
            renamed(
                evaluate_allocator(&guided as &dyn Allocator, &test),
                "Coarsen-Fromscratch+Metis-sample",
            ),
            renamed(
                evaluate_allocator(&transfer as &dyn Allocator, &test),
                "Coarsen (transfer, no fine-tune)",
            ),
            renamed(
                evaluate_allocator(&curriculum as &dyn Allocator, &test),
                "Coarsen (+curriculum)",
            ),
        ];
        println!(
            "{}",
            render_table("Fig. 6(b) curriculum ablation on large graphs", &results)
        );
        println!("{}", render_cdf_series(&results, 20));
    }

    // ---- (c) large -> x-large transfer ---------------------------------
    {
        let (_, test) = protocol.datasets(Setting::XLarge);
        eprintln!("[fig6c] eval on {} x-large graphs", test.graphs.len());
        let metis = MetisAllocator::new(protocol.seed);
        let transfer = spg_bench::coarsen_metis(&protocol, Setting::Large, &cfg, "f6-large");
        let curriculum = spg_bench::curriculum_coarsen_metis(
            &protocol,
            &[Setting::Medium, Setting::Large, Setting::XLarge],
            &cfg,
            "f6c-curr",
        );
        let results = vec![
            evaluate_allocator(&metis as &dyn Allocator, &test),
            renamed(
                evaluate_allocator(&transfer as &dyn Allocator, &test),
                "Coarsen+Metis (trained on large)",
            ),
            renamed(
                evaluate_allocator(&curriculum as &dyn Allocator, &test),
                "Coarsen+Metis (+curriculum)",
            ),
        ];
        println!(
            "{}",
            render_table("Fig. 6(c) transfer to x-large graphs", &results)
        );
        println!("{}", render_cdf_series(&results, 20));
    }
}
