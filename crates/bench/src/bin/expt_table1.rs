//! Table I — AUC and relative improvement w.r.t. Metis across all
//! settings:
//!
//! * small (10K/s, 5 devices, 4–26 nodes): Metis, Graph-enc-dec,
//!   Coarsen+Metis
//! * medium (5K/s, 5 devices): Metis, Coarsen+Metis, Coarsen+Graph-enc-dec
//! * medium (10K/s, 10 devices): same line-up
//! * large (10K/s, 10 devices): same line-up
//! * x-large (10K/s, 20 devices): Metis, Coarsen+Metis direct,
//!   Coarsen+Metis (+curriculum), Coarsen+Metis-oracle (+curriculum)
//!
//! Run: `cargo run --release -p spg-bench --bin expt_table1`

use spg_core::{CoarsenAllocator, CoarsenConfig};
use spg_eval::{evaluate_allocator, render_table, MethodResult, Protocol};
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::{MetisAllocator, MetisOracle};

fn block(title: &str, results: Vec<MethodResult>) {
    println!("{}", render_table(title, &results));
}

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();

    // ---- Small graphs -------------------------------------------------
    {
        let setting = Setting::Small;
        let (_, test) = protocol.datasets(setting);
        let metis = MetisAllocator::new(protocol.seed);
        let encdec = spg_bench::trained_encdec(&protocol, setting);
        let ours = spg_bench::coarsen_metis(&protocol, setting, &cfg, "t1-small");
        block(
            "Table I (10K/s, 5 devices, 4~26 nodes)",
            vec![
                evaluate_allocator(&metis as &dyn Allocator, &test),
                evaluate_allocator(&encdec as &dyn Allocator, &test),
                evaluate_allocator(&ours as &dyn Allocator, &test),
            ],
        );
    }

    // ---- Medium blocks -------------------------------------------------
    for (setting, title) in [
        (
            Setting::MediumFiveDevices,
            "Table I (5K/s, 5 devices, 100~200 nodes)",
        ),
        (
            Setting::Medium,
            "Table I (10K/s, 10 devices, 100~200 nodes)",
        ),
        (Setting::Large, "Table I (10K/s, 10 devices, 400~500 nodes)"),
    ] {
        let (_, test) = protocol.datasets(setting);
        let metis = MetisAllocator::new(protocol.seed);
        let ours =
            spg_bench::coarsen_metis(&protocol, setting, &cfg, &format!("t1-{}", setting.slug()));
        let encdec_placer = spg_bench::trained_encdec(&protocol, setting);
        let ours_encdec = CoarsenAllocator::new(
            protocol.trained_coarsen_model(
                setting,
                &cfg,
                &Default::default(),
                &format!("t1-{}", setting.slug()),
            ),
            encdec_placer,
        );
        block(
            title,
            vec![
                evaluate_allocator(&metis as &dyn Allocator, &test),
                evaluate_allocator(&ours as &dyn Allocator, &test),
                evaluate_allocator(&ours_encdec as &dyn Allocator, &test),
            ],
        );
    }

    // ---- X-large with curriculum ---------------------------------------
    {
        let setting = Setting::XLarge;
        let (_, test) = protocol.datasets(setting);
        let metis = MetisAllocator::new(protocol.seed);
        // Direct prediction: model trained on large graphs, applied here.
        let direct = spg_bench::coarsen_metis(&protocol, Setting::Large, &cfg, "t1-large");
        // Curriculum: medium -> large -> x-large.
        let curriculum = spg_bench::curriculum_coarsen_metis(
            &protocol,
            &[Setting::Medium, Setting::Large, Setting::XLarge],
            &cfg,
            "t1-xl",
        );
        let oracle_pipeline = spg_core::CoarsenOracleAllocator::new(
            spg_bench::curriculum_coarsen_metis(
                &protocol,
                &[Setting::Medium, Setting::Large, Setting::XLarge],
                &cfg,
                "t1-xl",
            )
            .model,
            protocol.seed ^ 0x77,
        );
        let oracle = MetisOracle::new(protocol.seed ^ 0x78);
        block(
            "Table I (10K/s, 20 devices, 1K~2K nodes)",
            vec![
                evaluate_allocator(&metis as &dyn Allocator, &test),
                evaluate_allocator(&direct as &dyn Allocator, &test),
                evaluate_allocator(&curriculum as &dyn Allocator, &test),
                evaluate_allocator(&oracle_pipeline as &dyn Allocator, &test),
                evaluate_allocator(&oracle as &dyn Allocator, &test),
            ],
        );
    }
}
