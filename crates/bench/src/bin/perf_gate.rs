//! `perf_gate` — compare a freshly measured benchmark JSON against the
//! checked-in baseline and fail CI on regressions.
//!
//! Two input shapes are understood:
//!
//! * `BENCH_train.json` style: an object of `"<bench id>": {"ns_per_iter":
//!   N, ...}` rows. Every id present in both files is compared on
//!   `ns_per_iter` (lower is better).
//! * `BENCH_serve.json` style: `--metric NAME` selects which numeric
//!   fields to compare (lower is better), e.g. `--metric
//!   latency_p50_ms`. Both the legacy flat report and the sweep format
//!   (an object of `"r<replicas>c<connections>"` rows) are accepted;
//!   sweep files compare each metric per shared row.
//!
//! A metric that got more than `--threshold` percent slower (default 25)
//! is a regression. Microbench timings on a loaded 1-core CI container
//! are too noisy for a hard gate, so when `available_parallelism() == 1`
//! regressions only produce a loud warning; `SPG_PERF_STRICT=1` forces
//! the hard failure anyway, `SPG_PERF_STRICT=0` forces warn-only.
//!
//! ```text
//! perf_gate --baseline BENCH_train.json --new /tmp/BENCH_train.json
//! perf_gate --baseline BENCH_serve.json --new /tmp/BENCH_serve.json \
//!     --metric latency_p50_ms --metric latency_p99_ms
//! ```

use serde_json::Value;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline: PathBuf,
    new: PathBuf,
    metrics: Vec<String>,
    threshold_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let (mut baseline, mut new) = (None, None);
    let mut metrics = Vec::new();
    let mut threshold_pct = 25.0;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("--{flag} needs a value"));
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("baseline")?)),
            "--new" => new = Some(PathBuf::from(value("new")?)),
            "--metric" => metrics.push(value("metric")?),
            "--threshold" => {
                threshold_pct = value("threshold")?
                    .parse()
                    .map_err(|e| format!("invalid --threshold: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: perf_gate --baseline FILE --new FILE \
                            [--metric NAME]... [--threshold PCT]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        new: new.ok_or("--new is required")?,
        metrics,
        threshold_pct,
    })
}

fn load(path: &PathBuf) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Num(text) => text.parse().ok(),
        _ => None,
    }
}

/// `(name, baseline, new)` rows to compare, lower-is-better.
fn comparisons(
    args: &Args,
    base: &Value,
    fresh: &Value,
) -> Result<Vec<(String, f64, f64)>, String> {
    let mut rows = Vec::new();
    if args.metrics.is_empty() {
        // Bench-row style: every id in both files, on ns_per_iter.
        let Value::Object(base_rows) = base else {
            return Err(format!(
                "{}: expected a JSON object",
                args.baseline.display()
            ));
        };
        for (id, row) in base_rows {
            let Some(b) = row.field("ns_per_iter").ok().and_then(num) else {
                continue;
            };
            match fresh
                .field(id)
                .ok()
                .and_then(|r| r.field("ns_per_iter").ok().and_then(num))
            {
                Some(n) => rows.push((id.clone(), b, n)),
                None => eprintln!("perf_gate: WARNING: `{id}` missing from new results"),
            }
        }
    } else {
        // `--metric` mode. Serve reports come in two shapes: one flat
        // report object, or (since replica sweeps) an object of
        // `"r<replicas>c<connections>"` rows. Row style compares every
        // row shared by both files on each metric; a row missing from
        // the new results warns instead of failing, since a sweep may
        // be trimmed on slow machines.
        let row_style = matches!(base, Value::Object(entries)
            if !entries.is_empty()
                && entries.iter().all(|(_, v)| matches!(v, Value::Object(_))));
        if row_style {
            let Value::Object(base_rows) = base else {
                unreachable!("row_style implies an object")
            };
            for (id, row) in base_rows {
                for name in &args.metrics {
                    let b = row.field(name).ok().and_then(num).ok_or_else(|| {
                        format!(
                            "{}: row `{id}` has no numeric `{name}`",
                            args.baseline.display()
                        )
                    })?;
                    match fresh
                        .field(id)
                        .ok()
                        .and_then(|r| r.field(name).ok().and_then(num))
                    {
                        Some(n) => rows.push((format!("{id}.{name}"), b, n)),
                        None => {
                            eprintln!("perf_gate: WARNING: `{id}.{name}` missing from new results")
                        }
                    }
                }
            }
        } else {
            for name in &args.metrics {
                let b =
                    base.field(name).ok().and_then(num).ok_or_else(|| {
                        format!("{}: no numeric `{name}`", args.baseline.display())
                    })?;
                let n = fresh
                    .field(name)
                    .ok()
                    .and_then(num)
                    .ok_or_else(|| format!("{}: no numeric `{name}`", args.new.display()))?;
                rows.push((name.clone(), b, n));
            }
        }
    }
    if rows.is_empty() {
        return Err("nothing to compare (no shared metrics)".to_string());
    }
    Ok(rows)
}

/// Hard-fail on regressions? `SPG_PERF_STRICT` overrides the single-core
/// heuristic in both directions.
fn strict() -> bool {
    match std::env::var("SPG_PERF_STRICT").as_deref() {
        Ok("1") => true,
        Ok("0") => false,
        _ => std::thread::available_parallelism().is_ok_and(|p| p.get() > 1),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let (base, fresh) = match (load(&args.baseline), load(&args.new)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = match comparisons(&args, &base, &fresh) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0;
    for (name, b, n) in &rows {
        let delta_pct = if *b > 0.0 { (n - b) / b * 100.0 } else { 0.0 };
        let verdict = if delta_pct > args.threshold_pct {
            regressions += 1;
            "REGRESSED"
        } else if delta_pct < 0.0 {
            "improved"
        } else {
            "ok"
        };
        println!("perf_gate: {name}: {b:.0} -> {n:.0} ({delta_pct:+.1}%) {verdict}");
    }
    if regressions == 0 {
        println!(
            "perf_gate: {} metric(s) within +{:.0}% of baseline",
            rows.len(),
            args.threshold_pct
        );
        return ExitCode::SUCCESS;
    }
    if strict() {
        eprintln!(
            "perf_gate: FAIL: {regressions} metric(s) regressed more than \
             {:.0}% vs {}",
            args.threshold_pct,
            args.baseline.display()
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "perf_gate: WARNING: {regressions} metric(s) regressed more than \
             {:.0}% vs {} — not failing (single-core or SPG_PERF_STRICT=0); \
             set SPG_PERF_STRICT=1 to enforce",
            args.threshold_pct,
            args.baseline.display()
        );
        ExitCode::SUCCESS
    }
}
