//! Figure 5 — throughput CDFs on medium graphs (100–200 nodes) under
//! three (tuple rate, devices) settings, comparing Metis, Graph-enc-dec,
//! GDP, Hierarchical, and Coarsen+Metis / Coarsen+Graph-enc-dec.
//!
//! Run: `cargo run --release -p spg-bench --bin expt_fig5`

use spg_core::{CoarsenAllocator, CoarsenConfig};
use spg_eval::{evaluate_allocator, render_cdf_series, render_table, Protocol};
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::MetisAllocator;

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();

    for (setting, title) in [
        (
            Setting::MediumFiveDevices,
            "Fig. 5(a) 5K/s, 5 devices, 100~200 nodes",
        ),
        (
            Setting::Medium,
            "Fig. 5(b) 10K/s, 10 devices, 100~200 nodes",
        ),
    ] {
        let (_, test) = protocol.datasets(setting);
        eprintln!("[fig5] {title}: {} test graphs", test.graphs.len());

        let metis = MetisAllocator::new(protocol.seed);
        let encdec = spg_bench::trained_encdec(&protocol, setting);
        let gdp = spg_bench::trained_gdp(&protocol, setting);
        let hier = spg_bench::trained_hier(&protocol, setting);
        let ours =
            spg_bench::coarsen_metis(&protocol, setting, &cfg, &format!("f5-{}", setting.slug()));
        let ours_encdec = CoarsenAllocator::new(
            protocol.trained_coarsen_model(
                setting,
                &cfg,
                &Default::default(),
                &format!("f5-{}", setting.slug()),
            ),
            spg_bench::trained_encdec(&protocol, setting),
        );

        let results = vec![
            evaluate_allocator(&metis as &dyn Allocator, &test),
            evaluate_allocator(&encdec as &dyn Allocator, &test),
            evaluate_allocator(&gdp as &dyn Allocator, &test),
            evaluate_allocator(&hier as &dyn Allocator, &test),
            evaluate_allocator(&ours as &dyn Allocator, &test),
            evaluate_allocator(&ours_encdec as &dyn Allocator, &test),
        ];
        println!("{}", render_table(title, &results));
        println!("{}", render_cdf_series(&results, 20));
    }
}
