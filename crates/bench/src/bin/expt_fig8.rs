//! Figure 8 — where the learned coarsening wins: throughput as a function
//! of the achieved *compression ratio* `|V| / |V_coarse|`. The paper bins
//! graphs by compression ratio and shows boxplots of Coarsen+Metis vs
//! Metis throughputs per bin; the learned model pulls ahead at ratios ≥ 4x.
//!
//! Run: `cargo run --release -p spg-bench --bin expt_fig8`

use spg_core::CoarsenConfig;
use spg_eval::stats::{bucket_by, BoxStats};
use spg_eval::Protocol;
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::MetisAllocator;

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();
    // The paper's compression-ratio analysis needs graphs with coarsening
    // headroom; use the large setting and the curriculum-trained model.
    let setting = Setting::Large;
    let (_, test) = protocol.datasets(setting);

    let ours = spg_bench::curriculum_coarsen_metis(
        &protocol,
        &[Setting::Medium, Setting::Large],
        &cfg,
        "f6-curr",
    );
    let metis = MetisAllocator::new(protocol.seed);

    let mut ratios = Vec::new();
    let mut ours_tp = Vec::new();
    let mut metis_tp = Vec::new();
    for g in &test.graphs {
        let coarsening = ours.coarsen(g, &test.cluster, test.source_rate);
        ratios.push(coarsening.compression_ratio());

        let p = ours.allocate(g, &test.cluster, test.source_rate);
        ours_tp
            .push(spg_sim::analytic::simulate(g, &test.cluster, &p, test.source_rate).throughput);
        let pm = metis.allocate(g, &test.cluster, test.source_rate);
        metis_tp
            .push(spg_sim::analytic::simulate(g, &test.cluster, &pm, test.source_rate).throughput);
    }

    // Ratio bins roughly equalising graph counts, as in the paper.
    let mut sorted = ratios.clone();
    sorted.sort_by(f64::total_cmp);
    let edges = vec![
        0.0,
        spg_eval::stats::quantile(&sorted, 0.25),
        spg_eval::stats::quantile(&sorted, 0.5),
        spg_eval::stats::quantile(&sorted, 0.75),
        f64::INFINITY,
    ];

    println!("## Fig. 8: throughput vs compression ratio (boxplot five-number summaries)");
    println!("ratio bin edges: {:?}", &edges[1..4]);
    for (name, tps) in [("Coarsen+Metis", &ours_tp), ("Metis", &metis_tp)] {
        println!("# {name}");
        let buckets = bucket_by(tps, &ratios, &edges);
        for (i, b) in buckets.iter().enumerate() {
            let s = BoxStats::of(b);
            println!(
                "bin{} (n={:>3}): min {:>8.0}  q1 {:>8.0}  med {:>8.0}  q3 {:>8.0}  max {:>8.0}",
                i, s.n, s.min, s.q1, s.median, s.q3, s.max
            );
        }
    }
}
