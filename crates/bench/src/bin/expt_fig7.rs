//! Figure 7 — the excess-device setting: large topologies with node CPU
//! utilisation and bandwidth reduced by 33%, so the optimal allocation
//! uses a *subset* of the 10 devices.
//!
//! * (a) throughput CDFs: Metis, Metis-oracle (sweeps the device count),
//!   Coarsen+Metis transferred from medium, and Coarsen+Metis fine-tuned
//!   on the excess setting.
//! * (b) histogram of the number of devices actually used per graph.
//!
//! Run: `cargo run --release -p spg-bench --bin expt_fig7`

use spg_core::CoarsenConfig;
use spg_eval::stats::count_histogram;
use spg_eval::{evaluate_allocator, render_cdf_series, render_table, MethodResult, Protocol};
use spg_gen::Setting;
use spg_graph::Allocator;
use spg_partition::{MetisAllocator, MetisOracle};

fn renamed(mut r: MethodResult, name: &str) -> MethodResult {
    r.name = name.to_string();
    r
}

fn main() {
    let protocol = Protocol::from_env();
    let cfg = CoarsenConfig::default();
    let (_, test) = protocol.datasets(Setting::ExcessDevice);
    eprintln!(
        "[fig7] excess-device setting: {} graphs, {} devices",
        test.graphs.len(),
        test.cluster.devices
    );

    let metis = MetisAllocator::new(protocol.seed);
    let oracle = MetisOracle::new(protocol.seed ^ 0x51);
    // Direct transfer from the medium setting (no fine-tuning).
    let transfer = spg_bench::coarsen_metis(&protocol, Setting::Medium, &cfg, "f7-med");
    // Fine-tuned on the excess setting (the paper's curriculum transfer).
    let finetuned = spg_bench::curriculum_coarsen_metis(
        &protocol,
        &[Setting::Medium, Setting::ExcessDevice],
        &cfg,
        "f7-ft",
    );

    // Coarsen+Metis-oracle with the fine-tuned model (the paper's best
    // configuration in this setting).
    let coarsen_oracle = spg_core::CoarsenOracleAllocator::new(
        spg_bench::curriculum_coarsen_metis(
            &protocol,
            &[Setting::Medium, Setting::ExcessDevice],
            &cfg,
            "f7-ft",
        )
        .model,
        protocol.seed ^ 0x52,
    );

    let results = vec![
        evaluate_allocator(&metis as &dyn Allocator, &test),
        evaluate_allocator(&oracle as &dyn Allocator, &test),
        renamed(
            evaluate_allocator(&transfer as &dyn Allocator, &test),
            "Coarsen+Metis (no fine-tune)",
        ),
        renamed(
            evaluate_allocator(&finetuned as &dyn Allocator, &test),
            "Coarsen+Metis+Finetuning",
        ),
        renamed(
            evaluate_allocator(&coarsen_oracle as &dyn Allocator, &test),
            "Coarsen+Metis-oracle (+curriculum)",
        ),
    ];

    println!(
        "{}",
        render_table("Fig. 7(a) excess-device throughput CDFs", &results)
    );
    println!("{}", render_cdf_series(&results, 20));

    println!("## Fig. 7(b) devices-used histogram (graphs per device count)");
    print!("{:<34}", "method");
    for d in 0..=test.cluster.devices {
        print!(" {d:>4}");
    }
    println!();
    for r in &results {
        let h = count_histogram(r.devices_used.iter().copied(), test.cluster.devices);
        print!("{:<34}", r.name);
        for c in h {
            print!(" {c:>4}");
        }
        println!();
    }

    // Device / bandwidth utilisation comparison (§VI-B's analysis).
    println!("\n## Utilisation of used devices (mean ± std over graphs)");
    for (name, alloc) in [
        ("Metis-oracle", &oracle as &dyn Allocator),
        ("Coarsen+Metis+Finetuning", &finetuned as &dyn Allocator),
    ] {
        let mut cpu = Vec::new();
        let mut bw = Vec::new();
        for g in &test.graphs {
            let p = alloc.allocate(g, &test.cluster, test.source_rate);
            let sim = spg_sim::analytic::simulate(g, &test.cluster, &p, test.source_rate);
            cpu.push(sim.mean_used_cpu_utilisation(&test.cluster));
            bw.push(sim.mean_used_bw_utilisation(&test.cluster));
        }
        let cpu_s = spg_sim::metrics::Summary::of(&cpu);
        let bw_s = spg_sim::metrics::Summary::of(&bw);
        println!(
            "{name:<34} cpu {:.2} ({:.2})   bw {:.2} ({:.2})",
            cpu_s.mean, cpu_s.std, bw_s.mean, bw_s.std
        );
    }
}
