//! # spg-bench
//!
//! The benchmark harness: one `expt_*` binary per table/figure of the
//! paper (see DESIGN.md's experiment index) plus Criterion microbenches.
//!
//! Every binary prints the same rows/series the paper reports and scales
//! with `SPG_SCALE` (`quick` default, `paper` for full-size runs).
//!
//! This library hosts the pieces the binaries share: training wrappers for
//! the learned baselines and the standard allocator line-ups.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_baselines::{GdpLite, GraphEncDec, Hierarchical, PolicyTrainOptions, PolicyTrainer};
use spg_core::pipeline::MetisCoarsePlacer;
use spg_core::{CoarsenAllocator, CoarsenConfig, TrainOptions};
use spg_eval::Protocol;
use spg_gen::Setting;

/// Epochs for the learned direct-placement baselines at the given scale.
pub fn baseline_epochs(protocol: &Protocol) -> usize {
    match protocol.scale {
        spg_eval::ExperimentScale::Quick => 4,
        spg_eval::ExperimentScale::Paper => 20,
    }
}

/// Train a Graph-enc-dec baseline on a setting's training split.
pub fn trained_encdec(protocol: &Protocol, setting: Setting) -> GraphEncDec {
    let (train, _) = protocol.datasets(setting);
    let mut rng = ChaCha8Rng::seed_from_u64(protocol.seed ^ 0xE0);
    let model = GraphEncDec::new(&CoarsenConfig::default(), train.cluster.devices, &mut rng);
    let mut trainer = PolicyTrainer::new(
        model,
        train.graphs,
        train.cluster,
        train.source_rate,
        PolicyTrainOptions {
            seed: protocol.seed ^ 0xE1,
            ..Default::default()
        },
    );
    for _ in 0..baseline_epochs(protocol) {
        trainer.train_epoch();
    }
    trainer.into_model()
}

/// Train a GDP-lite baseline.
pub fn trained_gdp(protocol: &Protocol, setting: Setting) -> GdpLite {
    let (train, _) = protocol.datasets(setting);
    let mut rng = ChaCha8Rng::seed_from_u64(protocol.seed ^ 0xD0);
    let model = GdpLite::new(&CoarsenConfig::default(), train.cluster.devices, &mut rng);
    let mut trainer = PolicyTrainer::new(
        model,
        train.graphs,
        train.cluster,
        train.source_rate,
        PolicyTrainOptions {
            seed: protocol.seed ^ 0xD1,
            ..Default::default()
        },
    );
    for _ in 0..baseline_epochs(protocol) {
        trainer.train_epoch();
    }
    trainer.into_model()
}

/// Train a Hierarchical baseline (25 groups, as in the paper).
pub fn trained_hier(protocol: &Protocol, setting: Setting) -> Hierarchical {
    let (train, _) = protocol.datasets(setting);
    let mut rng = ChaCha8Rng::seed_from_u64(protocol.seed ^ 0xB0);
    let model = Hierarchical::new(
        &CoarsenConfig::default(),
        25,
        train.cluster.devices,
        &mut rng,
    );
    let mut trainer = PolicyTrainer::new(
        model,
        train.graphs,
        train.cluster,
        train.source_rate,
        PolicyTrainOptions {
            seed: protocol.seed ^ 0xB1,
            ..Default::default()
        },
    );
    for _ in 0..baseline_epochs(protocol) {
        trainer.train_epoch();
    }
    trainer.into_model()
}

/// The standard Coarsen+Metis allocator trained on `setting`.
pub fn coarsen_metis(
    protocol: &Protocol,
    setting: Setting,
    config: &CoarsenConfig,
    tag: &str,
) -> CoarsenAllocator<MetisCoarsePlacer> {
    let model = protocol.trained_coarsen_model(setting, config, &TrainOptions::default(), tag);
    CoarsenAllocator::new(model, MetisCoarsePlacer::new(protocol.seed ^ 0x31))
}

/// Train a coarsening model through a size curriculum (§IV-C), cached like
/// [`Protocol::trained_coarsen_model`]. `settings` are trained in order;
/// later levels fine-tune the earlier weights.
pub fn curriculum_coarsen_metis(
    protocol: &Protocol,
    settings: &[Setting],
    config: &CoarsenConfig,
    tag: &str,
) -> CoarsenAllocator<MetisCoarsePlacer> {
    use spg_core::checkpoint::Checkpoint;
    std::fs::create_dir_all(&protocol.artifacts_dir).ok();
    let scale_tag = match protocol.scale {
        spg_eval::ExperimentScale::Quick => "quick",
        spg_eval::ExperimentScale::Paper => "paper",
    };
    let path = protocol
        .artifacts_dir
        .join(format!("curriculum-{tag}-{scale_tag}.json"));
    if let Ok(ck) = Checkpoint::load(&path) {
        if ck.config == *config {
            return CoarsenAllocator::new(
                ck.into_model(),
                MetisCoarsePlacer::new(protocol.seed ^ 0x31),
            );
        }
    }
    let levels: Vec<spg_core::curriculum::CurriculumLevel> = settings
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            // First level trains longest; later levels fine-tune (1-3
            // epochs in the paper).
            let epochs = if i == 0 {
                protocol.epochs()
            } else {
                protocol.epochs().div_ceil(2)
            };
            protocol.level(s, epochs)
        })
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(protocol.seed ^ 0xC11);
    let model = spg_core::CoarsenModel::new(config.clone(), &mut rng);
    let placer = MetisCoarsePlacer::new(protocol.seed ^ 0x32);
    let (model, _history) = spg_core::curriculum::train_curriculum(
        model,
        &placer,
        &levels,
        &TrainOptions::new().seed(protocol.seed ^ 0xC12),
    );
    Checkpoint::from_model(&model).save(&path).ok();
    CoarsenAllocator::new(model, MetisCoarsePlacer::new(protocol.seed ^ 0x31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_eval::ExperimentScale;

    fn tiny_protocol() -> Protocol {
        Protocol {
            scale: ExperimentScale::Quick,
            artifacts_dir: std::env::temp_dir().join("spg-bench-test"),
            seed: 3,
        }
    }

    #[test]
    fn coarsen_metis_is_buildable() {
        // One training run at quick scale must complete and produce a
        // usable allocator.
        let p = tiny_protocol();
        let alloc = coarsen_metis(&p, Setting::Small, &CoarsenConfig::default(), "test");
        let (_, test) = p.datasets(Setting::Small);
        let r = spg_eval::evaluate_allocator(&alloc as &dyn spg_graph::Allocator, &test);
        assert_eq!(r.throughputs.len(), test.graphs.len());
    }
}
