//! Throughput CDFs and the AUC score used throughout the paper's
//! evaluation (Figures 1, 5, 6, 7; Tables I, II).

/// An empirical throughput CDF.
#[derive(Debug, Clone)]
pub struct ThroughputCdf {
    sorted: Vec<f64>,
}

impl ThroughputCdf {
    /// Build from per-graph throughputs.
    pub fn new(mut throughputs: Vec<f64>) -> Self {
        throughputs.sort_by(f64::total_cmp);
        Self {
            sorted: throughputs,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of graphs with throughput ≤ x.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&t| t <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Area under the CDF over `[0, max_x]`:
    /// `∫₀^max F(t) dt = (1/n) Σᵢ (max_x − min(tᵢ, max_x))`.
    ///
    /// With `max_x` = the source tuple rate, a method whose graphs all
    /// reach full throughput scores 0; a method stuck at zero scores
    /// `max_x`. Smaller is better — exactly the paper's reading.
    pub fn auc(&self, max_x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .map(|&t| (max_x - t.min(max_x)).max(0.0))
            .sum::<f64>()
            / n
    }

    /// `(throughput, cumulative fraction)` step points for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, (i + 1) as f64 / n))
            .collect()
    }

    /// Mean throughput.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Median throughput.
    pub fn median(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.len();
        if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            0.5 * (self.sorted[n / 2 - 1] + self.sorted[n / 2])
        }
    }
}

/// Relative improvement of `auc` w.r.t. a baseline AUC (the paper's
/// "Imp. wrt Metis" column): positive when `auc` is smaller (better).
pub fn improvement_wrt(baseline_auc: f64, auc: f64) -> f64 {
    if baseline_auc == 0.0 {
        return 0.0;
    }
    (baseline_auc - auc) / baseline_auc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_equals_max_minus_mean_when_below_max() {
        let cdf = ThroughputCdf::new(vec![2000.0, 4000.0, 6000.0]);
        let auc = cdf.auc(10_000.0);
        assert!((auc - (10_000.0 - 4000.0)).abs() < 1e-9);
    }

    #[test]
    fn perfect_method_scores_zero() {
        let cdf = ThroughputCdf::new(vec![1e4; 5]);
        assert_eq!(cdf.auc(1e4), 0.0);
    }

    #[test]
    fn cdf_at_is_monotone() {
        let cdf = ThroughputCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(2.0), 0.5);
        assert_eq!(cdf.at(10.0), 1.0);
    }

    #[test]
    fn smaller_auc_means_better_throughputs() {
        let good = ThroughputCdf::new(vec![9000.0, 9500.0, 9900.0]);
        let bad = ThroughputCdf::new(vec![1000.0, 2000.0, 3000.0]);
        assert!(good.auc(1e4) < bad.auc(1e4));
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement_wrt(2000.0, 1000.0) - 0.5).abs() < 1e-12);
        assert!(improvement_wrt(2000.0, 3000.0) < 0.0);
    }

    #[test]
    fn median_and_mean() {
        let cdf = ThroughputCdf::new(vec![1.0, 3.0, 2.0]);
        assert_eq!(cdf.median(), 2.0);
        assert_eq!(cdf.mean(), 2.0);
        let even = ThroughputCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn points_are_a_step_function() {
        let cdf = ThroughputCdf::new(vec![5.0, 1.0]);
        assert_eq!(cdf.points(), vec![(1.0, 0.5), (5.0, 1.0)]);
    }
}
