//! # spg-eval
//!
//! Evaluation metrics and the experiment harness shared by every
//! table/figure regenerator in `spg-bench`:
//!
//! * [`cdf`] — throughput CDFs and the paper's Area-Under-Curve score
//!   (smaller AUC = more graphs reach high throughput).
//! * [`harness`] — run a set of allocators over a test dataset, collect
//!   per-graph throughputs, render comparison tables and ASCII CDFs.
//! * [`stats`] — quartiles/boxplots (Fig. 8) and histograms (Fig. 7b).
//! * [`protocol`] — the shared experiment protocol: dataset construction,
//!   model training with on-disk checkpoint caching, and scale selection
//!   (quick CI-sized runs vs. paper-sized runs).

pub mod cdf;
pub mod harness;
pub mod protocol;
pub mod stats;

pub use cdf::ThroughputCdf;
pub use harness::{evaluate_allocator, render_cdf_series, render_table, MethodResult};
pub use protocol::{ExperimentScale, Protocol};
