//! Running allocators over datasets and rendering comparison artifacts.

use crate::cdf::ThroughputCdf;
use spg_graph::serialize::Dataset;
use spg_graph::Allocator;

/// Per-method evaluation result on a test set.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Per-graph sustained throughputs (tuples/s).
    pub throughputs: Vec<f64>,
    /// Per-graph devices actually used (for Fig. 7b).
    pub devices_used: Vec<usize>,
    /// Source rate of the setting (the CDF x-axis maximum).
    pub source_rate: f64,
}

impl MethodResult {
    /// Throughput CDF.
    pub fn cdf(&self) -> ThroughputCdf {
        ThroughputCdf::new(self.throughputs.clone())
    }

    /// AUC over `[0, source_rate]` (smaller = better).
    pub fn auc(&self) -> f64 {
        self.cdf().auc(self.source_rate)
    }

    /// Mean throughput.
    pub fn mean_throughput(&self) -> f64 {
        self.cdf().mean()
    }
}

/// Evaluate one allocator over every graph in `ds`.
pub fn evaluate_allocator(alloc: &dyn Allocator, ds: &Dataset) -> MethodResult {
    let mut throughputs = Vec::with_capacity(ds.graphs.len());
    let mut devices_used = Vec::with_capacity(ds.graphs.len());
    for g in &ds.graphs {
        let placement = alloc.allocate(g, &ds.cluster, ds.source_rate);
        debug_assert!(placement.validate(g, ds.cluster.devices));
        let result = spg_sim::analytic::simulate(g, &ds.cluster, &placement, ds.source_rate);
        throughputs.push(result.throughput);
        devices_used.push(placement.devices_used());
    }
    MethodResult {
        name: alloc.name().to_string(),
        throughputs,
        devices_used,
        source_rate: ds.source_rate,
    }
}

/// Render the Table I-style comparison: AUC and improvement w.r.t. the
/// first row (conventionally Metis).
pub fn render_table(title: &str, results: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<34} {:>10} {:>10} {:>16}\n",
        "method", "AUC", "mean T/s", "Imp. wrt base"
    ));
    let base = results.first().map(|r| r.auc()).unwrap_or(0.0);
    for r in results {
        let auc = r.auc();
        let imp = crate::cdf::improvement_wrt(base, auc);
        out.push_str(&format!(
            "{:<34} {:>10.0} {:>10.0} {:>15.0}%\n",
            r.name,
            auc,
            r.mean_throughput(),
            imp * 100.0
        ));
    }
    out
}

/// Render CDF series (throughput, fraction) for plotting — one block per
/// method, matching the figures' curves.
pub fn render_cdf_series(results: &[MethodResult], points: usize) -> String {
    let mut out = String::new();
    for r in results {
        let cdf = r.cdf();
        out.push_str(&format!("# {}\n", r.name));
        for i in 0..=points {
            let x = r.source_rate * i as f64 / points as f64;
            out.push_str(&format!("{:.0}\t{:.3}\n", x, cdf.at(x)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_baselines::{AllOnOne, RandomPlacement};
    use spg_gen::{DatasetSpec, Setting};

    fn tiny_dataset() -> Dataset {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        spg_gen::generate_dataset(&spec, 4, 11)
    }

    #[test]
    fn evaluates_every_graph() {
        let ds = tiny_dataset();
        let r = evaluate_allocator(&RandomPlacement::new(0), &ds);
        assert_eq!(r.throughputs.len(), 4);
        assert!(r
            .throughputs
            .iter()
            .all(|&t| t >= 0.0 && t <= ds.source_rate + 1e-6));
        assert_eq!(r.devices_used.len(), 4);
    }

    #[test]
    fn table_contains_all_methods() {
        let ds = tiny_dataset();
        let results = vec![
            evaluate_allocator(&RandomPlacement::new(0), &ds),
            evaluate_allocator(&AllOnOne, &ds),
        ];
        let table = render_table("test", &results);
        assert!(table.contains("Random"));
        assert!(table.contains("All-on-one"));
        assert!(table.contains("AUC"));
    }

    #[test]
    fn cdf_series_has_requested_resolution() {
        let ds = tiny_dataset();
        let results = vec![evaluate_allocator(&AllOnOne, &ds)];
        let series = render_cdf_series(&results, 10);
        let lines: Vec<&str> = series.lines().collect();
        assert_eq!(lines.len(), 1 + 11);
        assert!(lines[0].starts_with("# "));
    }
}
