//! The shared experiment protocol used by every table/figure regenerator.
//!
//! Two scales are supported:
//!
//! * [`ExperimentScale::Quick`] (default) — graphs scaled to a quarter of
//!   the paper's node counts and small train/test splits, so every
//!   experiment finishes in minutes on one CPU core.
//! * [`ExperimentScale::Paper`] — the paper's dataset sizes (hundreds of
//!   graphs, 100–2000 nodes). Select with `SPG_SCALE=paper`.
//!
//! Trained coarsening models are cached as JSON checkpoints under the
//! artifact directory so consecutive experiments share them.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::checkpoint::Checkpoint;
use spg_core::curriculum::CurriculumLevel;
use spg_core::pipeline::MetisCoarsePlacer;
use spg_core::{CoarsenConfig, CoarsenModel, ReinforceTrainer, TrainOptions};
use spg_gen::{DatasetSpec, Setting};
use spg_graph::serialize::Dataset;
use std::path::PathBuf;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minutes-long CPU runs (quarter-size graphs, small splits).
    Quick,
    /// The paper's dataset sizes (long runs).
    Paper,
}

/// Shared protocol state.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Scale selection.
    pub scale: ExperimentScale,
    /// Directory for cached datasets/checkpoints and emitted artifacts.
    pub artifacts_dir: PathBuf,
    /// Base seed for all derived RNG streams.
    pub seed: u64,
}

impl Protocol {
    /// Read scale from `SPG_SCALE` (`paper` for full scale), artifacts into
    /// `target/spg-artifacts`.
    pub fn from_env() -> Self {
        let scale = match std::env::var("SPG_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") | Ok("full") => ExperimentScale::Paper,
            _ => ExperimentScale::Quick,
        };
        Self {
            scale,
            artifacts_dir: PathBuf::from("target/spg-artifacts"),
            seed: 0xA11CA7E,
        }
    }

    /// Dataset spec for a setting at the current scale.
    pub fn spec(&self, setting: Setting) -> DatasetSpec {
        match self.scale {
            ExperimentScale::Quick => DatasetSpec::scaled_down(setting),
            ExperimentScale::Paper => DatasetSpec::for_setting(setting),
        }
    }

    /// `(train, test)` graph counts.
    pub fn split_sizes(&self, setting: Setting) -> (usize, usize) {
        match (self.scale, setting) {
            (ExperimentScale::Quick, _) => (32, 32),
            (ExperimentScale::Paper, Setting::Small) => (200, 100),
            // Paper: 1,500 medium / 1,100 large / 1,500 x-large graphs,
            // 300 of each held out for testing (§V).
            (ExperimentScale::Paper, Setting::Large | Setting::ExcessDevice) => (800, 300),
            (ExperimentScale::Paper, _) => (1200, 300),
        }
    }

    /// Training epochs at the current scale.
    pub fn epochs(&self) -> usize {
        match self.scale {
            ExperimentScale::Quick => 30,
            ExperimentScale::Paper => 20,
        }
    }

    /// Deterministic `(train, test)` datasets for a setting.
    pub fn datasets(&self, setting: Setting) -> (Dataset, Dataset) {
        let spec = self.spec(setting);
        let (n_train, n_test) = self.split_sizes(setting);
        let ds =
            spg_gen::generate_dataset(&spec, n_train + n_test, self.seed ^ setting_tag(setting));
        ds.split(n_test)
    }

    /// A curriculum level built from a setting's training split.
    pub fn level(&self, setting: Setting, epochs: usize) -> CurriculumLevel {
        let spec = self.spec(setting);
        let (train, _) = self.datasets(setting);
        CurriculumLevel {
            name: spec.name,
            graphs: train.graphs,
            cluster: train.cluster,
            source_rate: train.source_rate,
            epochs,
        }
    }

    /// Train (or load from cache) a coarsening model on a setting's
    /// training split with the Metis placer. `tag` distinguishes variants
    /// (e.g. ablations) in the cache.
    pub fn trained_coarsen_model(
        &self,
        setting: Setting,
        config: &CoarsenConfig,
        options: &TrainOptions,
        tag: &str,
    ) -> CoarsenModel {
        std::fs::create_dir_all(&self.artifacts_dir).ok();
        let scale_tag = match self.scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Paper => "paper",
        };
        let path = self.artifacts_dir.join(format!(
            "coarsen-{}-{}-{}.json",
            setting_slug(setting),
            scale_tag,
            tag
        ));
        if let Ok(ck) = Checkpoint::load(&path) {
            if ck.config == *config {
                return ck.into_model();
            }
        }

        let (train, _) = self.datasets(setting);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x7EA);
        let model = CoarsenModel::new(config.clone(), &mut rng);
        let mut trainer =
            ReinforceTrainer::builder(model, MetisCoarsePlacer::new(self.seed ^ 0x9A))
                .graphs(train.graphs)
                .cluster(train.cluster)
                .source_rate(train.source_rate)
                .options(options.clone())
                .build();
        for _ in 0..self.epochs() {
            trainer.train_epoch();
        }
        let model = trainer.into_model();
        Checkpoint::from_model(&model).save(&path).ok();
        model
    }
}

fn setting_tag(setting: Setting) -> u64 {
    match setting {
        Setting::Small => 0x51,
        Setting::MediumFiveDevices => 0x52,
        Setting::Medium => 0x53,
        Setting::Large => 0x54,
        Setting::XLarge => 0x55,
        Setting::ExcessDevice => 0x56,
    }
}

fn setting_slug(setting: Setting) -> &'static str {
    setting.slug()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_default() {
        std::env::remove_var("SPG_SCALE");
        let p = Protocol::from_env();
        assert_eq!(p.scale, ExperimentScale::Quick);
    }

    #[test]
    fn datasets_are_deterministic_and_split() {
        let p = Protocol {
            scale: ExperimentScale::Quick,
            artifacts_dir: "/tmp/spg-test-art".into(),
            seed: 1,
        };
        let (tr1, te1) = p.datasets(Setting::Small);
        let (tr2, te2) = p.datasets(Setting::Small);
        assert_eq!(tr1.graphs, tr2.graphs);
        assert_eq!(te1.graphs, te2.graphs);
        assert_eq!(tr1.graphs.len() + te1.graphs.len(), 64);
    }

    #[test]
    fn different_settings_get_different_graphs() {
        let p = Protocol {
            scale: ExperimentScale::Quick,
            artifacts_dir: "/tmp/spg-test-art".into(),
            seed: 1,
        };
        let (a, _) = p.datasets(Setting::Small);
        let (b, _) = p.datasets(Setting::Medium);
        assert!(a.graphs[0] != b.graphs[0]);
    }

    #[test]
    fn level_matches_training_split() {
        let p = Protocol {
            scale: ExperimentScale::Quick,
            artifacts_dir: "/tmp/spg-test-art".into(),
            seed: 2,
        };
        let lvl = p.level(Setting::Small, 3);
        let (train, _) = p.datasets(Setting::Small);
        assert_eq!(lvl.graphs.len(), train.graphs.len());
        assert_eq!(lvl.epochs, 3);
    }
}
