//! Boxplot statistics (Fig. 8) and histograms (Figs. 7b, 9).

/// Five-number summary for a boxplot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Compute from a sample (returns zeros when empty).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                n: 0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
            };
        }
        let mut s = xs.to_vec();
        s.sort_by(f64::total_cmp);
        Self {
            n: s.len(),
            min: s[0],
            q1: quantile(&s, 0.25),
            median: quantile(&s, 0.5),
            q3: quantile(&s, 0.75),
            max: s[s.len() - 1],
        }
    }
}

/// Linear-interpolated quantile of a sorted sample (`q` in `0.0..=1.0`).
///
/// Used only by the Fig. 8 boxplot statistics, where smooth quartiles
/// over small buckets read better than step functions. Benchmark
/// reports use `spg_obs::percentile` (nearest-rank) instead — the two
/// deliberately disagree on even-length samples (interpolation invents
/// values between observations; nearest-rank never does), so keep them
/// separate.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Bucket samples into ranges given by `edges` (`edges.len() - 1` buckets,
/// values outside are clamped into the end buckets). Returns per-bucket
/// sample vectors — used by Fig. 8's compression-ratio boxplots.
pub fn bucket_by(values: &[f64], keys: &[f64], edges: &[f64]) -> Vec<Vec<f64>> {
    assert_eq!(values.len(), keys.len());
    assert!(edges.len() >= 2);
    let buckets = edges.len() - 1;
    let mut out = vec![Vec::new(); buckets];
    for (&v, &k) in values.iter().zip(keys) {
        let mut b = buckets - 1;
        for i in 0..buckets {
            if k < edges[i + 1] {
                b = i;
                break;
            }
        }
        out[b].push(v);
    }
    out
}

/// Integer-valued histogram over `0..=max_value` (Fig. 7b device counts).
pub fn count_histogram(values: impl Iterator<Item = usize>, max_value: usize) -> Vec<usize> {
    let mut h = vec![0usize; max_value + 1];
    for v in values {
        h[v.min(max_value)] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_sample() {
        let b = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
    }

    #[test]
    fn quantile_interpolates() {
        let s = [0.0, 10.0];
        assert_eq!(quantile(&s, 0.5), 5.0);
        assert_eq!(quantile(&s, 0.0), 0.0);
        assert_eq!(quantile(&s, 1.0), 10.0);
    }

    #[test]
    fn quantile_edges_are_pinned() {
        // q=0 and q=1 are exact order statistics (no interpolation can
        // leak past the observed range), and a single-element sample
        // answers every q with that element. The 0.5 midpoint of an
        // even-length sample IS interpolated — the deliberate divergence
        // from `spg_obs::percentile`, which would return 10.0 here.
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&s, 0.0), 10.0);
        assert_eq!(quantile(&s, 1.0), 40.0);
        assert_eq!(quantile(&[10.0, 20.0], 0.5), 15.0);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&[42.0], q), 42.0);
        }
    }

    #[test]
    fn bucket_by_respects_edges() {
        let values = [10.0, 20.0, 30.0, 40.0];
        let keys = [1.0, 2.5, 3.5, 99.0];
        let buckets = bucket_by(&values, &keys, &[0.0, 2.0, 4.0, 8.0]);
        assert_eq!(buckets[0], vec![10.0]);
        assert_eq!(buckets[1], vec![20.0, 30.0]);
        assert_eq!(buckets[2], vec![40.0]); // clamped into last bucket
    }

    #[test]
    fn count_histogram_clamps() {
        let h = count_histogram([0usize, 2, 2, 9].into_iter(), 3);
        assert_eq!(h, vec![1, 0, 2, 1]);
    }

    #[test]
    fn empty_box_stats() {
        let b = BoxStats::of(&[]);
        assert_eq!(b.n, 0);
    }
}
