//! Workload assignment: turning a topology [`Skeleton`] into a
//! [`StreamGraph`] with operator costs and channel payloads.
//!
//! Costs are drawn log-normally per *property class* (so replicated
//! sub-graphs share identical properties, as in the paper) and then rescaled
//! so that the graph's total CPU demand and total channel traffic land at a
//! sampled fraction of the cluster's aggregate capacity. This realises §V's
//! "the total computing load for each graph in the data set has the same
//! distribution ... within the capacity of devices" across graph sizes.

use crate::topology::Skeleton;
use rand::Rng;
use serde::{Deserialize, Serialize};
use spg_graph::{Channel, ClusterSpec, Operator, StreamGraph, TupleRates};

/// Distribution parameters for workload assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// σ of the log-normal for per-class instruction-per-tuple draws.
    pub ipt_sigma: f64,
    /// σ of the log-normal for per-class payload draws.
    pub payload_sigma: f64,
    /// Range of total CPU demand as a fraction of total cluster capacity.
    pub cpu_load_frac: (f64, f64),
    /// Range of total (worst-case, all-cut) traffic as a fraction of the
    /// aggregate NIC bandwidth `devices * BW`.
    pub traffic_frac: (f64, f64),
    /// Probability that a fan-out edge broadcasts (selectivity 1) rather
    /// than partitioning the stream among the successors.
    pub broadcast_prob: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            ipt_sigma: 0.8,
            payload_sigma: 0.8,
            cpu_load_frac: (0.5, 0.9),
            traffic_frac: (0.8, 2.0),
            broadcast_prob: 0.1,
        }
    }
}

/// Per-graph sampled workload scale (exposed for tests/analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Sampled total-CPU fraction of cluster capacity.
    pub cpu_frac: f64,
    /// Sampled total-traffic fraction of aggregate bandwidth.
    pub traffic_frac: f64,
}

/// Sample a log-normal with median 1 and the given sigma.
fn lognormal<R: Rng>(sigma: f64, rng: &mut R) -> f64 {
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

/// Assign workloads to `sk` and build the final graph.
pub fn assign_workload<R: Rng>(
    sk: Skeleton,
    cfg: &WorkloadConfig,
    cluster: &ClusterSpec,
    source_rate: f64,
    rng: &mut R,
) -> StreamGraph {
    let n = sk.num_nodes;

    // Per-class draws (classes are dense-ish but sparse is fine with a map).
    let mut class_ipt: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut class_payload: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();

    let ops: Vec<Operator> = sk
        .node_class
        .iter()
        .map(|&c| {
            let v = *class_ipt
                .entry(c)
                .or_insert_with(|| lognormal(cfg.ipt_sigma, rng));
            Operator::new(v)
        })
        .collect();

    // Selectivities: partition the stream among a node's out-edges unless
    // the node broadcasts. Decide per *source node* so rates stay bounded.
    let mut out_degree = vec![0usize; n];
    for &(a, _) in &sk.edges {
        out_degree[a as usize] += 1;
    }
    let broadcast: Vec<bool> = (0..n)
        .map(|_| rng.gen::<f64>() < cfg.broadcast_prob)
        .collect();

    let channels: Vec<Channel> = sk
        .edges
        .iter()
        .zip(&sk.edge_class)
        .map(|(&(a, _b), &c)| {
            let payload = *class_payload
                .entry(c)
                .or_insert_with(|| lognormal(cfg.payload_sigma, rng));
            let deg = out_degree[a as usize].max(1);
            let sel = if broadcast[a as usize] {
                1.0
            } else {
                1.0 / deg as f64
            };
            Channel::with_selectivity(payload, sel)
        })
        .collect();

    let mut graph = StreamGraph::from_parts(ops, sk.edges, channels)
        .expect("generator must produce valid DAGs");

    // Rescale to the sampled load fractions.
    let cpu_frac = rng.gen_range(cfg.cpu_load_frac.0..=cfg.cpu_load_frac.1);
    let traffic_frac = rng.gen_range(cfg.traffic_frac.0..=cfg.traffic_frac.1);
    rescale(
        &mut graph,
        cluster,
        source_rate,
        WorkloadParams {
            cpu_frac,
            traffic_frac,
        },
    );
    graph
}

/// Rescale operator and channel costs of `graph` in place so total CPU
/// demand = `params.cpu_frac * cluster capacity` and total traffic =
/// `params.traffic_frac * aggregate bandwidth` at `source_rate`.
pub fn rescale(
    graph: &mut StreamGraph,
    cluster: &ClusterSpec,
    source_rate: f64,
    params: WorkloadParams,
) {
    let rates = TupleRates::compute(graph, source_rate);
    let total_cpu = rates.total_cpu_demand(graph);
    if total_cpu > 0.0 {
        let target = params.cpu_frac * cluster.total_instr_per_sec();
        let s = target / total_cpu;
        for op in graph.ops_mut() {
            op.ipt *= s;
        }
    }
    let total_traffic = rates.total_edge_traffic(graph);
    if total_traffic > 0.0 {
        let target = params.traffic_frac * cluster.link_bytes_per_sec() * cluster.devices as f64;
        let s = target / total_traffic;
        for ch in graph.channels_mut() {
            ch.payload *= s;
        }
    }
}

/// Scale only operator costs (used to build the excess-device setting,
/// which reduces CPU utilisation by 33%).
pub fn scale_cpu(graph: &mut StreamGraph, factor: f64) {
    for op in graph.ops_mut() {
        op.ipt *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{GrowthConfig, TopologyGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(seed: u64) -> (StreamGraph, ClusterSpec, f64) {
        let cluster = ClusterSpec::paper_medium(5);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sk = TopologyGenerator::new(GrowthConfig::for_range(20, 40)).generate(&mut rng);
        let g = assign_workload(sk, &WorkloadConfig::default(), &cluster, 1e4, &mut rng);
        (g, cluster, 1e4)
    }

    #[test]
    fn total_cpu_demand_is_within_configured_fraction() {
        for seed in 0..10 {
            let (g, cluster, rate) = build(seed);
            let rates = TupleRates::compute(&g, rate);
            let frac = rates.total_cpu_demand(&g) / cluster.total_instr_per_sec();
            assert!(
                (0.49..=0.91).contains(&frac),
                "cpu fraction {frac} out of range (seed {seed})"
            );
        }
    }

    #[test]
    fn total_traffic_is_within_configured_fraction() {
        for seed in 0..10 {
            let (g, cluster, rate) = build(seed);
            let rates = TupleRates::compute(&g, rate);
            let agg_bw = cluster.link_bytes_per_sec() * cluster.devices as f64;
            let frac = rates.total_edge_traffic(&g) / agg_bw;
            assert!(
                (0.79..=2.01).contains(&frac),
                "traffic fraction {frac} out of range (seed {seed})"
            );
        }
    }

    #[test]
    fn replicated_classes_share_costs() {
        let cluster = ClusterSpec::paper_medium(5);
        let mut cfg = GrowthConfig::for_range(40, 80);
        cfg.p_replicate = 1.0;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sk = TopologyGenerator::new(cfg).generate(&mut rng);
        let classes = sk.node_class.clone();
        let g = assign_workload(sk, &WorkloadConfig::default(), &cluster, 1e4, &mut rng);
        // Nodes of equal class must have equal ipt.
        for i in 0..g.num_nodes() {
            for j in (i + 1)..g.num_nodes() {
                if classes[i] == classes[j] {
                    let (a, b) = (g.ops()[i].ipt, g.ops()[j].ipt);
                    assert!((a - b).abs() < 1e-12 * a.abs().max(1.0), "class mismatch");
                }
            }
        }
    }

    #[test]
    fn rates_stay_bounded_by_partitioned_selectivity() {
        // Without broadcast, every node rate should stay ~source_rate.
        let cluster = ClusterSpec::paper_medium(5);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sk = TopologyGenerator::new(GrowthConfig::for_range(50, 100)).generate(&mut rng);
        let cfg = WorkloadConfig {
            broadcast_prob: 0.0,
            ..Default::default()
        };
        let g = assign_workload(sk, &cfg, &cluster, 1e4, &mut rng);
        let rates = TupleRates::compute(&g, 1e4);
        for &r in &rates.node {
            assert!(r <= 1e4 * 1.0001, "rate {r} exceeded source rate");
        }
    }

    #[test]
    fn scale_cpu_scales_ipt() {
        let (mut g, _, _) = build(0);
        let before: Vec<f64> = g.ops().iter().map(|o| o.ipt).collect();
        scale_cpu(&mut g, 0.67);
        for (o, b) in g.ops().iter().zip(before) {
            assert!((o.ipt - b * 0.67).abs() < 1e-9);
        }
    }
}
