//! Drift scenario generator: seeded workload/topology mutations for
//! exercising the incremental re-allocation path.
//!
//! A scenario is a [`GraphDelta`] against a concrete prior graph, built
//! so that it stays *below* the warm-start churn threshold — these model
//! routine operational drift (load ramps, a single operator hot-swap, a
//! device dropping out of the cluster), not topology overhauls. The DES
//! and the serve drift bench use them to measure placement quality
//! against re-allocation latency.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg_graph::{GraphDelta, NodeId, Operator, StreamGraph, DEFAULT_CHURN_THRESHOLD};

/// The three drift families from the evaluation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Source rate ramps up by a seeded factor in `[1.15, 1.6]`.
    RateRamp,
    /// One internal operator is hot-swapped: removed and replaced by a
    /// fresh operator with perturbed cost, rewired to the same
    /// neighbors with the same channels.
    HotSwap,
    /// The cluster loses one device.
    DeviceLoss,
}

impl DriftKind {
    /// All kinds, in slug order.
    pub const ALL: [DriftKind; 3] = [
        DriftKind::RateRamp,
        DriftKind::HotSwap,
        DriftKind::DeviceLoss,
    ];

    /// CLI-facing name.
    pub fn slug(self) -> &'static str {
        match self {
            DriftKind::RateRamp => "rate-ramp",
            DriftKind::HotSwap => "hot-swap",
            DriftKind::DeviceLoss => "device-loss",
        }
    }

    /// Parse a CLI-facing name.
    pub fn from_slug(s: &str) -> Option<DriftKind> {
        Self::ALL.into_iter().find(|k| k.slug() == s)
    }
}

/// A seeded drift event against a specific prior graph.
#[derive(Debug, Clone)]
pub struct DriftScenario {
    /// Which drift family produced the delta. A kind may fall back to a
    /// milder mutation (see [`drift_delta`]), so this records the family
    /// *requested*, not a guarantee about the delta's shape.
    pub kind: DriftKind,
    /// The mutation, in the prior graph's id space.
    pub delta: GraphDelta,
}

/// Build a drift scenario for `graph`, cycling through the drift kinds
/// by seed so a seed sweep covers all three families.
pub fn drift_scenario(
    graph: &StreamGraph,
    devices: usize,
    source_rate: f64,
    seed: u64,
) -> DriftScenario {
    let kind = DriftKind::ALL[(seed % 3) as usize];
    DriftScenario {
        kind,
        delta: drift_delta(graph, kind, devices, source_rate, seed),
    }
}

/// Build the delta for one drift kind. Deterministic in `seed`.
///
/// Every delta returned is guaranteed sub-threshold (churn strictly
/// below [`DEFAULT_CHURN_THRESHOLD`]); when the requested kind cannot
/// be expressed that way — a hot-swap on a graph with no internal node
/// or one so small the rewiring alone crosses the threshold, a device
/// loss on a single-device cluster — it falls back to a churn-free
/// workload perturbation (`set_ipt` or a rate ramp respectively).
pub fn drift_delta(
    graph: &StreamGraph,
    kind: DriftKind,
    devices: usize,
    source_rate: f64,
    seed: u64,
) -> GraphDelta {
    // Tag keeps drift RNG streams apart from the generator's seed space.
    const DRIFT_TAG: u64 = 0x4452_4946_5400_0000; // "DRIFT"
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ DRIFT_TAG);
    match kind {
        DriftKind::RateRamp => rate_ramp(source_rate, &mut rng),
        DriftKind::HotSwap => hot_swap(graph, &mut rng),
        DriftKind::DeviceLoss => {
            if devices > 1 {
                GraphDelta {
                    devices: Some(devices - 1),
                    ..GraphDelta::default()
                }
            } else {
                rate_ramp(source_rate, &mut rng)
            }
        }
    }
}

fn rate_ramp(source_rate: f64, rng: &mut ChaCha8Rng) -> GraphDelta {
    let factor = rng.gen_range(1.15..1.6);
    GraphDelta {
        source_rate: Some(source_rate * factor),
        ..GraphDelta::default()
    }
}

/// Remove one internal operator and add a replacement (virtual id `n`)
/// with perturbed cost, rewired to the exact same neighbors with cloned
/// channels. Falls back to a pure `set_ipt` perturbation when the graph
/// has no internal node or the rewiring would cross the churn threshold.
fn hot_swap(graph: &StreamGraph, rng: &mut ChaCha8Rng) -> GraphDelta {
    let factor = rng.gen_range(0.8..1.25);
    let internal: Vec<u32> = (0..graph.num_nodes() as u32)
        .filter(|&v| graph.in_degree(NodeId(v)) > 0 && graph.out_degree(NodeId(v)) > 0)
        .collect();
    let fallback = |rng: &mut ChaCha8Rng| {
        let v = rng.gen_range(0..graph.num_nodes() as u32);
        GraphDelta {
            set_ipt: vec![(v, graph.op(NodeId(v)).ipt * factor)],
            ..GraphDelta::default()
        }
    };
    if internal.is_empty() {
        return fallback(rng);
    }
    let victim = internal[rng.gen_range(0..internal.len())];
    let replacement = graph.num_nodes() as u32; // virtual id of the added node
    let mut add_edges = Vec::new();
    let mut add_channels = Vec::new();
    for (u, e) in graph.in_edges(NodeId(victim)) {
        if !add_edges.contains(&(u.0, replacement)) {
            add_edges.push((u.0, replacement));
            add_channels.push(*graph.channel(e));
        }
    }
    for (w, e) in graph.out_edges(NodeId(victim)) {
        if !add_edges.contains(&(replacement, w.0)) {
            add_edges.push((replacement, w.0));
            add_channels.push(*graph.channel(e));
        }
    }
    let delta = GraphDelta {
        remove_nodes: vec![victim],
        add_nodes: vec![Operator::new(graph.op(NodeId(victim)).ipt * factor)],
        add_edges,
        add_channels,
        ..GraphDelta::default()
    };
    if delta.churn(graph) < DEFAULT_CHURN_THRESHOLD {
        delta
    } else {
        fallback(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, Setting};

    fn small_graph(seed: u64) -> StreamGraph {
        crate::generate_graph(&DatasetSpec::scaled_down(Setting::Small), seed)
    }

    #[test]
    fn scenarios_are_deterministic_and_cycle_kinds() {
        let g = small_graph(3);
        for seed in 0..6 {
            let a = drift_scenario(&g, 4, 1e4, seed);
            let b = drift_scenario(&g, 4, 1e4, seed);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.delta, b.delta);
            assert_eq!(a.kind, DriftKind::ALL[(seed % 3) as usize]);
        }
    }

    #[test]
    fn all_scenarios_stay_sub_threshold_and_apply_cleanly() {
        for seed in 0..9u64 {
            let g = small_graph(seed);
            let sc = drift_scenario(&g, 4, 1e4, seed);
            assert!(
                sc.delta.churn(&g) < DEFAULT_CHURN_THRESHOLD,
                "seed {seed}: churn {} crosses threshold",
                sc.delta.churn(&g)
            );
            let applied = sc.delta.apply(&g).expect("drift deltas apply cleanly");
            assert!(applied.graph.num_nodes() > 0);
        }
    }

    #[test]
    fn device_loss_drops_one_device_and_degrades_gracefully() {
        let g = small_graph(1);
        let d = drift_delta(&g, DriftKind::DeviceLoss, 4, 1e4, 0);
        assert_eq!(d.devices, Some(3));
        // Single-device cluster: falls back to a rate ramp, never Some(0).
        let d1 = drift_delta(&g, DriftKind::DeviceLoss, 1, 1e4, 0);
        assert_eq!(d1.devices, None);
        assert!(d1.source_rate.is_some());
    }

    #[test]
    fn hot_swap_rewires_replacement_to_same_neighbors() {
        let g = small_graph(2);
        let d = drift_delta(&g, DriftKind::HotSwap, 4, 1e4, 5);
        if d.remove_nodes.is_empty() {
            // fell back to set_ipt — nothing topological to check
            assert_eq!(d.set_ipt.len(), 1);
            return;
        }
        let victim = NodeId(d.remove_nodes[0]);
        let replacement = g.num_nodes() as u32;
        let degree: usize = d.add_edges.len();
        assert!(degree > 0, "replacement is wired in");
        assert!(d
            .add_edges
            .iter()
            .all(|&(a, b)| a == replacement || b == replacement));
        assert!(g.in_degree(victim) > 0 && g.out_degree(victim) > 0);
        let applied = d.apply(&g).expect("hot swap applies");
        assert_eq!(applied.graph.num_nodes(), g.num_nodes());
    }

    #[test]
    fn slugs_round_trip() {
        for k in DriftKind::ALL {
            assert_eq!(DriftKind::from_slug(k.slug()), Some(k));
        }
        assert_eq!(DriftKind::from_slug("nope"), None);
    }
}
