//! # spg-gen
//!
//! Synthetic stream-graph generation following §V / Fig. 4 of the paper:
//! a seed graph is grown by recursively replacing nodes with one of three
//! basic subgraph templates — **linear**, **branch**, and **fully
//! connected** — with probabilities 0.45 / 0.45 / 0.1, until the node count
//! falls inside the target range. Subgraphs may additionally be
//! *replicated* in place (multi-stage parallelism).
//!
//! Workloads are then assigned: operator `ipt` and edge payloads are drawn
//! from log-normal distributions and rescaled so that the total computing
//! load of every graph in a dataset follows the same distribution relative
//! to cluster capacity (§V: "we set the total computing load for each graph
//! in the data set to have the same distribution").

pub mod catalog;
pub mod drift;
pub mod settings;
pub mod templates;
pub mod topology;
pub mod workload;

pub use drift::{drift_delta, drift_scenario, DriftKind, DriftScenario};
pub use settings::{DatasetSpec, Setting};
pub use topology::{GrowthConfig, TopologyGenerator};
pub use workload::{WorkloadConfig, WorkloadParams};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_graph::serialize::Dataset;
use spg_graph::StreamGraph;

/// Generate one stream graph for `spec` from `seed`.
pub fn generate_graph(spec: &DatasetSpec, seed: u64) -> StreamGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo = TopologyGenerator::new(spec.growth.clone());
    let skeleton = topo.generate(&mut rng);
    workload::assign_workload(
        skeleton,
        &spec.workload,
        &spec.cluster(),
        spec.source_rate,
        &mut rng,
    )
}

/// Generate a whole dataset (deterministic in `base_seed`).
pub fn generate_dataset(spec: &DatasetSpec, count: usize, base_seed: u64) -> Dataset {
    let graphs: Vec<StreamGraph> = (0..count)
        .map(|i| generate_graph(spec, base_seed.wrapping_add(i as u64)))
        .collect();
    Dataset {
        name: spec.name.clone(),
        cluster: spec.cluster(),
        source_rate: spec.source_rate,
        graphs,
    }
}

/// Parallel variant of [`generate_dataset`] using `threads` worker
/// threads (crossbeam scoped). Produces exactly the same graphs as the
/// sequential version — each graph depends only on its own seed — so
/// datasets stay reproducible regardless of thread count.
pub fn generate_dataset_parallel(
    spec: &DatasetSpec,
    count: usize,
    base_seed: u64,
    threads: usize,
) -> Dataset {
    let threads = threads.max(1);
    let mut graphs: Vec<Option<StreamGraph>> = vec![None; count];
    crossbeam::thread::scope(|scope| {
        for (t, chunk) in graphs.chunks_mut(count.div_ceil(threads)).enumerate() {
            let offset = t * count.div_ceil(threads);
            scope.spawn(move |_| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let seed = base_seed.wrapping_add((offset + i) as u64);
                    *slot = Some(generate_graph(spec, seed));
                }
            });
        }
    })
    .expect("generator threads do not panic");
    Dataset {
        name: spec.name.clone(),
        cluster: spec.cluster(),
        source_rate: spec.source_rate,
        graphs: graphs
            .into_iter()
            .map(|g| g.expect("all slots filled"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid_and_in_range() {
        let spec = DatasetSpec::for_setting(Setting::Small);
        for seed in 0..8 {
            let g = generate_graph(&spec, seed);
            let (lo, hi) = spec.growth.node_range;
            assert!(
                g.num_nodes() >= lo && g.num_nodes() <= hi,
                "{} nodes outside [{lo}, {hi}]",
                g.num_nodes()
            );
            // DAG-ness is enforced by StreamGraph::from_parts; reaching here
            // means the graph is valid.
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::for_setting(Setting::Small);
        let a = generate_graph(&spec, 42);
        let b = generate_graph(&spec, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::for_setting(Setting::Small);
        let a = generate_graph(&spec, 1);
        let b = generate_graph(&spec, 2);
        assert!(a != b);
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let spec = DatasetSpec::for_setting(Setting::Small);
        let seq = generate_dataset(&spec, 9, 77);
        for threads in [1, 2, 4] {
            let par = generate_dataset_parallel(&spec, 9, 77, threads);
            assert_eq!(par.graphs, seq.graphs, "threads = {threads}");
        }
    }

    #[test]
    fn dataset_has_requested_count() {
        let spec = DatasetSpec::for_setting(Setting::Small);
        let ds = generate_dataset(&spec, 5, 7);
        assert_eq!(ds.graphs.len(), 5);
        assert_eq!(ds.source_rate, spec.source_rate);
    }
}
