//! Recursive topology growth (Fig. 4).
//!
//! A seed `source -> stage -> sink` graph is grown by repeatedly replacing
//! an eligible node with a sampled [`Template`]: the node's incoming edges
//! are rewired to every template entry, outgoing edges from every exit, and
//! the template's fresh nodes become eligible themselves. With probability
//! `p_replicate` the template is instantiated 2–3 times in parallel and the
//! replicas share *property classes*, so the workload assigner later gives
//! them identical costs (the paper replicates sub-graph properties).

use crate::templates::{Template, TemplateConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Growth parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthConfig {
    /// Target node-count range `(min, max)` inclusive.
    pub node_range: (usize, usize),
    /// Template families and sizes.
    pub templates: TemplateConfig,
    /// Probability of replicating a sampled template 2–3x in parallel.
    pub p_replicate: f64,
}

impl GrowthConfig {
    /// Paper-style growth for a node range.
    pub fn for_range(lo: usize, hi: usize) -> Self {
        assert!(3 <= lo && lo <= hi);
        Self {
            node_range: (lo, hi),
            templates: TemplateConfig::default(),
            p_replicate: 0.15,
        }
    }
}

/// A topology skeleton: structure plus property classes (no costs yet).
#[derive(Debug, Clone, PartialEq)]
pub struct Skeleton {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Directed edges.
    pub edges: Vec<(u32, u32)>,
    /// Property class of each node: nodes with equal class get identical
    /// operator costs (replication).
    pub node_class: Vec<u32>,
    /// Property class of each edge.
    pub edge_class: Vec<u32>,
}

impl Skeleton {
    fn seed() -> Self {
        Self {
            num_nodes: 3,
            edges: vec![(0, 1), (1, 2)],
            node_class: vec![0, 1, 2],
            edge_class: vec![0, 1],
        }
    }
}

/// Grows [`Skeleton`]s according to a [`GrowthConfig`].
#[derive(Debug, Clone)]
pub struct TopologyGenerator {
    cfg: GrowthConfig,
}

impl TopologyGenerator {
    /// Create a generator.
    pub fn new(cfg: GrowthConfig) -> Self {
        Self { cfg }
    }

    /// Grow one skeleton.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Skeleton {
        let (lo, hi) = self.cfg.node_range;
        let mut sk = Skeleton::seed();
        let mut next_node_class = 3u32;
        let mut next_edge_class = 2u32;
        // Node 1 (the middle stage) is the only initially replaceable node;
        // the global source and sink stay fixed.
        let mut eligible: Vec<u32> = vec![1];

        while sk.num_nodes < lo && !eligible.is_empty() {
            let slot = rng.gen_range(0..eligible.len());
            let v = eligible.swap_remove(slot);

            let budget = hi - sk.num_nodes + 1; // replacing v frees one slot
            let Some((tpl, _kind)) = Template::sample(&self.cfg.templates, budget, rng) else {
                continue;
            };

            // Decide replication.
            let mut replicas = 1usize;
            if rng.gen::<f64>() < self.cfg.p_replicate {
                for r in [3usize, 2] {
                    if r * tpl.nodes <= budget {
                        replicas = r;
                        break;
                    }
                }
            }

            self.substitute(
                &mut sk,
                v,
                &tpl,
                replicas,
                &mut next_node_class,
                &mut next_edge_class,
                &mut eligible,
            );
        }
        debug_assert!(sk.num_nodes <= hi, "{} > {hi}", sk.num_nodes);
        sk
    }

    /// Replace node `v` with `replicas` copies of `tpl` wired in parallel.
    #[allow(clippy::too_many_arguments)]
    fn substitute(
        &self,
        sk: &mut Skeleton,
        v: u32,
        tpl: &Template,
        replicas: usize,
        next_node_class: &mut u32,
        next_edge_class: &mut u32,
        eligible: &mut Vec<u32>,
    ) {
        // Fresh classes for the first instance; replicas reuse them.
        let node_class_base = *next_node_class;
        *next_node_class += tpl.nodes as u32;
        let edge_class_base = *next_edge_class;
        *next_edge_class += tpl.edges.len() as u32;

        // Allocate node ids for all instances.
        let mut instance_base = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let base = sk.num_nodes as u32;
            instance_base.push(base);
            for local in 0..tpl.nodes {
                sk.node_class.push(node_class_base + local as u32);
                eligible.push(base + local as u32);
                sk.num_nodes += 1;
            }
            for (ei, &(a, b)) in tpl.edges.iter().enumerate() {
                sk.edges.push((base + a, base + b));
                sk.edge_class.push(edge_class_base + ei as u32);
            }
        }

        // Rewire v's boundary edges to every entry/exit of every instance,
        // inheriting the original edge class (replicas share it).
        let old_edges = std::mem::take(&mut sk.edges);
        let old_classes = std::mem::take(&mut sk.edge_class);
        let mut edges = Vec::with_capacity(old_edges.len() + 8);
        let mut classes = Vec::with_capacity(old_edges.len() + 8);
        for (&(a, b), &cls) in old_edges.iter().zip(&old_classes) {
            if a != v && b != v {
                edges.push((a, b));
                classes.push(cls);
                continue;
            }
            for &base in &instance_base {
                if b == v {
                    for &entry in &tpl.entries {
                        edges.push((a, base + entry));
                        classes.push(cls);
                    }
                } else {
                    for &exit in &tpl.exits {
                        edges.push((base + exit, b));
                        classes.push(cls);
                    }
                }
            }
        }
        sk.edges = edges;
        sk.edge_class = classes;

        // Node v itself is gone: compact ids by swapping with the last node.
        self.remove_node(sk, v, eligible);
    }

    /// Remove node `v` from the skeleton by swap-remove relabelling.
    fn remove_node(&self, sk: &mut Skeleton, v: u32, eligible: &mut [u32]) {
        let last = (sk.num_nodes - 1) as u32;
        sk.node_class.swap(v as usize, last as usize);
        sk.node_class.pop();
        sk.num_nodes -= 1;
        if v != last {
            for e in sk.edges.iter_mut() {
                if e.0 == last {
                    e.0 = v;
                }
                if e.1 == last {
                    e.1 = v;
                }
            }
            for w in eligible.iter_mut() {
                if *w == last {
                    *w = v;
                }
            }
        }
        debug_assert!(sk
            .edges
            .iter()
            .all(|&(a, b)| a != last && b != last || sk.num_nodes as u32 > last));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn grow(lo: usize, hi: usize, seed: u64) -> Skeleton {
        let gen = TopologyGenerator::new(GrowthConfig::for_range(lo, hi));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gen.generate(&mut rng)
    }

    #[test]
    fn grows_into_range() {
        for seed in 0..20 {
            let sk = grow(20, 40, seed);
            assert!(
                (20..=40).contains(&sk.num_nodes),
                "{} outside range (seed {seed})",
                sk.num_nodes
            );
        }
    }

    #[test]
    fn result_is_acyclic_with_no_duplicate_edges() {
        for seed in 0..10 {
            let sk = grow(30, 60, seed);
            let set: HashSet<(u32, u32)> = sk.edges.iter().copied().collect();
            assert_eq!(set.len(), sk.edges.len(), "duplicate edges (seed {seed})");
            assert!(
                spg_graph::topo::topological_order(sk.num_nodes, &sk.edges).is_some(),
                "cycle introduced (seed {seed})"
            );
            assert!(
                sk.edges.iter().all(|&(a, b)| a != b),
                "self loop (seed {seed})"
            );
        }
    }

    #[test]
    fn single_source_and_sink_preserved() {
        for seed in 0..10 {
            let sk = grow(30, 60, seed);
            let mut indeg = vec![0; sk.num_nodes];
            let mut outdeg = vec![0; sk.num_nodes];
            for &(a, b) in &sk.edges {
                outdeg[a as usize] += 1;
                indeg[b as usize] += 1;
            }
            assert_eq!(indeg.iter().filter(|&&d| d == 0).count(), 1, "seed {seed}");
            assert_eq!(outdeg.iter().filter(|&&d| d == 0).count(), 1, "seed {seed}");
        }
    }

    #[test]
    fn replication_creates_shared_classes() {
        // With p_replicate = 1 some class must repeat across nodes.
        let mut cfg = GrowthConfig::for_range(40, 80);
        cfg.p_replicate = 1.0;
        let gen = TopologyGenerator::new(cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sk = gen.generate(&mut rng);
        let mut counts = std::collections::HashMap::new();
        for &c in &sk.node_class {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        assert!(counts.values().any(|&c| c >= 2), "no replicated classes");
    }

    #[test]
    fn classes_cover_all_nodes_and_edges() {
        let sk = grow(20, 40, 5);
        assert_eq!(sk.node_class.len(), sk.num_nodes);
        assert_eq!(sk.edge_class.len(), sk.edges.len());
    }
}
