//! A catalog of named stream-application topologies modelled on classic
//! workloads from the stream-processing literature (word count, ETL,
//! windowed joins, IoT telemetry). Used by examples and tests as concrete,
//! interpretable graphs alongside the random generator.

use spg_graph::{Channel, NodeId, Operator, StreamGraph, StreamGraphBuilder};

/// The classic word-count topology: source → splitter → `shards` counters
/// → aggregator → sink. The splitter partitions words among counters.
pub fn word_count(shards: usize) -> StreamGraph {
    assert!(shards >= 1);
    let mut b = StreamGraphBuilder::new();
    let source = b.add_node(Operator::new(2_000.0));
    let split = b.add_node(Operator::new(15_000.0));
    b.add_edge(source, split, Channel::new(256.0))
        .expect("edge");
    let agg = b.add_node(Operator::new(10_000.0));
    for _ in 0..shards {
        let counter = b.add_node(Operator::new(30_000.0));
        b.add_edge(
            split,
            counter,
            Channel::with_selectivity(64.0, 1.0 / shards as f64),
        )
        .expect("edge");
        b.add_edge(counter, agg, Channel::with_selectivity(32.0, 0.1))
            .expect("edge");
    }
    let sink = b.add_node(Operator::new(1_000.0));
    b.add_edge(agg, sink, Channel::new(32.0)).expect("edge");
    b.finish().expect("word_count is a DAG")
}

/// A linear extract-transform-load pipeline with `stages` transforms.
pub fn etl_pipeline(stages: usize) -> StreamGraph {
    assert!(stages >= 1);
    let mut b = StreamGraphBuilder::new();
    let mut prev = b.add_node(Operator::new(5_000.0));
    for i in 0..stages {
        let stage = b.add_node(Operator::new(20_000.0 + 10_000.0 * i as f64));
        b.add_edge(prev, stage, Channel::new(512.0)).expect("edge");
        prev = stage;
    }
    let sink = b.add_node(Operator::new(2_000.0));
    b.add_edge(prev, sink, Channel::new(256.0)).expect("edge");
    b.finish().expect("etl is a DAG")
}

/// A windowed stream-stream join: two sources, per-stream filtering, a
/// join, post-aggregation, and a sink.
pub fn windowed_join() -> StreamGraph {
    let mut b = StreamGraphBuilder::new();
    let left_src = b.add_node(Operator::new(3_000.0));
    let right_src = b.add_node(Operator::new(3_000.0));
    let left_filter = b.add_node(Operator::new(25_000.0));
    let right_filter = b.add_node(Operator::new(25_000.0));
    let join = b.add_node(Operator::new(120_000.0));
    let agg = b.add_node(Operator::new(40_000.0));
    let sink = b.add_node(Operator::new(2_000.0));
    b.add_edge(left_src, left_filter, Channel::new(512.0))
        .expect("edge");
    b.add_edge(right_src, right_filter, Channel::new(512.0))
        .expect("edge");
    b.add_edge(left_filter, join, Channel::with_selectivity(384.0, 0.6))
        .expect("edge");
    b.add_edge(right_filter, join, Channel::with_selectivity(384.0, 0.6))
        .expect("edge");
    b.add_edge(join, agg, Channel::with_selectivity(640.0, 0.3))
        .expect("edge");
    b.add_edge(agg, sink, Channel::new(128.0)).expect("edge");
    b.finish().expect("join is a DAG")
}

/// IoT telemetry analytics: `sensors` ingest paths funnel into a
/// normaliser, fan out to anomaly detection, enrichment and archival, then
/// converge to alerting.
pub fn iot_telemetry(sensors: usize) -> StreamGraph {
    assert!(sensors >= 1);
    let mut b = StreamGraphBuilder::new();
    let gateways: Vec<NodeId> = (0..sensors)
        .map(|_| b.add_node(Operator::new(4_000.0)))
        .collect();
    let normalize = b.add_node(Operator::new(30_000.0));
    for &g in &gateways {
        b.add_edge(g, normalize, Channel::new(200.0)).expect("edge");
    }
    let anomaly = b.add_node(Operator::new(180_000.0));
    let enrich = b.add_node(Operator::new(60_000.0));
    let archive = b.add_node(Operator::new(8_000.0));
    b.add_edge(normalize, anomaly, Channel::with_selectivity(400.0, 0.5))
        .expect("edge");
    b.add_edge(normalize, enrich, Channel::with_selectivity(400.0, 0.4))
        .expect("edge");
    b.add_edge(normalize, archive, Channel::with_selectivity(400.0, 0.1))
        .expect("edge");
    let alert = b.add_node(Operator::new(12_000.0));
    b.add_edge(anomaly, alert, Channel::with_selectivity(96.0, 0.05))
        .expect("edge");
    b.add_edge(enrich, alert, Channel::with_selectivity(96.0, 0.1))
        .expect("edge");
    b.finish().expect("iot telemetry is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{ClusterSpec, Placement, TupleRates};

    #[test]
    fn word_count_shape() {
        let g = word_count(4);
        assert_eq!(g.num_nodes(), 3 + 4 + 1);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn etl_is_a_chain() {
        let g = etl_pipeline(5);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 6);
        for v in g.node_ids() {
            assert!(g.out_degree(v) <= 1);
        }
    }

    #[test]
    fn windowed_join_has_two_sources() {
        let g = windowed_join();
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn iot_fan_in_and_out() {
        let g = iot_telemetry(6);
        assert_eq!(g.sources().len(), 6);
        // archive + alert are sinks.
        assert_eq!(g.sinks().len(), 2);
    }

    #[test]
    fn catalog_graphs_simulate_cleanly() {
        let cluster = ClusterSpec::paper_medium(4);
        for g in [
            word_count(3),
            etl_pipeline(4),
            windowed_join(),
            iot_telemetry(5),
        ] {
            let p = Placement::all_on_one(g.num_nodes());
            let r = spg_sim_shim::relative(&g, &cluster, &p, 1e4);
            assert!((0.0..=1.0).contains(&r), "reward {r}");
            let rates = TupleRates::compute(&g, 1e4);
            assert!(rates.node.iter().all(|&x| x.is_finite() && x >= 0.0));
        }
    }

    /// Local shim so the gen crate can exercise simulation in tests
    /// without a dependency cycle (spg-sim depends on spg-graph only, but
    /// spg-gen does not depend on spg-sim; replicate the bottleneck rule).
    mod spg_sim_shim {
        use spg_graph::{ClusterSpec, Placement, StreamGraph, TupleRates};

        pub fn relative(g: &StreamGraph, cluster: &ClusterSpec, p: &Placement, rate: f64) -> f64 {
            let rates = TupleRates::compute(g, rate);
            let mut cpu = vec![0.0f64; cluster.devices];
            for (v, op) in g.ops().iter().enumerate() {
                cpu[p.device(v) as usize] += rates.node[v] * op.ipt;
            }
            let cap = cluster.instr_per_sec();
            cpu.iter()
                .filter(|&&l| l > 0.0)
                .map(|&l| (cap / l).min(1.0))
                .fold(1.0, f64::min)
        }
    }
}
