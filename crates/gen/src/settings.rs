//! The paper's experimental settings (§V).

use crate::topology::GrowthConfig;
use crate::workload::WorkloadConfig;
use serde::{Deserialize, Serialize};
use spg_graph::ClusterSpec;

/// The five evaluation settings of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// 4–26 nodes, 5 devices, 10K/s (the small-graph benchmark of Ni et al.).
    Small,
    /// 100–200 nodes, 5 devices, 5K/s.
    MediumFiveDevices,
    /// 100–200 nodes, 10 devices, 10K/s.
    Medium,
    /// 400–500 nodes, 10 devices, 10K/s (the paper's main setting).
    Large,
    /// 1000–2000 nodes, 20 devices, 10K/s.
    XLarge,
    /// Large topologies with CPU demand and bandwidth reduced by 33%:
    /// more devices than the optimum uses.
    ExcessDevice,
}

impl Setting {
    /// All settings, in paper order.
    pub fn all() -> [Setting; 6] {
        [
            Setting::Small,
            Setting::MediumFiveDevices,
            Setting::Medium,
            Setting::Large,
            Setting::XLarge,
            Setting::ExcessDevice,
        ]
    }

    /// Short slug used in file names and tables.
    pub fn slug(&self) -> &'static str {
        match self {
            Setting::Small => "small",
            Setting::MediumFiveDevices => "medium-5dev",
            Setting::Medium => "medium",
            Setting::Large => "large",
            Setting::XLarge => "xlarge",
            Setting::ExcessDevice => "excess",
        }
    }
}

/// Everything needed to generate a dataset for a setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name (slug of the setting by default).
    pub name: String,
    /// Number of devices.
    pub devices: usize,
    /// Device capacity in MIPS.
    pub mips: f64,
    /// Link bandwidth in Mbps.
    pub link_mbps: f64,
    /// Source tuple rate (tuples/second).
    pub source_rate: f64,
    /// Topology growth parameters.
    pub growth: GrowthConfig,
    /// Workload distribution parameters.
    pub workload: WorkloadConfig,
}

impl DatasetSpec {
    /// The paper's parameters for `setting`.
    ///
    /// Clusters use 1.25e3 MIPS devices; link bandwidth is 1000 Mbps for
    /// small/medium and 1500 Mbps for large/x-large (§V). The excess-device
    /// setting reuses the large topologies with CPU and bandwidth reduced
    /// by 33%.
    pub fn for_setting(setting: Setting) -> Self {
        let (range, devices, rate, mbps) = match setting {
            Setting::Small => ((4usize, 26usize), 5, 1e4, 1000.0),
            Setting::MediumFiveDevices => ((100, 200), 5, 5e3, 1000.0),
            Setting::Medium => ((100, 200), 10, 1e4, 1000.0),
            Setting::Large => ((400, 500), 10, 1e4, 1500.0),
            Setting::XLarge => ((1000, 2000), 20, 1e4, 1500.0),
            Setting::ExcessDevice => ((400, 500), 10, 1e4, 1500.0 * 0.67),
        };
        let mut workload = WorkloadConfig::default();
        if setting == Setting::ExcessDevice {
            // Nodes' CPU utilisation reduced by 33%.
            workload.cpu_load_frac = (0.5 * 0.67, 0.9 * 0.67);
        }
        Self {
            name: setting.slug().to_string(),
            devices,
            mips: 1.25e3,
            link_mbps: mbps,
            source_rate: rate,
            growth: GrowthConfig::for_range(range.0.max(3), range.1),
            workload,
        }
    }

    /// A scaled-down spec for CPU-only test/bench runs: same cluster and
    /// rates, smaller graphs.
    pub fn scaled_down(setting: Setting) -> Self {
        let mut spec = Self::for_setting(setting);
        let (lo, hi) = spec.growth.node_range;
        // Half-size keeps the coarsening headroom meaningful at 10-20
        // devices (quarter-size left fewer than 5 nodes per device).
        spec.growth.node_range = ((lo / 2).max(4), (hi / 2).max(8));
        spec
    }

    /// The cluster this spec targets.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::new(self.devices, self.mips, self.link_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let m = DatasetSpec::for_setting(Setting::Medium);
        assert_eq!(m.devices, 10);
        assert_eq!(m.growth.node_range, (100, 200));
        assert_eq!(m.source_rate, 1e4);
        assert_eq!(m.link_mbps, 1000.0);

        let l = DatasetSpec::for_setting(Setting::Large);
        assert_eq!(l.link_mbps, 1500.0);
        assert_eq!(l.growth.node_range, (400, 500));

        let x = DatasetSpec::for_setting(Setting::XLarge);
        assert_eq!(x.devices, 20);
        assert_eq!(x.growth.node_range, (1000, 2000));
    }

    #[test]
    fn excess_setting_reduces_cpu_and_bandwidth() {
        let e = DatasetSpec::for_setting(Setting::ExcessDevice);
        let l = DatasetSpec::for_setting(Setting::Large);
        assert!(e.link_mbps < l.link_mbps);
        assert!(e.workload.cpu_load_frac.1 < l.workload.cpu_load_frac.1);
        assert_eq!(e.devices, l.devices);
    }

    #[test]
    fn scaled_down_shrinks_range_only() {
        let s = DatasetSpec::scaled_down(Setting::Large);
        let f = DatasetSpec::for_setting(Setting::Large);
        assert!(s.growth.node_range.1 < f.growth.node_range.1);
        assert_eq!(s.devices, f.devices);
        assert_eq!(s.source_rate, f.source_rate);
    }

    #[test]
    fn slugs_are_unique() {
        let slugs: std::collections::HashSet<_> = Setting::all().iter().map(|s| s.slug()).collect();
        assert_eq!(slugs.len(), Setting::all().len());
    }
}
