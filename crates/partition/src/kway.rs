//! The multilevel k-way driver.

use crate::bisect::greedy_graph_growing;
use crate::coarsen::coarsen_to;
use crate::refine::kway_refine;
use rand::Rng;
use spg_graph::WeightedGraph;

/// Tuning knobs of the partitioner.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Allowed part weight as a multiple of the perfect share (Metis uses
    /// ~1.03; we default a little looser because stream loads are lumpy).
    pub balance_factor: f64,
    /// Coarsening stops at `coarse_factor * k` nodes.
    pub coarse_factor: usize,
    /// Seeds tried per initial bisection.
    pub bisection_tries: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Skip uncoarsening refinement entirely (ablation).
    pub refine: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            balance_factor: 1.10,
            coarse_factor: 8,
            bisection_tries: 4,
            refine_passes: 4,
            refine: true,
        }
    }
}

/// Partition `g` into `k` parts: multilevel coarsening, recursive-bisection
/// initial partitioning on the coarsest graph, then refined uncoarsening.
/// Returns part labels in `0..k`.
///
/// Calls (and, when telemetry is live, wall-clock time) are counted on
/// [`spg_obs::probe::PARTITION_KWAY`]; results are untouched.
pub fn kway_partition<R: Rng>(
    g: &WeightedGraph,
    k: usize,
    cfg: &PartitionConfig,
    rng: &mut R,
) -> Vec<u32> {
    spg_obs::probe::PARTITION_KWAY.time(|| kway_partition_impl(g, k, cfg, rng))
}

fn kway_partition_impl<R: Rng>(
    g: &WeightedGraph,
    k: usize,
    cfg: &PartitionConfig,
    rng: &mut R,
) -> Vec<u32> {
    assert!(k >= 1);
    if k == 1 || g.num_nodes() <= 1 {
        return vec![0; g.num_nodes()];
    }
    let target = (cfg.coarse_factor * k).max(16);
    let cap = g.total_node_weight() / k as f64 * cfg.balance_factor;
    let hierarchy = coarsen_to(g, target, Some(cap), rng);

    // Initial k-way partition of the coarsest graph by recursive bisection.
    let coarsest = hierarchy.coarsest();
    let mut part = vec![0u32; coarsest.num_nodes()];
    recursive_bisect(
        coarsest,
        &(0..coarsest.num_nodes() as u32).collect::<Vec<_>>(),
        0,
        k,
        cfg,
        &mut part,
        rng,
    );

    // Uncoarsen with per-level refinement.
    let max_part_weight = g.total_node_weight() / k as f64 * cfg.balance_factor;
    let mut current = part;
    if cfg.refine {
        kway_refine(
            hierarchy.coarsest(),
            &mut current,
            k,
            max_part_weight,
            cfg.refine_passes,
        );
    }
    for level in hierarchy.levels.iter().rev().skip(1) {
        let map = level.node_map.as_ref().expect("inner levels have maps");
        let mut projected: Vec<u32> = map.iter().map(|&c| current[c as usize]).collect();
        if cfg.refine {
            kway_refine(
                &level.graph,
                &mut projected,
                k,
                max_part_weight,
                cfg.refine_passes,
            );
        }
        current = projected;
    }
    // Coarse nodes are lumpy; enforce the balance cap on the finest graph
    // and give refinement one last pass from the balanced state.
    crate::refine::rebalance(g, &mut current, k, max_part_weight);
    if cfg.refine {
        kway_refine(g, &mut current, k, max_part_weight, cfg.refine_passes);
    }
    current
}

/// Recursively bisect the sub-graph induced by `nodes` into parts
/// `[first_part, first_part + k)`.
fn recursive_bisect<R: Rng>(
    g: &WeightedGraph,
    nodes: &[u32],
    first_part: u32,
    k: usize,
    cfg: &PartitionConfig,
    out: &mut [u32],
    rng: &mut R,
) {
    if k <= 1 || nodes.len() <= 1 {
        for &v in nodes {
            out[v as usize] = first_part;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let frac = k0 as f64 / k as f64;

    let (sub, back) = induced(g, nodes);
    let bis = greedy_graph_growing(
        &sub,
        frac,
        cfg.bisection_tries,
        0.10 * frac.min(1.0 - frac).max(0.2),
        rng,
    );
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &p) in bis.part.iter().enumerate() {
        if p == 0 {
            left.push(back[i]);
        } else {
            right.push(back[i]);
        }
    }
    // Degenerate splits still need progress: steal one node if necessary.
    if left.is_empty() && !right.is_empty() {
        left.push(right.pop().expect("non-empty"));
    } else if right.is_empty() && !left.is_empty() {
        right.push(left.pop().expect("non-empty"));
    }
    recursive_bisect(g, &left, first_part, k0, cfg, out, rng);
    recursive_bisect(g, &right, first_part + k0 as u32, k1, cfg, out, rng);
}

/// Induced subgraph on `nodes`; returns the subgraph and the map from
/// subgraph index back to the original node id.
fn induced(g: &WeightedGraph, nodes: &[u32]) -> (WeightedGraph, Vec<u32>) {
    let mut index = vec![u32::MAX; g.num_nodes()];
    for (i, &v) in nodes.iter().enumerate() {
        index[v as usize] = i as u32;
    }
    let weights: Vec<f64> = nodes.iter().map(|&v| g.node_weight[v as usize]).collect();
    let mut edges = Vec::new();
    for (i, &(a, b)) in g.edges.iter().enumerate() {
        let (ia, ib) = (index[a as usize], index[b as usize]);
        if ia != u32::MAX && ib != u32::MAX {
            edges.push((ia, ib, g.edge_weight[i]));
        }
    }
    (WeightedGraph::new(weights, edges), nodes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn produces_k_parts_with_reasonable_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_graph(300, 600, &mut rng);
        for k in [2usize, 4, 7, 10] {
            let part = kway_partition(&g, k, &PartitionConfig::default(), &mut rng);
            assert_eq!(part.len(), 300);
            assert!(part.iter().all(|&p| (p as usize) < k));
            let weights = g.part_weights(&part, k);
            let ideal = g.total_node_weight() / k as f64;
            for (p, &w) in weights.iter().enumerate() {
                assert!(
                    w <= ideal * 1.7,
                    "part {p} weight {w} vs ideal {ideal} (k={k})"
                );
            }
            // Every part should be non-empty for connected graphs this size.
            assert!(weights.iter().all(|&w| w > 0.0), "empty part at k={k}");
        }
    }

    #[test]
    fn k1_is_trivial() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_graph(20, 30, &mut rng);
        let part = kway_partition(&g, 1, &PartitionConfig::default(), &mut rng);
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn refinement_helps_or_ties() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        let g = random_graph(200, 500, &mut ChaCha8Rng::seed_from_u64(3));
        let with = kway_partition(&g, 5, &PartitionConfig::default(), &mut rng_a);
        let without = kway_partition(
            &g,
            5,
            &PartitionConfig {
                refine: false,
                ..Default::default()
            },
            &mut rng_b,
        );
        assert!(g.cut_weight(&with) <= g.cut_weight(&without) + 1e-6);
    }

    #[test]
    fn separates_clusters() {
        // Four 5-cliques chained by light edges must be split cleanly at k=4.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 5;
            for a in 0..5 {
                for b in (a + 1)..5 {
                    edges.push((base + a, base + b, 100.0));
                }
            }
            if c < 3 {
                edges.push((base + 4, base + 5, 1.0));
            }
        }
        let g = WeightedGraph::new(vec![1.0; 20], edges);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let part = kway_partition(&g, 4, &PartitionConfig::default(), &mut rng);
        let cut = g.cut_weight(&part);
        assert!(cut <= 3.0 + 1e-9, "cut = {cut}");
    }

    #[test]
    fn more_parts_never_reduce_cut_dramatically_wrong() {
        // Sanity: cut at k=2 should not exceed cut at k=6 by a huge factor
        // on a random graph (monotonicity in expectation).
        let g = random_graph(150, 400, &mut ChaCha8Rng::seed_from_u64(11));
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let c2 = g.cut_weight(&kway_partition(
            &g,
            2,
            &PartitionConfig::default(),
            &mut rng,
        ));
        let c6 = g.cut_weight(&kway_partition(
            &g,
            6,
            &PartitionConfig::default(),
            &mut rng,
        ));
        assert!(c2 <= c6 * 1.5, "c2 = {c2}, c6 = {c6}");
    }
}
