//! Target-weighted k-way partitioning for heterogeneous clusters: part `p`
//! should receive `targets[p]` of the total node weight (the capacity share
//! of device `p`). Used by the future-work heterogeneous extension.

use crate::bisect::greedy_graph_growing;
use crate::coarsen::coarsen_to;
use crate::kway::PartitionConfig;
use crate::refine::rebalance_targets;
use rand::Rng;
use spg_graph::hetero::HeteroClusterSpec;
use spg_graph::{Placement, StreamGraph, WeightedGraph};

/// Partition `g` into `targets.len()` parts where part `p` receives
/// roughly a `targets[p]` fraction of total node weight (`targets` must be
/// positive; they are normalised internally).
pub fn kway_partition_targets<R: Rng>(
    g: &WeightedGraph,
    targets: &[f64],
    cfg: &PartitionConfig,
    rng: &mut R,
) -> Vec<u32> {
    let k = targets.len();
    assert!(k >= 1 && targets.iter().all(|&t| t > 0.0));
    if k == 1 || g.num_nodes() <= 1 {
        return vec![0; g.num_nodes()];
    }
    let total_t: f64 = targets.iter().sum();
    let shares: Vec<f64> = targets.iter().map(|&t| t / total_t).collect();

    // Coarsen, partition the coarsest graph recursively by target shares,
    // project down, then rebalance to per-part caps.
    let coarse_target = (cfg.coarse_factor * k).max(16);
    let max_share = shares.iter().copied().fold(0.0, f64::max);
    let cap_hint = g.total_node_weight() * max_share * cfg.balance_factor;
    let hierarchy = coarsen_to(g, coarse_target, Some(cap_hint), rng);

    let coarsest = hierarchy.coarsest();
    let mut part = vec![0u32; coarsest.num_nodes()];
    let parts: Vec<(u32, f64)> = shares
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u32, s))
        .collect();
    let all: Vec<u32> = (0..coarsest.num_nodes() as u32).collect();
    split(coarsest, &all, &parts, cfg, &mut part, rng);

    // Project to the finest level.
    let mut current = part;
    for level in hierarchy.levels.iter().rev().skip(1) {
        let map = level.node_map.as_ref().expect("inner levels have maps");
        current = map.iter().map(|&c| current[c as usize]).collect();
    }

    // Enforce per-part caps on the finest graph.
    let caps: Vec<f64> = shares
        .iter()
        .map(|&s| g.total_node_weight() * s * cfg.balance_factor)
        .collect();
    rebalance_targets(g, &mut current, &caps);
    current
}

/// Recursive bisection by grouped target shares.
fn split<R: Rng>(
    g: &WeightedGraph,
    nodes: &[u32],
    parts: &[(u32, f64)],
    cfg: &PartitionConfig,
    out: &mut [u32],
    rng: &mut R,
) {
    if parts.len() == 1 || nodes.len() <= 1 {
        let p = parts[0].0;
        for &v in nodes {
            out[v as usize] = p;
        }
        return;
    }
    let half = parts.len() / 2;
    let (left_parts, right_parts) = parts.split_at(half);
    let left_share: f64 = left_parts.iter().map(|&(_, s)| s).sum();
    let total_share: f64 = parts.iter().map(|&(_, s)| s).sum();
    let frac = left_share / total_share;

    // Induced subgraph.
    let mut index = vec![u32::MAX; g.num_nodes()];
    for (i, &v) in nodes.iter().enumerate() {
        index[v as usize] = i as u32;
    }
    let weights: Vec<f64> = nodes.iter().map(|&v| g.node_weight[v as usize]).collect();
    let mut edges = Vec::new();
    for (i, &(a, b)) in g.edges.iter().enumerate() {
        let (ia, ib) = (index[a as usize], index[b as usize]);
        if ia != u32::MAX && ib != u32::MAX {
            edges.push((ia, ib, g.edge_weight[i]));
        }
    }
    let sub = WeightedGraph::new(weights, edges);
    let bis = greedy_graph_growing(&sub, frac, cfg.bisection_tries, 0.05, rng);

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &p) in bis.part.iter().enumerate() {
        if p == 0 {
            left.push(nodes[i]);
        } else {
            right.push(nodes[i]);
        }
    }
    if left.is_empty() && !right.is_empty() {
        left.push(right.pop().expect("non-empty"));
    } else if right.is_empty() && !left.is_empty() {
        right.push(left.pop().expect("non-empty"));
    }
    split(g, &left, left_parts, cfg, out, rng);
    split(g, &right, right_parts, cfg, out, rng);
}

/// End-to-end heterogeneous Metis: partition the stream graph with device
/// capacity shares as targets.
#[derive(Debug, Clone)]
pub struct MetisHeteroAllocator {
    /// Partitioner tuning.
    pub config: PartitionConfig,
    /// Seed for the RNG stream.
    pub seed: u64,
}

impl MetisHeteroAllocator {
    /// Default-configured allocator.
    pub fn new(seed: u64) -> Self {
        Self {
            config: PartitionConfig::default(),
            seed,
        }
    }

    /// Place `graph` on a heterogeneous cluster.
    pub fn allocate_hetero(
        &self,
        graph: &StreamGraph,
        cluster: &HeteroClusterSpec,
        source_rate: f64,
    ) -> Placement {
        use rand::SeedableRng;
        let w = WeightedGraph::from_stream(graph, source_rate);
        let targets = cluster.capacity_shares();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.seed);
        Placement::new(kway_partition_targets(&w, &targets, &self.config, &mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn respects_asymmetric_targets() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_graph(200, 400, &mut rng);
        let targets = [1.0, 3.0]; // 25% / 75%
        let part = kway_partition_targets(&g, &targets, &PartitionConfig::default(), &mut rng);
        let w = g.part_weights(&part, 2);
        let total = g.total_node_weight();
        let frac1 = w[1] / total;
        assert!(
            (0.55..=0.9).contains(&frac1),
            "part 1 got {frac1} of the weight, wanted ~0.75"
        );
    }

    #[test]
    fn uniform_targets_match_plain_kway_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_graph(150, 300, &mut rng);
        let part = kway_partition_targets(&g, &[1.0; 4], &PartitionConfig::default(), &mut rng);
        let weights = g.part_weights(&part, 4);
        let ideal = g.total_node_weight() / 4.0;
        for w in weights {
            assert!(w <= ideal * 1.7, "part weight {w} vs ideal {ideal}");
        }
    }

    #[test]
    fn hetero_allocator_feeds_big_devices() {
        let spec = spg_gen::DatasetSpec::scaled_down(spg_gen::Setting::Medium);
        let g = spg_gen::generate_graph(&spec, 3);
        let cluster = HeteroClusterSpec::new(vec![500.0, 500.0, 3000.0], 1500.0);
        let alloc = MetisHeteroAllocator::new(5);
        let p = alloc.allocate_hetero(&g, &cluster, spec.source_rate);
        let rates = spg_graph::TupleRates::compute(&g, spec.source_rate);
        let cpu = rates.cpu_demand(&g);
        let mut load = vec![0.0; 3];
        for v in 0..g.num_nodes() {
            load[p.device(v) as usize] += cpu[v];
        }
        assert!(
            load[2] > load[0] && load[2] > load[1],
            "big device should carry the most load: {load:?}"
        );
    }

    #[test]
    fn single_target_is_trivial() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_graph(20, 30, &mut rng);
        let part = kway_partition_targets(&g, &[1.0], &PartitionConfig::default(), &mut rng);
        assert!(part.iter().all(|&p| p == 0));
    }
}
