//! Partition refinement.
//!
//! * [`fm_bisection_refine`] — Fiduccia–Mattheyses passes for 2-way
//!   partitions: tentatively move every node once in best-gain order, then
//!   roll back to the best prefix. Climbs out of local minima by accepting
//!   temporarily-negative moves inside a pass.
//! * [`kway_refine`] — greedy boundary refinement for k-way partitions:
//!   repeatedly move the boundary node with the best (gain, balance-ok)
//!   move until a pass yields no improvement.

use crate::bisect::Bisection;
use spg_graph::WeightedGraph;

/// FM refinement of a bisection toward `target_frac` balance with
/// `balance_tol` slack (part-0 weight must stay within
/// `target ± tol·total`). `max_passes` bounds the outer loop.
pub fn fm_bisection_refine(
    g: &WeightedGraph,
    bis: &mut Bisection,
    target_frac: f64,
    balance_tol: f64,
    max_passes: usize,
) {
    let n = g.num_nodes();
    if n < 2 {
        return;
    }
    let total = g.total_node_weight();
    let lo = (target_frac - balance_tol) * total;
    let hi = (target_frac + balance_tol) * total;

    for _ in 0..max_passes {
        let mut locked = vec![false; n];
        let mut gain = vec![0.0f64; n];
        for v in 0..n as u32 {
            gain[v as usize] = move_gain2(g, &bis.part, v);
        }

        let mut moves: Vec<u32> = Vec::with_capacity(n);
        let mut cut = bis.cut;
        let mut w0 = bis.weight0;
        let mut best_cut = cut;
        let mut best_prefix = 0usize;
        let mut part = bis.part.clone();

        for _ in 0..n {
            // Best unlocked move that keeps balance feasible.
            let mut cand: Option<(u32, f64)> = None;
            for v in 0..n as u32 {
                if locked[v as usize] {
                    continue;
                }
                let wv = g.node_weight[v as usize];
                let target = target_frac * total;
                let new_w0 = if part[v as usize] == 0 {
                    w0 - wv
                } else {
                    w0 + wv
                };
                // Feasible if inside the window, or strictly improving an
                // out-of-window balance (lets FM recover from overshoot).
                let inside = new_w0 >= lo && new_w0 <= hi;
                let improving = (new_w0 - target).abs() < (w0 - target).abs() - 1e-12;
                if !inside && !improving {
                    continue;
                }
                if cand.is_none_or(|(_, bg)| gain[v as usize] > bg) {
                    cand = Some((v, gain[v as usize]));
                }
            }
            let Some((v, gv)) = cand else { break };

            // Apply tentatively.
            let from = part[v as usize];
            let to = 1 - from;
            part[v as usize] = to;
            locked[v as usize] = true;
            cut -= gv;
            w0 += if from == 0 {
                -g.node_weight[v as usize]
            } else {
                g.node_weight[v as usize]
            };
            moves.push(v);
            for &(u, e) in g.neighbors(v) {
                if locked[u as usize] {
                    continue;
                }
                let w = g.edge_weight[e as usize];
                // u's gain changes by ±2w depending on whether v joined or
                // left u's side.
                if part[u as usize] == to {
                    gain[u as usize] -= 2.0 * w;
                } else {
                    gain[u as usize] += 2.0 * w;
                }
            }

            if cut < best_cut - 1e-12 {
                best_cut = cut;
                best_prefix = moves.len();
            }
        }

        if best_prefix == 0 {
            break; // pass produced no improvement
        }
        // Roll back to the best prefix.
        let mut part = bis.part.clone();
        let mut w0 = bis.weight0;
        for &v in &moves[..best_prefix] {
            let from = part[v as usize];
            part[v as usize] = 1 - from;
            w0 += if from == 0 {
                -g.node_weight[v as usize]
            } else {
                g.node_weight[v as usize]
            };
        }
        bis.part = part;
        bis.weight0 = w0;
        bis.cut = best_cut;
    }
}

/// Gain of moving `v` to the other side in a 2-way partition.
fn move_gain2(g: &WeightedGraph, part: &[u32], v: u32) -> f64 {
    let mut ext = 0.0;
    let mut int = 0.0;
    for &(u, e) in g.neighbors(v) {
        let w = g.edge_weight[e as usize];
        if part[u as usize] == part[v as usize] {
            int += w;
        } else {
            ext += w;
        }
    }
    ext - int
}

/// Greedy k-way boundary refinement. Moves a node to the neighbouring part
/// with the highest positive gain, subject to every part staying below
/// `max_part_weight`. Returns the number of moves applied.
pub fn kway_refine(
    g: &WeightedGraph,
    part: &mut [u32],
    k: usize,
    max_part_weight: f64,
    max_passes: usize,
) -> usize {
    let n = g.num_nodes();
    let mut part_weight = g.part_weights(part, k);
    let mut total_moves = 0usize;

    for _ in 0..max_passes {
        let mut moved = 0usize;
        for v in 0..n as u32 {
            // Connectivity of v to each part among its neighbours.
            let mut conn: Vec<(u32, f64)> = Vec::new();
            for &(u, e) in g.neighbors(v) {
                let p = part[u as usize];
                let w = g.edge_weight[e as usize];
                match conn.iter_mut().find(|(pp, _)| *pp == p) {
                    Some((_, cw)) => *cw += w,
                    None => conn.push((p, w)),
                }
            }
            let from = part[v as usize];
            let own = conn
                .iter()
                .find(|(p, _)| *p == from)
                .map(|&(_, w)| w)
                .unwrap_or(0.0);
            let wv = g.node_weight[v as usize];
            let mut best: Option<(u32, f64)> = None;
            for &(p, w) in &conn {
                if p == from {
                    continue;
                }
                if part_weight[p as usize] + wv > max_part_weight {
                    continue;
                }
                let gain = w - own;
                if gain > 1e-12 && best.is_none_or(|(_, bg)| gain > bg) {
                    best = Some((p, gain));
                }
            }
            if let Some((p, _)) = best {
                part_weight[from as usize] -= wv;
                part_weight[p as usize] += wv;
                part[v as usize] = p;
                moved += 1;
            }
        }
        total_moves += moved;
        if moved == 0 {
            break;
        }
    }
    total_moves
}

/// Force every part below `max_part_weight` by evicting nodes from
/// overweight parts into the lightest feasible part, choosing evictions
/// with the smallest cut penalty. Used after uncoarsening projection where
/// coarse nodes can be lumpy. Returns the number of moves.
pub fn rebalance(g: &WeightedGraph, part: &mut [u32], k: usize, max_part_weight: f64) -> usize {
    let n = g.num_nodes();
    let mut part_weight = g.part_weights(part, k);
    let mut moves = 0usize;
    // Bounded: each node moves at most a few times.
    for _round in 0..4 * n {
        // Heaviest overweight part.
        let Some((from, _)) = part_weight
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > max_part_weight)
            .max_by(|a, b| a.1.total_cmp(b.1))
        else {
            break;
        };
        // Cheapest eviction: node in `from` and target part minimising the
        // cut increase, target must have room (or be the globally lightest).
        let mut best: Option<(u32, u32, f64)> = None; // (node, to, penalty)
        for v in 0..n as u32 {
            if part[v as usize] as usize != from {
                continue;
            }
            let wv = g.node_weight[v as usize];
            // Connectivity to each part.
            let mut conn = vec![0.0f64; k];
            for &(u, e) in g.neighbors(v) {
                conn[part[u as usize] as usize] += g.edge_weight[e as usize];
            }
            for to in 0..k {
                if to == from {
                    continue;
                }
                if part_weight[to] + wv > max_part_weight {
                    continue;
                }
                let penalty = conn[from] - conn[to];
                if best.is_none_or(|(_, _, bp)| penalty < bp) {
                    best = Some((v, to as u32, penalty));
                }
            }
        }
        let Some((v, to, _)) = best else { break };
        let wv = g.node_weight[v as usize];
        part_weight[from] -= wv;
        part_weight[to as usize] += wv;
        part[v as usize] = to;
        moves += 1;
    }
    moves
}

/// Per-part-cap variant of [`rebalance`]: part `p` must stay below
/// `caps[p]` (heterogeneous device capacities).
pub fn rebalance_targets(g: &WeightedGraph, part: &mut [u32], caps: &[f64]) -> usize {
    let n = g.num_nodes();
    let k = caps.len();
    let mut part_weight = g.part_weights(part, k);
    let mut moves = 0usize;
    for _round in 0..4 * n {
        let Some((from, _)) = part_weight
            .iter()
            .enumerate()
            .filter(|&(p, &w)| w > caps[p])
            .max_by(|a, b| (a.1 / caps[a.0]).total_cmp(&(b.1 / caps[b.0])))
        else {
            break;
        };
        let mut best: Option<(u32, u32, f64)> = None;
        for v in 0..n as u32 {
            if part[v as usize] as usize != from {
                continue;
            }
            let wv = g.node_weight[v as usize];
            let mut conn = vec![0.0f64; k];
            for &(u, e) in g.neighbors(v) {
                conn[part[u as usize] as usize] += g.edge_weight[e as usize];
            }
            for to in 0..k {
                if to == from || part_weight[to] + wv > caps[to] {
                    continue;
                }
                let penalty = conn[from] - conn[to];
                if best.is_none_or(|(_, _, bp)| penalty < bp) {
                    best = Some((v, to as u32, penalty));
                }
            }
        }
        let Some((v, to, _)) = best else { break };
        let wv = g.node_weight[v as usize];
        part_weight[from] -= wv;
        part_weight[to as usize] += wv;
        part[v as usize] = to;
        moves += 1;
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_graph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fm_never_worsens_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for seed in 0..5 {
            let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
            let g = random_graph(60, 120, &mut rng2);
            let part: Vec<u32> = (0..60).map(|_| rng.gen_range(0..2u32)).collect();
            let w0 = part
                .iter()
                .enumerate()
                .filter(|(_, &p)| p == 0)
                .map(|(v, _)| g.node_weight[v])
                .sum();
            let cut0 = g.cut_weight(&part);
            let mut bis = Bisection {
                part,
                cut: cut0,
                weight0: w0,
            };
            fm_bisection_refine(&g, &mut bis, 0.5, 0.3, 4);
            assert!(
                bis.cut <= cut0 + 1e-9,
                "cut rose from {cut0} to {}",
                bis.cut
            );
            assert!((g.cut_weight(&bis.part) - bis.cut).abs() < 1e-6);
        }
    }

    #[test]
    fn fm_fixes_obviously_bad_split() {
        // Two triangles joined by a light edge, started with a bad split.
        let g = WeightedGraph::new(
            vec![1.0; 6],
            vec![
                (0, 1, 10.0),
                (1, 2, 10.0),
                (0, 2, 10.0),
                (3, 4, 10.0),
                (4, 5, 10.0),
                (3, 5, 10.0),
                (2, 3, 1.0),
            ],
        );
        let part = vec![0, 1, 0, 1, 0, 1];
        let cut0 = g.cut_weight(&part);
        let mut bis = Bisection {
            weight0: 3.0,
            cut: cut0,
            part,
        };
        fm_bisection_refine(&g, &mut bis, 0.5, 0.2, 8);
        assert!((bis.cut - 1.0).abs() < 1e-9, "cut = {}", bis.cut);
    }

    #[test]
    fn kway_refine_respects_balance_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_graph(80, 160, &mut rng);
        let k = 4;
        let mut part: Vec<u32> = (0..80u32).map(|v| v % k as u32).collect();
        let cap = g.total_node_weight() / k as f64 * 1.2;
        let cut0 = g.cut_weight(&part);
        kway_refine(&g, &mut part, k, cap, 6);
        let cut1 = g.cut_weight(&part);
        assert!(cut1 <= cut0 + 1e-9);
        for w in g.part_weights(&part, k) {
            assert!(w <= cap + 1e-6, "part weight {w} above cap {cap}");
        }
    }

    #[test]
    fn kway_refine_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_graph(50, 80, &mut rng);
        let mut part: Vec<u32> = (0..50u32).map(|v| v % 3).collect();
        // Cap strictly above any reachable weight so the boundary is not
        // float-sensitive (cap == total is degenerate: incremental weight
        // accounting can land an epsilon above it).
        let cap = g.total_node_weight() * 2.0;
        kway_refine(&g, &mut part, 3, cap, 50);
        // Re-running from the converged state must make zero moves.
        let moves = kway_refine(&g, &mut part, 3, cap, 1);
        assert_eq!(moves, 0);
    }
}
