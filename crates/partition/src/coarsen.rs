//! The multilevel coarsening phase.

use crate::matching::heavy_edge_matching;
use rand::Rng;
use spg_graph::WeightedGraph;

/// One level of the coarsening hierarchy.
#[derive(Debug, Clone)]
pub struct Level {
    /// The graph at this level.
    pub graph: WeightedGraph,
    /// Map from this level's nodes to the next-coarser level's nodes
    /// (`None` on the coarsest level).
    pub node_map: Option<Vec<u32>>,
}

/// The full hierarchy, finest (input) graph first.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Levels, `levels[0]` is the input graph.
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// The coarsest graph.
    pub fn coarsest(&self) -> &WeightedGraph {
        &self
            .levels
            .last()
            .expect("hierarchy has at least one level")
            .graph
    }

    /// Project a partition of the coarsest graph to the finest, without
    /// refinement (refinement happens level by level in the k-way driver).
    pub fn project_to_finest(&self, coarse_part: &[u32]) -> Vec<u32> {
        let mut part = coarse_part.to_vec();
        for level in self.levels.iter().rev().skip(1) {
            let map = level
                .node_map
                .as_ref()
                .expect("non-coarsest levels have maps");
            part = map.iter().map(|&c| part[c as usize]).collect();
        }
        part
    }
}

/// Coarsen `g` by repeated heavy-edge matching until at most `target_nodes`
/// remain or matching stalls (< 10% reduction).
pub fn coarsen_to<R: Rng>(
    g: &WeightedGraph,
    target_nodes: usize,
    max_pair_weight: Option<f64>,
    rng: &mut R,
) -> Hierarchy {
    let mut levels = Vec::new();
    let mut current = g.clone();
    loop {
        if current.num_nodes() <= target_nodes {
            levels.push(Level {
                graph: current,
                node_map: None,
            });
            break;
        }
        let m = heavy_edge_matching(&current, max_pair_weight, rng);
        let (map, k) = m.to_node_map();
        // Stall detection: require at least 10% shrinkage to continue.
        if k as f64 > current.num_nodes() as f64 * 0.9 {
            levels.push(Level {
                graph: current,
                node_map: None,
            });
            break;
        }
        let next = current.contract(&map, k);
        levels.push(Level {
            graph: current,
            node_map: Some(map),
        });
        current = next;
    }
    Hierarchy { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn coarsens_to_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_graph(200, 300, &mut rng);
        let h = coarsen_to(&g, 20, None, &mut rng);
        assert!(h.coarsest().num_nodes() <= 40, "stalled far above target");
        assert!(h.levels.len() >= 2);
    }

    #[test]
    fn node_weight_is_conserved_per_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_graph(100, 150, &mut rng);
        let total = g.total_node_weight();
        let h = coarsen_to(&g, 10, None, &mut rng);
        for level in &h.levels {
            assert!((level.graph.total_node_weight() - total).abs() < 1e-6);
        }
    }

    #[test]
    fn projection_reaches_finest() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_graph(80, 100, &mut rng);
        let h = coarsen_to(&g, 8, None, &mut rng);
        let coarse_n = h.coarsest().num_nodes();
        let coarse_part: Vec<u32> = (0..coarse_n as u32).map(|i| i % 2).collect();
        let fine = h.project_to_finest(&coarse_part);
        assert_eq!(fine.len(), g.num_nodes());
        assert!(fine.iter().all(|&p| p < 2));
    }

    #[test]
    fn projection_preserves_cut() {
        // The cut of a projected partition equals the coarse cut (intra-
        // group edges are internal by construction of contract()).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_graph(60, 80, &mut rng);
        let h = coarsen_to(&g, 6, None, &mut rng);
        let coarse_n = h.coarsest().num_nodes();
        let coarse_part: Vec<u32> = (0..coarse_n as u32).map(|i| i % 2).collect();
        let coarse_cut = h.coarsest().cut_weight(&coarse_part);
        let fine = h.project_to_finest(&coarse_part);
        let fine_cut = g.cut_weight(&fine);
        assert!((coarse_cut - fine_cut).abs() < 1e-6 * coarse_cut.max(1.0));
    }

    #[test]
    fn already_small_graph_is_single_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_graph(5, 3, &mut rng);
        let h = coarsen_to(&g, 10, None, &mut rng);
        assert_eq!(h.levels.len(), 1);
        assert!(h.levels[0].node_map.is_none());
    }
}
