//! # spg-partition
//!
//! A from-scratch multilevel k-way graph partitioner in the style of Metis
//! (Karypis & Kumar 1998), the paper's strongest non-learned baseline and
//! the partitioning half of the coarsening-partitioning framework:
//!
//! 1. **Coarsening** — repeated heavy-edge matching and contraction until
//!    the graph is small ([`coarsen`]).
//! 2. **Initial partitioning** — greedy graph growing bisection, applied
//!    recursively for k parts ([`bisect`], [`kway`]).
//! 3. **Uncoarsening** — project the partition up each level and refine it
//!    with Fiduccia–Mattheyses boundary passes ([`refine`]).
//!
//! Also provided:
//!
//! * [`allocate::MetisAllocator`] — the end-to-end baseline: stream graph →
//!   weighted graph → k-way partition → placement.
//! * [`allocate::MetisOracle`] — sweeps the number of parts `1..=D` and
//!   keeps the best simulated throughput (the paper's Metis-oracle).
//! * [`guided`] — inference of "which edges did Metis collapse" via maximum
//!   spanning trees per group, used to seed the RL model's sample buffer
//!   (§IV-C, Metis-guided training signals).
//! * [`incremental`] — warm-started re-allocation after a graph delta:
//!   project the prior placement, refine, fall back to the full pipeline
//!   above a churn threshold (DESIGN.md §15).

pub mod allocate;
pub mod bisect;
pub mod coarsen;
pub mod guided;
pub mod incremental;
pub mod kway;
pub mod matching;
pub mod refine;
pub mod targets;

pub use allocate::{MetisAllocator, MetisOracle};
pub use incremental::{realloc_decide, IncrementalConfig, ReallocDecision};
pub use kway::{kway_partition, PartitionConfig};
pub use targets::{kway_partition_targets, MetisHeteroAllocator};

#[cfg(test)]
pub(crate) mod testutil {
    use rand::Rng;
    use spg_graph::WeightedGraph;

    /// A random connected weighted graph for partitioner tests.
    pub fn random_graph<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> WeightedGraph {
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let mut edges = Vec::new();
        // Random spanning tree first (guarantees connectivity).
        for v in 1..n as u32 {
            let u = rng.gen_range(0..v);
            edges.push((u, v, rng.gen_range(1.0..100.0)));
        }
        for _ in 0..extra_edges {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a != b {
                edges.push((a.min(b), a.max(b), rng.gen_range(1.0..100.0)));
            }
        }
        WeightedGraph::new(weights, edges)
    }
}
