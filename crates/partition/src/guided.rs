//! Metis-guided training signals (§IV-C).
//!
//! The RL coarsening model's sample buffer can be seeded with Metis
//! partitions, but Metis "does not decide for every edge whether to merge"
//! — only the final groups are visible. The paper recovers a collapsed-edge
//! list with a *maximum spanning tree*: for every group of original nodes
//! mapped to one coarse node, pick the heaviest `c - 1` edges that span its
//! `c` connected components (per connected component within the group, a
//! maximum spanning tree of the intra-group edges).

use spg_graph::unionfind::UnionFind;
use spg_graph::{StreamGraph, TupleRates};

/// Infer a per-edge collapse decision vector that reproduces `groups`
/// (node -> group id) when applied to `graph`: inside every group, a
/// maximum-weight spanning forest (by edge traffic) is marked collapsed.
///
/// Applying the returned decisions with
/// [`spg_graph::Coarsening::from_collapse`] reconstructs each group's
/// connected components exactly.
pub fn infer_collapsed_edges(graph: &StreamGraph, rates: &TupleRates, groups: &[u32]) -> Vec<bool> {
    assert_eq!(groups.len(), graph.num_nodes());
    let traffic = rates.edge_traffic(graph);

    // Kruskal over intra-group edges in descending traffic order.
    let mut intra: Vec<u32> = (0..graph.num_edges() as u32)
        .filter(|&e| {
            let (s, d) = graph.edge_list()[e as usize];
            groups[s as usize] == groups[d as usize]
        })
        .collect();
    intra.sort_unstable_by(|&a, &b| traffic[b as usize].total_cmp(&traffic[a as usize]));

    let mut uf = UnionFind::new(graph.num_nodes());
    let mut collapse = vec![false; graph.num_edges()];
    for &e in &intra {
        let (s, d) = graph.edge_list()[e as usize];
        if uf.union(s, d) {
            collapse[e as usize] = true;
        }
    }
    collapse
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Coarsening, Operator, StreamGraphBuilder};

    fn diamond() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let n0 = b.add_node(Operator::new(10.0));
        let n1 = b.add_node(Operator::new(20.0));
        let n2 = b.add_node(Operator::new(30.0));
        let n3 = b.add_node(Operator::new(40.0));
        b.add_edge(n0, n1, Channel::new(8.0)).unwrap();
        b.add_edge(n0, n2, Channel::new(16.0)).unwrap();
        b.add_edge(n1, n3, Channel::new(4.0)).unwrap();
        b.add_edge(n2, n3, Channel::new(4.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn reconstructs_groups_exactly() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        // Group {0,1,2} and {3}.
        let groups = [0u32, 0, 0, 1];
        let collapse = infer_collapsed_edges(&g, &rates, &groups);
        let c = Coarsening::from_collapse(&g, &rates, &collapse, None, None);
        assert_eq!(c.coarse.num_nodes(), 2);
        assert_eq!(c.node_map[0], c.node_map[1]);
        assert_eq!(c.node_map[0], c.node_map[2]);
        assert_ne!(c.node_map[0], c.node_map[3]);
    }

    #[test]
    fn picks_heaviest_spanning_edges() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        // All nodes in one group: spanning tree has 3 edges; the heaviest
        // edge (0->2, traffic 1600) must be chosen.
        let collapse = infer_collapsed_edges(&g, &rates, &[0, 0, 0, 0]);
        assert_eq!(collapse.iter().filter(|&&c| c).count(), 3);
        assert!(collapse[1], "heaviest edge must be in the spanning tree");
    }

    #[test]
    fn disconnected_group_collapses_per_component() {
        // Group {1, 2} has no internal edge in the diamond: nothing can be
        // collapsed for it, so the coarsening keeps them separate (the MST
        // inference spans *components*, not arbitrary node sets).
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        let collapse = infer_collapsed_edges(&g, &rates, &[0, 1, 1, 2]);
        assert!(collapse.iter().all(|&c| !c));
    }

    #[test]
    fn identity_grouping_collapses_nothing() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        let collapse = infer_collapsed_edges(&g, &rates, &[0, 1, 2, 3]);
        assert!(collapse.iter().all(|&c| !c));
    }
}
