//! Incremental re-allocation: warm-start refinement from a prior
//! placement after a [`GraphDelta`] (DESIGN.md §15).
//!
//! A drifting job rarely needs the full coarsen→partition→simulate
//! pipeline again: the prior placement is already a near-optimum of a
//! near-identical problem. [`realloc_decide`] projects the prior
//! placement onto the mutated graph through the delta's provenance
//! table, seeds the handful of unplaced nodes next to their heaviest
//! already-placed neighbour, restores the balance invariant with
//! [`rebalance_targets`], and polishes with [`kway_refine`] — the same
//! boundary refinement the full partitioner ends with, just started
//! from the projected solution instead of an uncoarsened one.
//!
//! Above a churn threshold the projection stops being a useful prior
//! and the caller is told to re-run the full pipeline instead. The
//! whole path is RNG-free: the same `(prior, placement, delta)` always
//! yields bit-identical output.

use crate::refine::{kway_refine, rebalance_targets};
use spg_graph::delta::DEFAULT_CHURN_THRESHOLD;
use spg_graph::WeightedGraph;
use spg_graph::{ClusterSpec, DeltaError, GraphDelta, Placement, StreamGraph, TupleRates};
use spg_sim::reward::relative_throughput_with_rates;

/// Tuning of the warm-start path. Mirrors `PartitionConfig` where the
/// knobs overlap so warm-started refinement optimises the same
/// objective the full partitioner does.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Churn ratio (see [`GraphDelta::churn`]) above which the prior
    /// placement is discarded and the full pipeline re-runs.
    pub churn_threshold: f64,
    /// Allowed part-weight imbalance, as in `PartitionConfig`.
    pub balance_factor: f64,
    /// Boundary-refinement pass budget (warm starts converge in a few
    /// passes, so this is a backstop, not a tuning knob).
    pub refine_passes: usize,
    /// Single-node move budget for the reward-guided polish that runs
    /// after cut-based refinement (see [`throughput_polish`]).
    pub polish_moves: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            churn_threshold: DEFAULT_CHURN_THRESHOLD,
            balance_factor: 1.10,
            refine_passes: 8,
            polish_moves: 32,
        }
    }
}

/// Dense per-resource loads of a placement, mirroring the analytic
/// simulator's model (`spg_sim::analytic`): per-device CPU demand and
/// NIC egress/ingress, plus a `k×k` directional link-traffic matrix.
/// Small enough (k ≤ tens) to clone per candidate move, which keeps the
/// polish evaluator allocation-free and exact (no apply/revert float
/// drift).
struct LoadModel {
    k: usize,
    cpu: Vec<f64>,
    egress: Vec<f64>,
    ingress: Vec<f64>,
    link: Vec<f64>,
}

impl LoadModel {
    fn build(graph: &StreamGraph, rates: &TupleRates, part: &[u32], k: usize) -> Self {
        let mut m = Self {
            k,
            cpu: vec![0.0; k],
            egress: vec![0.0; k],
            ingress: vec![0.0; k],
            link: vec![0.0; k * k],
        };
        for (v, op) in graph.ops().iter().enumerate() {
            m.cpu[part[v] as usize] += rates.node[v] * op.ipt;
        }
        for (i, &(s, t)) in graph.edge_list().iter().enumerate() {
            let (ds, dt) = (part[s as usize] as usize, part[t as usize] as usize);
            if ds == dt {
                continue;
            }
            let traffic = rates.edge[i] * graph.channel(spg_graph::EdgeId(i as u32)).payload;
            m.egress[ds] += traffic;
            m.ingress[dt] += traffic;
            m.link[ds * k + dt] += traffic;
        }
        m
    }

    /// The sustained fraction `α = min(1, min_c capacity_c / load_c)`.
    fn alpha(&self, cpu_cap: f64, bw: f64) -> f64 {
        let mut a = 1.0f64;
        for &l in &self.cpu {
            if l > 0.0 {
                a = a.min(cpu_cap / l);
            }
        }
        for &l in self.egress.iter().chain(&self.ingress).chain(&self.link) {
            if l > 0.0 {
                a = a.min(bw / l);
            }
        }
        a
    }

    /// Route `traffic` of the edge `(src_dev, dst_dev)` in (`sign` +1)
    /// or out (`sign` -1) of the model, journalling every touched cell
    /// into `undo` so [`LoadModel::restore`] can rewind exactly.
    fn route(
        &mut self,
        src_dev: usize,
        dst_dev: usize,
        traffic: f64,
        sign: f64,
        undo: &mut Vec<(Slot, f64)>,
    ) {
        if src_dev == dst_dev {
            return;
        }
        undo.push((Slot::Egress(src_dev), self.egress[src_dev]));
        self.egress[src_dev] += sign * traffic;
        undo.push((Slot::Ingress(dst_dev), self.ingress[dst_dev]));
        self.ingress[dst_dev] += sign * traffic;
        let cell = src_dev * self.k + dst_dev;
        undo.push((Slot::Link(cell), self.link[cell]));
        self.link[cell] += sign * traffic;
    }

    /// Rewind a candidate move by writing the journalled prior values
    /// back verbatim (in reverse, so double-touched cells end correct).
    /// Bit-exact — unlike arithmetic reversal, which would accumulate
    /// float round-off across candidates.
    fn restore(&mut self, undo: &mut Vec<(Slot, f64)>) {
        while let Some((slot, prior)) = undo.pop() {
            match slot {
                Slot::Cpu(d) => self.cpu[d] = prior,
                Slot::Egress(d) => self.egress[d] = prior,
                Slot::Ingress(d) => self.ingress[d] = prior,
                Slot::Link(c) => self.link[c] = prior,
            }
        }
    }
}

/// Address of one load cell in a [`LoadModel`] undo journal.
#[derive(Clone, Copy)]
enum Slot {
    Cpu(usize),
    Egress(usize),
    Ingress(usize),
    Link(usize),
}

/// Hill-climb single-node moves off the saturated resource, scored by
/// the *actual* analytic reward rather than cut weight.
///
/// Cut-based refinement stops at local optima of the wrong objective:
/// the reward is `min` over per-resource capacity/load ratios, so only
/// moves that relieve the binding resource help at all. Each round
/// marks every device that sits on a binding ratio (CPU, NIC, or
/// either endpoint of a saturated link — marking a *set* keeps the
/// result independent of any bottleneck tie-break), then evaluates
/// moving each node on a marked device to a pruned deterministic
/// target set — the devices hosting its neighbours (relieves link and
/// NIC pressure) plus the least-loaded CPU and NIC devices (relieves
/// compute) — and applies the strictly best improving move. Stops at
/// `max_moves`, at reward 1.0, when no single move improves, or when
/// the evaluation budget runs dry (the hard latency bound: a bad prior
/// can otherwise make every round scan half the graph). Pure and
/// RNG-free; ties prefer the lowest `(node, device)` pair. The model
/// is rebuilt from scratch after every applied move, so float
/// round-off never accumulates across rounds.
fn throughput_polish(
    graph: &StreamGraph,
    cluster: &ClusterSpec,
    rates: &TupleRates,
    part: &mut [u32],
    max_moves: usize,
) -> usize {
    let k = cluster.devices;
    let cpu_cap = cluster.instr_per_sec();
    let bw = cluster.link_bytes_per_sec();
    // Incident edges of each node as (other endpoint, traffic, v-is-src).
    let mut incident: Vec<Vec<(u32, f64, bool)>> = vec![Vec::new(); graph.num_nodes()];
    for (i, &(s, t)) in graph.edge_list().iter().enumerate() {
        let traffic = rates.edge[i] * graph.channel(spg_graph::EdgeId(i as u32)).payload;
        incident[s as usize].push((t, traffic, true));
        incident[t as usize].push((s, traffic, false));
    }

    // Hard bound on total candidate evaluations across all rounds: the
    // latency backstop for priors so unbalanced that a binding device
    // hosts a large fraction of the graph. Deterministic — the budget
    // runs out at the same candidate for the same input.
    let mut evals: usize = 6_000;

    let mut moves = 0;
    while moves < max_moves && evals > 0 {
        let model = LoadModel::build(graph, rates, part, k);
        let alpha = model.alpha(cpu_cap, bw);
        if alpha >= 1.0 {
            break;
        }
        // A ratio is binding when capacity/load matches the sustained
        // fraction; the tolerance absorbs division round-off.
        let binding = |cap: f64, load: f64| load > 0.0 && cap / load <= alpha * (1.0 + 1e-9);
        let mut marked = vec![false; k];
        for (d, m) in marked.iter_mut().enumerate() {
            if binding(cpu_cap, model.cpu[d])
                || binding(bw, model.egress[d])
                || binding(bw, model.ingress[d])
            {
                *m = true;
            }
        }
        for s in 0..k {
            for t in 0..k {
                if binding(bw, model.link[s * k + t]) {
                    marked[s] = true;
                    marked[t] = true;
                }
            }
        }

        // A candidate move touches O(degree) load cells, so its reward
        // needs only those cells' new ratios plus the minimum over the
        // *untouched* cells — which is the first untouched entry of the
        // per-round ratio ordering below. This replaces a full
        // O(k²)-cell scan per candidate and is bit-exact: the same
        // `cap/load` divisions feed the same `min`, just without the
        // entries that provably cannot be it.
        let cell_count = 3 * k + k * k;
        let mut order: Vec<(f64, u32)> = Vec::with_capacity(cell_count);
        for d in 0..k {
            if model.cpu[d] > 0.0 {
                order.push((cpu_cap / model.cpu[d], d as u32));
            }
            if model.egress[d] > 0.0 {
                order.push((bw / model.egress[d], (k + d) as u32));
            }
            if model.ingress[d] > 0.0 {
                order.push((bw / model.ingress[d], (2 * k + d) as u32));
            }
        }
        for c in 0..k * k {
            if model.link[c] > 0.0 {
                order.push((bw / model.link[c], (3 * k + c) as u32));
            }
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Pruned target set anchors: the least-loaded CPU device and
        // the least-busy NIC device (strict `<` keeps the lowest index
        // on ties, so the choice is deterministic).
        let mut dmin_cpu = 0;
        let mut dmin_nic = 0;
        for d in 1..k {
            if model.cpu[d] < model.cpu[dmin_cpu] {
                dmin_cpu = d;
            }
            if model.egress[d] + model.ingress[d] < model.egress[dmin_nic] + model.ingress[dmin_nic]
            {
                dmin_nic = d;
            }
        }

        let mut best: Option<(usize, u32, f64)> = None;
        // Candidate moves are applied to the one shared model and then
        // rewound from the undo journal, so the inner loop is
        // allocation-free and every evaluation sees exact loads.
        let mut cand = model;
        let mut undo: Vec<(Slot, f64)> = Vec::with_capacity(32);
        let mut touched: Vec<u32> = vec![0; cell_count];
        let mut generation: u32 = 0;
        let mut targets: Vec<usize> = Vec::with_capacity(8);
        'nodes: for v in 0..part.len() {
            let from = part[v] as usize;
            if !marked[from] {
                continue;
            }
            // Ascending order keeps the lowest-device tie preference of
            // the former exhaustive scan.
            targets.clear();
            for &(u, _, _) in &incident[v] {
                targets.push(part[u as usize] as usize);
            }
            targets.push(dmin_cpu);
            targets.push(dmin_nic);
            targets.sort_unstable();
            targets.dedup();
            let w = rates.node[v] * graph.ops()[v].ipt;
            for &to in &targets {
                if to == from {
                    continue;
                }
                if evals == 0 {
                    break 'nodes;
                }
                evals -= 1;
                undo.push((Slot::Cpu(from), cand.cpu[from]));
                cand.cpu[from] -= w;
                undo.push((Slot::Cpu(to), cand.cpu[to]));
                cand.cpu[to] += w;
                for &(u, traffic, v_is_src) in &incident[v] {
                    let du = part[u as usize] as usize;
                    if v_is_src {
                        cand.route(from, du, traffic, -1.0, &mut undo);
                        cand.route(to, du, traffic, 1.0, &mut undo);
                    } else {
                        cand.route(du, from, traffic, -1.0, &mut undo);
                        cand.route(du, to, traffic, 1.0, &mut undo);
                    }
                }
                generation += 1;
                let mut rel = 1.0f64;
                for &(slot, _) in undo.iter() {
                    let (cell, cap, load) = match slot {
                        Slot::Cpu(d) => (d, cpu_cap, cand.cpu[d]),
                        Slot::Egress(d) => (k + d, bw, cand.egress[d]),
                        Slot::Ingress(d) => (2 * k + d, bw, cand.ingress[d]),
                        Slot::Link(c) => (3 * k + c, bw, cand.link[c]),
                    };
                    if touched[cell] == generation {
                        continue;
                    }
                    touched[cell] = generation;
                    if load > 0.0 {
                        rel = rel.min(cap / load);
                    }
                }
                for &(ratio, cell) in &order {
                    if touched[cell as usize] != generation {
                        rel = rel.min(ratio);
                        break;
                    }
                }
                cand.restore(&mut undo);
                if rel > best.map_or(alpha, |(_, _, r)| r) {
                    best = Some((v, to as u32, rel));
                }
            }
        }
        let Some((v, to, _)) = best else { break };
        part[v] = to;
        moves += 1;
    }
    moves
}

/// What [`realloc_decide`] concluded.
#[derive(Debug, Clone)]
pub enum ReallocDecision {
    /// The delta was empty: the prior placement stands verbatim.
    /// `relative` is recomputed through the same pure reward function
    /// the full pipeline uses, so it is bit-identical to the prior
    /// response's value.
    Unchanged { relative: f64 },
    /// Sub-threshold churn: the projected-and-refined placement of the
    /// mutated graph.
    Warm {
        /// The validated post-delta graph.
        graph: StreamGraph,
        /// Warm-started placement of `graph`.
        placement: Placement,
        /// Analytic relative throughput of `placement`.
        relative: f64,
        /// Refinement moves applied on top of the projection.
        moves: usize,
    },
    /// Churn exceeded the threshold: the caller should run the full
    /// pipeline on `graph` with these effective parameters.
    Full {
        /// The validated post-delta graph.
        graph: StreamGraph,
        /// Effective device count (delta override applied).
        devices: usize,
        /// Effective source rate (delta override applied).
        source_rate: f64,
    },
}

/// Decide and (when churn allows) execute an incremental re-allocation.
///
/// `prior_placement` is the placement the prior response assigned to
/// `prior` on `base_cluster` at `base_rate`; the delta's `devices` /
/// `source_rate` overrides apply on top of those. Pure and RNG-free.
pub fn realloc_decide(
    prior: &StreamGraph,
    prior_placement: &[u32],
    delta: &GraphDelta,
    base_cluster: &ClusterSpec,
    base_rate: f64,
    cfg: &IncrementalConfig,
) -> Result<ReallocDecision, DeltaError> {
    if prior_placement.len() != prior.num_nodes() {
        return Err(DeltaError::BadDelta(format!(
            "prior_placement has {} entries for a {}-node graph",
            prior_placement.len(),
            prior.num_nodes()
        )));
    }
    if let Some(&d) = prior_placement
        .iter()
        .find(|&&d| d as usize >= base_cluster.devices)
    {
        return Err(DeltaError::BadDelta(format!(
            "prior_placement uses device {d} but the cluster has {} devices",
            base_cluster.devices
        )));
    }

    if delta.is_empty() {
        let rates = TupleRates::compute(prior, base_rate);
        let placement = Placement::new(prior_placement.to_vec());
        let relative = relative_throughput_with_rates(prior, base_cluster, &placement, &rates);
        return Ok(ReallocDecision::Unchanged { relative });
    }

    let applied = delta.apply(prior)?;
    let devices = delta.devices.unwrap_or(base_cluster.devices);
    let source_rate = delta.source_rate.unwrap_or(base_rate);
    if delta.churn(prior) > cfg.churn_threshold {
        return Ok(ReallocDecision::Full {
            graph: applied.graph,
            devices,
            source_rate,
        });
    }

    let cluster = ClusterSpec {
        devices,
        ..*base_cluster
    };
    let rates = TupleRates::compute(&applied.graph, source_rate);
    let wg = WeightedGraph::from_stream_with_rates(&applied.graph, &rates);
    let k = devices;

    // Project: survivors keep their device (if it still exists), new
    // and evicted nodes are seeded next to their heaviest placed
    // neighbour (falling back to the lightest part).
    const UNPLACED: u32 = u32::MAX;
    let mut part: Vec<u32> = applied
        .origin
        .iter()
        .map(|o| match o {
            Some(prev) => {
                let d = prior_placement[*prev as usize];
                if (d as usize) < devices {
                    d
                } else {
                    UNPLACED
                }
            }
            None => UNPLACED,
        })
        .collect();
    let mut part_weight = vec![0.0; k];
    for (v, &p) in part.iter().enumerate() {
        if p != UNPLACED {
            part_weight[p as usize] += wg.node_weight[v];
        }
    }
    for v in 0..part.len() {
        if part[v] != UNPLACED {
            continue;
        }
        let mut conn: Vec<(u32, f64)> = Vec::new();
        for &(u, e) in wg.neighbors(v as u32) {
            let p = part[u as usize];
            if p == UNPLACED {
                continue;
            }
            let w = wg.edge_weight[e as usize];
            match conn.iter_mut().find(|(pp, _)| *pp == p) {
                Some((_, cw)) => *cw += w,
                None => conn.push((p, w)),
            }
        }
        // Ties break toward the lowest part id, keeping the choice
        // independent of neighbor iteration order.
        let by_weight = conn
            .iter()
            .copied()
            .max_by(|(pa, wa), (pb, wb)| wa.partial_cmp(wb).unwrap().then(pb.cmp(pa)));
        let p = match by_weight {
            Some((p, _)) => p,
            None => {
                let lightest = part_weight
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
                lightest
            }
        };
        part[v] = p;
        part_weight[p as usize] += wg.node_weight[v];
    }

    // Score three candidates by the actual throughput reward and keep
    // the best: the raw projection (the prior placement may violate the
    // uniform weight caps yet still be the throughput optimum — forcing
    // it through rebalance first would destroy it, e.g. on a pure rate
    // ramp where the graph is unchanged), the cap-restored rebalance,
    // and the boundary-refined polish (refinement is greedy on cut
    // weight, which is correlated with — not identical to — the
    // reward). Ties prefer the more-refined candidate so the balance
    // invariant is restored whenever doing so is reward-free.
    let projected = Placement::new(part.clone());
    let projected_rel =
        relative_throughput_with_rates(&applied.graph, &cluster, &projected, &rates);

    // A stage that made no moves left the placement bit-identical, so
    // its reward is its predecessor's — skip the redundant simulation.
    let cap = wg.total_node_weight() / k as f64 * cfg.balance_factor;
    let caps = vec![cap; k];
    let rebalance_moves = rebalance_targets(&wg, &mut part, &caps);
    let rebalanced = Placement::new(part.clone());
    let rebalanced_rel = if rebalance_moves == 0 {
        projected_rel
    } else {
        relative_throughput_with_rates(&applied.graph, &cluster, &rebalanced, &rates)
    };

    let refine_moves = kway_refine(&wg, &mut part, k, cap, cfg.refine_passes);
    let refined = Placement::new(part);
    let refined_rel = if refine_moves == 0 {
        rebalanced_rel
    } else {
        relative_throughput_with_rates(&applied.graph, &cluster, &refined, &rates)
    };

    let mut placement = projected;
    let mut relative = projected_rel;
    let mut moves = 0;
    if rebalanced_rel >= relative {
        placement = rebalanced;
        relative = rebalanced_rel;
        moves = rebalance_moves;
    }
    if refined_rel >= relative {
        placement = refined;
        relative = refined_rel;
        moves = rebalance_moves + refine_moves;
    }

    // Final polish on the winner, scored by the real objective. Move
    // selection uses the lean in-crate load model; the result is
    // re-scored with the official reward and adopted only if it did
    // not regress (guarding against round-off disagreements between
    // the two evaluators).
    let mut part = placement.as_slice().to_vec();
    let polish_moves = throughput_polish(
        &applied.graph,
        &cluster,
        &rates,
        &mut part,
        cfg.polish_moves,
    );
    if polish_moves > 0 {
        let polished = Placement::new(part);
        let polished_rel =
            relative_throughput_with_rates(&applied.graph, &cluster, &polished, &rates);
        if polished_rel >= relative {
            placement = polished;
            relative = polished_rel;
            moves += polish_moves;
        }
    }
    Ok(ReallocDecision::Warm {
        graph: applied.graph,
        placement,
        relative,
        moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_gen::{generate_graph, DatasetSpec, Setting};
    use spg_graph::{Channel, Operator};

    fn setup() -> (StreamGraph, ClusterSpec, f64, Vec<u32>) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let graph = generate_graph(&spec, 11);
        let cluster = spec.cluster();
        let rate = spec.source_rate;
        // A plausible prior: the Metis baseline's placement.
        let alloc = crate::MetisAllocator::new(7);
        let placement = spg_graph::Allocator::allocate(&alloc, &graph, &cluster, rate);
        (graph, cluster, rate, placement.as_slice().to_vec())
    }

    #[test]
    fn empty_delta_is_unchanged_with_exact_reward() {
        let (graph, cluster, rate, prior) = setup();
        let decision = realloc_decide(
            &graph,
            &prior,
            &GraphDelta::default(),
            &cluster,
            rate,
            &IncrementalConfig::default(),
        )
        .unwrap();
        let ReallocDecision::Unchanged { relative } = decision else {
            panic!("empty delta must be Unchanged");
        };
        let rates = TupleRates::compute(&graph, rate);
        let direct = relative_throughput_with_rates(
            &graph,
            &cluster,
            &Placement::new(prior.clone()),
            &rates,
        );
        assert_eq!(relative.to_bits(), direct.to_bits());
    }

    #[test]
    fn sub_threshold_delta_warm_starts_deterministically() {
        let (graph, cluster, rate, prior) = setup();
        let delta = GraphDelta {
            set_ipt: vec![(0, graph.ops()[0].ipt * 2.0)],
            source_rate: Some(rate * 1.5),
            ..GraphDelta::default()
        };
        let run = || {
            realloc_decide(
                &graph,
                &prior,
                &delta,
                &cluster,
                rate,
                &IncrementalConfig::default(),
            )
            .unwrap()
        };
        let (
            ReallocDecision::Warm {
                graph: g1,
                placement: p1,
                relative: r1,
                ..
            },
            ReallocDecision::Warm {
                placement: p2,
                relative: r2,
                ..
            },
        ) = (run(), run())
        else {
            panic!("sub-threshold delta must warm-start");
        };
        assert_eq!(p1.as_slice(), p2.as_slice(), "warm start must be pure");
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert!(p1.validate(&g1, cluster.devices));
        assert!((0.0..=1.0).contains(&r1));
    }

    #[test]
    fn device_loss_evicts_off_the_lost_device() {
        let (graph, cluster, rate, prior) = setup();
        assert!(cluster.devices >= 2);
        let delta = GraphDelta {
            devices: Some(cluster.devices - 1),
            ..GraphDelta::default()
        };
        let ReallocDecision::Warm {
            graph: g,
            placement,
            ..
        } = realloc_decide(
            &graph,
            &prior,
            &delta,
            &cluster,
            rate,
            &IncrementalConfig::default(),
        )
        .unwrap()
        else {
            panic!("device loss is churn-free and must warm-start");
        };
        assert!(placement.validate(&g, cluster.devices - 1));
    }

    #[test]
    fn high_churn_falls_back_to_full() {
        let (graph, cluster, rate, prior) = setup();
        let n = graph.num_nodes() as u32;
        // Add a long fresh chain: churn > threshold by construction.
        let extra = (graph.num_nodes() + graph.num_edges()) as u32;
        let add_nodes: Vec<Operator> = (0..extra).map(|_| Operator::new(10.0)).collect();
        let add_edges: Vec<(u32, u32)> = (0..extra)
            .map(|j| if j == 0 { (0, n) } else { (n + j - 1, n + j) })
            .collect();
        let delta = GraphDelta {
            add_channels: vec![Channel::new(1.0); add_edges.len()],
            add_nodes,
            add_edges,
            source_rate: Some(rate * 2.0),
            ..GraphDelta::default()
        };
        let decision = realloc_decide(
            &graph,
            &prior,
            &delta,
            &cluster,
            rate,
            &IncrementalConfig::default(),
        )
        .unwrap();
        let ReallocDecision::Full {
            graph: g,
            devices,
            source_rate,
        } = decision
        else {
            panic!("high churn must fall back to the full pipeline");
        };
        assert_eq!(g.num_nodes(), graph.num_nodes() + extra as usize);
        assert_eq!(devices, cluster.devices);
        assert_eq!(source_rate, rate * 2.0);
    }

    #[test]
    fn bad_priors_are_refused() {
        let (graph, cluster, rate, mut prior) = setup();
        let cfg = IncrementalConfig::default();
        let short = &prior[..prior.len() - 1];
        assert!(matches!(
            realloc_decide(&graph, short, &GraphDelta::default(), &cluster, rate, &cfg),
            Err(DeltaError::BadDelta(_))
        ));
        prior[0] = cluster.devices as u32;
        assert!(matches!(
            realloc_decide(&graph, &prior, &GraphDelta::default(), &cluster, rate, &cfg),
            Err(DeltaError::BadDelta(_))
        ));
    }
}
