//! End-to-end allocators built on the multilevel partitioner.

use crate::kway::{kway_partition, PartitionConfig};
use parking_lot_free::SeedCell;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_graph::{Allocator, ClusterSpec, Placement, StreamGraph, WeightedGraph};

/// The Metis baseline: convert the stream graph to its weighted view and
/// run the multilevel k-way partitioner with `k = |devices|`.
#[derive(Debug, Clone)]
pub struct MetisAllocator {
    /// Partitioner tuning.
    pub config: PartitionConfig,
    seed: SeedCell,
}

impl MetisAllocator {
    /// Default-configured allocator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            config: PartitionConfig::default(),
            seed: SeedCell::new(seed),
        }
    }

    /// Allocator with explicit config.
    pub fn with_config(seed: u64, config: PartitionConfig) -> Self {
        Self {
            config,
            seed: SeedCell::new(seed),
        }
    }

    /// Partition a pre-built weighted graph into `k` parts.
    pub fn partition_weighted(&self, w: &WeightedGraph, k: usize) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.next());
        kway_partition(w, k, &self.config, &mut rng)
    }
}

impl Allocator for MetisAllocator {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let w = WeightedGraph::from_stream(graph, source_rate);
        Placement::new(self.partition_weighted(&w, cluster.devices))
    }

    fn name(&self) -> &str {
        "Metis"
    }
}

/// Metis-oracle (§VI-B): run the partitioner for every device count
/// `1..=D` and keep the placement with the best simulated throughput. This
/// is the strongest non-learned baseline in the excess-device setting.
#[derive(Debug, Clone)]
pub struct MetisOracle {
    /// Partitioner tuning.
    pub config: PartitionConfig,
    seed: SeedCell,
}

impl MetisOracle {
    /// Default-configured oracle.
    pub fn new(seed: u64) -> Self {
        Self {
            config: PartitionConfig::default(),
            seed: SeedCell::new(seed),
        }
    }
}

impl Allocator for MetisOracle {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let w = WeightedGraph::from_stream(graph, source_rate);
        let mut best: Option<(f64, Placement)> = None;
        for k in 1..=cluster.devices {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed.next());
            let part = kway_partition(&w, k, &self.config, &mut rng);
            let p = Placement::new(part);
            let r = spg_sim::relative_throughput(graph, cluster, &p, source_rate);
            if best.as_ref().is_none_or(|(br, _)| r > *br) {
                best = Some((r, p));
            }
        }
        best.expect("at least one k tried").1
    }

    fn name(&self) -> &str {
        "Metis-oracle"
    }
}

/// Tiny atomically-stepped seed so `&self` allocators can derive fresh but
/// deterministic RNG streams per call.
mod parking_lot_free {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug)]
    pub struct SeedCell(AtomicU64);

    impl SeedCell {
        pub fn new(seed: u64) -> Self {
            Self(AtomicU64::new(seed))
        }

        pub fn next(&self) -> u64 {
            // SplitMix64 step: decorrelates consecutive seeds.
            let mut z = self.0.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl Clone for SeedCell {
        fn clone(&self) -> Self {
            Self(AtomicU64::new(self.0.load(Ordering::Relaxed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_gen::{DatasetSpec, Setting};

    #[test]
    fn metis_beats_random_placement() {
        let spec = DatasetSpec::scaled_down(Setting::Medium);
        let cluster = spec.cluster();
        let metis = MetisAllocator::new(1);
        let mut metis_wins = 0;
        let n_graphs = 6;
        for seed in 0..n_graphs {
            let g = spg_gen::generate_graph(&spec, seed);
            let p = metis.allocate(&g, &cluster, spec.source_rate);
            assert!(p.validate(&g, cluster.devices));
            let r = spg_sim::relative_throughput(&g, &cluster, &p, spec.source_rate);
            // Random baseline: round-robin by node id.
            let rr = Placement::new(
                (0..g.num_nodes() as u32)
                    .map(|v| v % cluster.devices as u32)
                    .collect(),
            );
            let r_rr = spg_sim::relative_throughput(&g, &cluster, &rr, spec.source_rate);
            if r >= r_rr {
                metis_wins += 1;
            }
        }
        assert!(
            metis_wins * 2 > n_graphs,
            "metis won only {metis_wins}/{n_graphs} vs round-robin"
        );
    }

    #[test]
    fn oracle_at_least_matches_fixed_k() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let metis = MetisAllocator::new(3);
        let oracle = MetisOracle::new(3);
        for seed in 0..4 {
            let g = spg_gen::generate_graph(&spec, seed);
            let rp = spg_sim::relative_throughput(
                &g,
                &cluster,
                &metis.allocate(&g, &cluster, spec.source_rate),
                spec.source_rate,
            );
            let ro = spg_sim::relative_throughput(
                &g,
                &cluster,
                &oracle.allocate(&g, &cluster, spec.source_rate),
                spec.source_rate,
            );
            assert!(ro >= rp - 0.05, "oracle {ro} much worse than fixed-k {rp}");
        }
    }

    #[test]
    fn seed_cell_is_deterministic_and_decorrelated() {
        let a = parking_lot_free::SeedCell::new(42);
        let b = parking_lot_free::SeedCell::new(42);
        let xs: Vec<u64> = (0..4).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let mut uniq = xs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), xs.len());
    }
}
