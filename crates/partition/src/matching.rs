//! Heavy-edge matching (HEM).
//!
//! Visit nodes in random order; match each unmatched node with the
//! unmatched neighbour connected by the heaviest edge. Collapsing heavy
//! edges internalises the most traffic per contraction — exactly the
//! theoretical intuition the paper's learned model refines.

use rand::seq::SliceRandom;
use rand::Rng;
use spg_graph::WeightedGraph;

/// A matching: `mate[v]` is the node matched with `v` (or `v` itself when
/// unmatched).
#[derive(Debug, Clone)]
pub struct Matching {
    /// Partner of each node (self if unmatched).
    pub mate: Vec<u32>,
    /// Number of matched pairs.
    pub pairs: usize,
}

/// Compute a heavy-edge matching. `max_pair_weight` optionally refuses to
/// match two nodes whose combined node weight exceeds the cap (keeps coarse
/// nodes placeable on one device).
pub fn heavy_edge_matching<R: Rng>(
    g: &WeightedGraph,
    max_pair_weight: Option<f64>,
    rng: &mut R,
) -> Matching {
    let n = g.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut pairs = 0usize;

    for &v in &order {
        if mate[v as usize] != v {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for &(u, e) in g.neighbors(v) {
            if mate[u as usize] != u || u == v {
                continue;
            }
            if let Some(cap) = max_pair_weight {
                if g.node_weight[v as usize] + g.node_weight[u as usize] > cap {
                    continue;
                }
            }
            let w = g.edge_weight[e as usize];
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            pairs += 1;
        }
    }
    Matching { mate, pairs }
}

impl Matching {
    /// Dense node map `node -> coarse id` merging matched pairs, plus the
    /// number of coarse nodes.
    pub fn to_node_map(&self) -> (Vec<u32>, usize) {
        let n = self.mate.len();
        let mut map = vec![u32::MAX; n];
        let mut next = 0u32;
        for v in 0..n as u32 {
            if map[v as usize] != u32::MAX {
                continue;
            }
            let m = self.mate[v as usize];
            map[v as usize] = next;
            if m != v {
                map[m as usize] = next;
            }
            next += 1;
        }
        (map, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path4() -> WeightedGraph {
        WeightedGraph::new(vec![1.0; 4], vec![(0, 1, 10.0), (1, 2, 1.0), (2, 3, 10.0)])
    }

    #[test]
    fn matching_is_symmetric() {
        let g = path4();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = heavy_edge_matching(&g, None, &mut rng);
        for v in 0..4u32 {
            let u = m.mate[v as usize];
            assert_eq!(m.mate[u as usize], v, "mate must be mutual");
        }
    }

    #[test]
    fn prefers_heavy_edges() {
        let g = path4();
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let m = heavy_edge_matching(&g, None, &mut rng);
            // The two weight-10 edges should both be matched pairs
            // (the weight-1 middle edge can never beat them).
            assert_eq!(m.pairs, 2);
            assert_eq!(m.mate[0], 1);
            assert_eq!(m.mate[3], 2);
        }
    }

    #[test]
    fn weight_cap_blocks_pairs() {
        let g = WeightedGraph::new(vec![10.0, 10.0], vec![(0, 1, 5.0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = heavy_edge_matching(&g, Some(15.0), &mut rng);
        assert_eq!(m.pairs, 0);
        let m2 = heavy_edge_matching(&g, Some(25.0), &mut rng);
        assert_eq!(m2.pairs, 1);
    }

    #[test]
    fn node_map_is_dense() {
        let g = path4();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = heavy_edge_matching(&g, None, &mut rng);
        let (map, k) = m.to_node_map();
        assert_eq!(k, 2);
        let mut seen = vec![false; k];
        for &c in &map {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn isolated_nodes_stay_single() {
        let g = WeightedGraph::new(vec![1.0; 3], vec![(0, 1, 1.0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = heavy_edge_matching(&g, None, &mut rng);
        assert_eq!(m.mate[2], 2);
    }
}
