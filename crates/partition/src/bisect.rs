//! Initial bisection: greedy graph growing (GGGP).
//!
//! Grow a region from a random seed, always absorbing the frontier node
//! with the best gain (edge weight into the region minus edge weight out),
//! until the region holds the target share of total node weight. Several
//! seeds are tried; the best post-refinement cut wins.

use crate::refine::fm_bisection_refine;
use rand::Rng;
use spg_graph::WeightedGraph;

/// A two-way partition: labels in {0, 1}.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// Part label per node.
    pub part: Vec<u32>,
    /// Cut weight.
    pub cut: f64,
    /// Node weight of part 0.
    pub weight0: f64,
}

/// Bisect `g` so part 0 holds roughly `target_frac` of the node weight.
/// `tries` independent seeds are grown and FM-refined.
pub fn greedy_graph_growing<R: Rng>(
    g: &WeightedGraph,
    target_frac: f64,
    tries: usize,
    balance_tol: f64,
    rng: &mut R,
) -> Bisection {
    assert!((0.0..=1.0).contains(&target_frac));
    let n = g.num_nodes();
    let total = g.total_node_weight();
    let target0 = total * target_frac;

    let mut best: Option<Bisection> = None;
    for _ in 0..tries.max(1) {
        let mut part = vec![1u32; n];
        let mut w0 = 0.0;
        let mut in_region = vec![false; n];
        // gain[v] = weight to region - weight to outside (for frontier nodes)
        let mut gain = vec![0.0f64; n];
        let mut frontier: Vec<u32> = Vec::new();

        let seed = rng.gen_range(0..n as u32);
        add_to_region(
            g,
            seed,
            &mut part,
            &mut in_region,
            &mut w0,
            &mut gain,
            &mut frontier,
        );

        while w0 < target0 && !frontier.is_empty() {
            // Pick the frontier node with max gain (linear scan; frontier is
            // small relative to n and this runs on coarse graphs).
            let (bi, _) = frontier
                .iter()
                .enumerate()
                .map(|(i, &v)| (i, gain[v as usize]))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("frontier non-empty");
            let v = frontier.swap_remove(bi);
            if in_region[v as usize] {
                continue;
            }
            add_to_region(
                g,
                v,
                &mut part,
                &mut in_region,
                &mut w0,
                &mut gain,
                &mut frontier,
            );
        }

        let mut bis = Bisection {
            cut: g.cut_weight(&part),
            part,
            weight0: w0,
        };
        fm_bisection_refine(g, &mut bis, target_frac, balance_tol, 4);
        if best.as_ref().is_none_or(|b| bis.cut < b.cut) {
            best = Some(bis);
        }
    }
    best.expect("at least one try")
}

fn add_to_region(
    g: &WeightedGraph,
    v: u32,
    part: &mut [u32],
    in_region: &mut [bool],
    w0: &mut f64,
    gain: &mut [f64],
    frontier: &mut Vec<u32>,
) {
    part[v as usize] = 0;
    in_region[v as usize] = true;
    *w0 += g.node_weight[v as usize];
    for &(u, e) in g.neighbors(v) {
        if in_region[u as usize] {
            continue;
        }
        let w = g.edge_weight[e as usize];
        if gain[u as usize] == 0.0 && !frontier.contains(&u) {
            // First contact: initialise gain with -Σ incident weight.
            let ext: f64 = g
                .neighbors(u)
                .iter()
                .map(|&(_, ee)| g.edge_weight[ee as usize])
                .sum();
            gain[u as usize] = -ext;
            frontier.push(u);
        }
        gain[u as usize] += 2.0 * w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bisection_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_graph(100, 200, &mut rng);
        let b = greedy_graph_growing(&g, 0.5, 4, 0.1, &mut rng);
        let total = g.total_node_weight();
        assert!(
            (b.weight0 / total - 0.5).abs() < 0.2,
            "weight0 frac = {}",
            b.weight0 / total
        );
        assert!((g.cut_weight(&b.part) - b.cut).abs() < 1e-6);
    }

    #[test]
    fn finds_obvious_cut() {
        // Two 4-cliques joined by one light edge.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    edges.push((base + a, base + b, 100.0));
                }
            }
        }
        edges.push((0, 4, 1.0));
        let g = WeightedGraph::new(vec![1.0; 8], edges);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = greedy_graph_growing(&g, 0.5, 8, 0.1, &mut rng);
        assert!((b.cut - 1.0).abs() < 1e-9, "cut = {}", b.cut);
    }

    #[test]
    fn asymmetric_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_graph(90, 150, &mut rng);
        let b = greedy_graph_growing(&g, 1.0 / 3.0, 4, 0.15, &mut rng);
        let frac = b.weight0 / g.total_node_weight();
        assert!((frac - 1.0 / 3.0).abs() < 0.25, "frac = {frac}");
    }

    #[test]
    fn single_node_graph() {
        let g = WeightedGraph::new(vec![5.0], vec![]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let b = greedy_graph_growing(&g, 0.5, 2, 0.1, &mut rng);
        assert_eq!(b.part.len(), 1);
        assert_eq!(b.cut, 0.0);
    }
}
