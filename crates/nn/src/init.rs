//! Weight initialisation.

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform init for a `[rows x cols]` weight.
pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Small-normal init (std 0.02) used for output heads.
pub fn small_normal<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (0.02 * z) as f32
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = xavier(8, 8, &mut rng);
        let bound = (6.0f64 / 16.0).sqrt() as f32;
        assert!(m.data.iter().all(|&x| x.abs() <= bound));
        assert!(m.data.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn small_normal_is_small() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = small_normal(10, 10, &mut rng);
        let mean: f32 = m.data.iter().sum::<f32>() / 100.0;
        assert!(mean.abs() < 0.02);
        assert!(m.data.iter().all(|&x| x.abs() < 0.2));
    }
}
