//! Adam optimiser (Kingma & Ba 2014) — the paper trains with Adam at
//! learning rate 1e-3.

use crate::param::ParamSet;

/// Adam state and hyperparameters.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Max gradient norm per parameter tensor (0 disables clipping).
    pub clip_norm: f32,
    t: u64,
}

impl Adam {
    /// Adam with the paper's learning rate (1e-3) and standard betas.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 5.0,
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Overwrite the step counter (bias-correction schedule) — used when
    /// restoring optimiser state from a checkpoint or epoch snapshot.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Apply one update from the gradients accumulated in `params`, then
    /// zero them.
    pub fn step(&mut self, params: &ParamSet) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.params() {
            let mut d = p.0.borrow_mut();
            // Per-tensor gradient clipping.
            if self.clip_norm > 0.0 {
                let n = d.grad.norm();
                if n > self.clip_norm {
                    let s = self.clip_norm / n;
                    d.grad.scale_assign(s);
                }
            }
            let data = &mut *d;
            for i in 0..data.value.data.len() {
                let g = data.grad.data[i];
                data.m.data[i] = self.beta1 * data.m.data[i] + (1.0 - self.beta1) * g;
                data.v.data[i] = self.beta2 * data.v.data[i] + (1.0 - self.beta2) * g * g;
                let mhat = data.m.data[i] / b1t;
                let vhat = data.v.data[i] / b2t;
                data.value.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            data.grad.fill_zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::param::{Param, ParamSet};
    use crate::tape::Tape;

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise (x - 3)^2 via the tape.
        let mut set = ParamSet::new();
        let x = set.register(Param::new(Matrix::scalar(0.0)));
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let mut t = Tape::new();
            let xv = t.param(&x);
            let c = t.input(Matrix::scalar(-3.0));
            let d = t.add(xv, c);
            let sq = t.mul(d, d);
            let loss = t.sum_all(sq);
            t.backward(loss);
            adam.step(&set);
        }
        assert!(
            (x.value().item() - 3.0).abs() < 1e-2,
            "x = {}",
            x.value().item()
        );
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut set = ParamSet::new();
        let x = set.register(Param::new(Matrix::scalar(1.0)));
        let mut t = Tape::new();
        let xv = t.param(&x);
        let loss = t.sum_all(xv);
        t.backward(loss);
        assert_eq!(x.0.borrow().grad.item(), 1.0);
        let mut adam = Adam::new(0.01);
        adam.step(&set);
        assert_eq!(x.0.borrow().grad.item(), 0.0);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut set = ParamSet::new();
        let x = set.register(Param::new(Matrix::scalar(0.0)));
        x.0.borrow_mut().grad = Matrix::scalar(1e9);
        let mut adam = Adam::new(0.1);
        adam.step(&set);
        // With clipping, the first Adam step magnitude is ≤ lr.
        assert!(x.value().item().abs() <= 0.11);
    }
}
