//! Layers built on the tape: `Linear`, `Mlp`, and an `LstmCell` (used by
//! the Graph-enc-dec baseline's sequential device decoder).

use crate::init::xavier;
use crate::matrix::Matrix;
use crate::param::{Param, ParamSet};
use crate::scratch::InferenceScratch;
use crate::tape::{Tape, Var};
use rand::Rng;

/// Fully connected layer `y = x @ W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight `[in x out]`.
    pub w: Param,
    /// Bias `[1 x out]`.
    pub b: Param,
}

impl Linear {
    /// Xavier-initialised layer registered into `set`.
    pub fn new<R: Rng>(input: usize, output: usize, set: &mut ParamSet, rng: &mut R) -> Self {
        let w = set.register(Param::new(xavier(input, output, rng)));
        let b = set.register(Param::new(Matrix::zeros(1, output)));
        Self { w, b }
    }

    /// Forward pass.
    pub fn forward(&self, t: &mut Tape, x: Var) -> Var {
        let w = t.param(&self.w);
        let b = t.param(&self.b);
        let y = t.matmul(x, w);
        t.add_row(y, b)
    }

    /// Tape-free forward into a preallocated `out` (`x.rows x output_dim`).
    /// Reads the weights in place — no parameter clone, no tape node —
    /// and produces bitwise-identical values to [`Linear::forward`].
    pub fn forward_infer(&self, x: &Matrix, out: &mut Matrix) {
        let w = self.w.0.borrow();
        let b = self.b.0.borrow();
        x.matmul_into(&w.value, out);
        out.add_row_assign(&b.value);
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.shape().0
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.shape().1
    }
}

/// Activation selector for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent (paper's default).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    fn apply(self, t: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Tanh => t.tanh(x),
            Activation::Relu => t.relu(x),
            Activation::Sigmoid => t.sigmoid(x),
        }
    }

    /// In-place variant using the same scalar ops as the tape versions.
    pub(crate) fn apply_infer(self, x: &mut Matrix) {
        match self {
            Activation::Tanh => x.tanh_assign(),
            Activation::Relu => x.relu_assign(),
            Activation::Sigmoid => x.sigmoid_assign(),
        }
    }
}

/// Multi-layer perceptron: hidden layers with activation, linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub(crate) layers: Vec<Linear>,
    pub(crate) activation: Activation,
}

impl Mlp {
    /// MLP with dims `[in, h1, ..., out]`.
    pub fn new<R: Rng>(
        dims: &[usize],
        activation: Activation,
        set: &mut ParamSet,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], set, rng))
            .collect();
        Self { layers, activation }
    }

    /// Forward: activation after every layer except the last.
    pub fn forward(&self, t: &mut Tape, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(t, x);
            if i != last {
                x = self.activation.apply(t, x);
            }
        }
        x
    }

    /// Tape-free forward; intermediates ping-pong through `scratch`.
    /// Bitwise identical to [`Mlp::forward`]. The returned matrix comes
    /// from the arena — `put` it back when done.
    pub fn forward_infer(&self, x: &Matrix, scratch: &mut InferenceScratch) -> Matrix {
        let last = self.layers.len() - 1;
        let mut cur: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let xin = cur.as_ref().unwrap_or(x);
            let mut out = scratch.take(xin.rows, layer.output_dim());
            layer.forward_infer(xin, &mut out);
            if i != last {
                self.activation.apply_infer(&mut out);
            }
            if let Some(prev) = cur.take() {
                scratch.put(prev);
            }
            cur = Some(out);
        }
        cur.expect("Mlp has at least one layer")
    }
}

/// A single-layer LSTM cell.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: Param,
    wh: Param,
    b: Param,
    hidden: usize,
}

impl LstmCell {
    /// Cell with `input`-wide inputs and `hidden`-wide state.
    pub fn new<R: Rng>(input: usize, hidden: usize, set: &mut ParamSet, rng: &mut R) -> Self {
        let wx = set.register(Param::new(xavier(input, 4 * hidden, rng)));
        let wh = set.register(Param::new(xavier(hidden, 4 * hidden, rng)));
        let b = set.register(Param::new(Matrix::zeros(1, 4 * hidden)));
        Self { wx, wh, b, hidden }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Zero state `(h, c)` for a batch of `rows`.
    pub fn zero_state(&self, t: &mut Tape, rows: usize) -> (Var, Var) {
        let h = t.input(Matrix::zeros(rows, self.hidden));
        let c = t.input(Matrix::zeros(rows, self.hidden));
        (h, c)
    }

    /// One step: gates in i,f,g,o order.
    pub fn step(&self, t: &mut Tape, x: Var, h: Var, c: Var) -> (Var, Var) {
        let wx = t.param(&self.wx);
        let wh = t.param(&self.wh);
        let b = t.param(&self.b);
        let zx = t.matmul(x, wx);
        let zh = t.matmul(h, wh);
        let z = t.add(zx, zh);
        let z = t.add_row(z, b);
        let hd = self.hidden;
        let zi = t.slice_cols(z, 0, hd);
        let zf = t.slice_cols(z, hd, hd);
        let zg = t.slice_cols(z, 2 * hd, hd);
        let zo = t.slice_cols(z, 3 * hd, hd);
        let i = t.sigmoid(zi);
        let f = t.sigmoid(zf);
        let g = t.tanh(zg);
        let o = t.sigmoid(zo);
        let fc = t.mul(f, c);
        let ig = t.mul(i, g);
        let c2 = t.add(fc, ig);
        let tc = t.tanh(c2);
        let h2 = t.mul(o, tc);
        (h2, c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let l = Linear::new(4, 3, &mut set, &mut rng);
        assert_eq!(l.input_dim(), 4);
        assert_eq!(l.output_dim(), 3);
        let mut t = Tape::new();
        let x = t.input(Matrix::zeros(5, 4));
        let y = l.forward(&mut t, x);
        assert_eq!((t.value(y).rows, t.value(y).cols), (5, 3));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, &mut set, &mut rng);
        let xs = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let mut adam = Adam::new(0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            let mut t = Tape::new();
            let x = t.input(xs.clone());
            let out = mlp.forward(&mut t, x); // [4x1] logits
            let probs = t.sigmoid(out);
            let target = t.input(Matrix::from_vec(4, 1, ys.to_vec()));
            let neg = t.scale(target, -1.0);
            let diff = t.add(probs, neg);
            let sq = t.mul(diff, diff);
            let loss = t.sum_all(sq);
            last_loss = t.value(loss).item();
            t.backward(loss);
            adam.step(&set);
        }
        assert!(last_loss < 0.05, "xor loss = {last_loss}");
    }

    #[test]
    fn lstm_step_shapes_and_state_evolution() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cell = LstmCell::new(3, 5, &mut set, &mut rng);
        let mut t = Tape::new();
        let (h0, c0) = cell.zero_state(&mut t, 1);
        let x = t.input(Matrix::from_vec(1, 3, vec![1.0, -1.0, 0.5]));
        let (h1, c1) = cell.step(&mut t, x, h0, c0);
        assert_eq!((t.value(h1).rows, t.value(h1).cols), (1, 5));
        assert_eq!((t.value(c1).rows, t.value(c1).cols), (1, 5));
        // Non-zero input should move the state off zero.
        assert!(t.value(h1).norm() > 0.0);
    }

    #[test]
    fn lstm_gradients_flow_through_time() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cell = LstmCell::new(2, 4, &mut set, &mut rng);
        set.zero_grad();
        let mut t = Tape::new();
        let (mut h, mut c) = cell.zero_state(&mut t, 1);
        for i in 0..3 {
            let x = t.input(Matrix::from_vec(1, 2, vec![i as f32, 1.0]));
            let (h2, c2) = cell.step(&mut t, x, h, c);
            h = h2;
            c = c2;
        }
        let loss = t.sum_all(h);
        t.backward(loss);
        // All three weight tensors must receive gradient.
        for p in set.params() {
            assert!(p.0.borrow().grad.norm() > 0.0, "parameter got no gradient");
        }
    }
}
