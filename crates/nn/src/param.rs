//! Trainable parameters.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Inner state of a parameter: value, accumulated gradient, Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamData {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (reset with [`Param::zero_grad`]).
    pub grad: Matrix,
    /// Adam first moment.
    pub m: Matrix,
    /// Adam second moment.
    pub v: Matrix,
}

/// A shared, trainable parameter. Cloning shares the underlying storage, so
/// a layer can hand the same parameter to many tape nodes.
#[derive(Debug, Clone)]
pub struct Param(pub Rc<RefCell<ParamData>>);

impl Param {
    /// Parameter initialised to `value`, zero gradient/moments.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = (value.rows, value.cols);
        Self(Rc::new(RefCell::new(ParamData {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        })))
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        let d = self.0.borrow();
        (d.value.rows, d.value.cols)
    }

    /// Copy of the current value.
    pub fn value(&self) -> Matrix {
        self.0.borrow().value.clone()
    }

    /// Overwrite the value (gradients/moments untouched).
    pub fn set_value(&self, value: Matrix) {
        let mut d = self.0.borrow_mut();
        assert_eq!((d.value.rows, d.value.cols), (value.rows, value.cols));
        d.value = value;
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        self.0.borrow_mut().grad.fill_zero();
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        let d = self.0.borrow();
        d.value.data.len()
    }

    /// True when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An ordered collection of parameters (a model's trainable state).
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; returns it for convenience.
    pub fn register(&mut self, p: Param) -> Param {
        self.params.push(p.clone());
        p
    }

    /// All parameters in registration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.len()).sum()
    }

    /// Zero every gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Snapshot all values (for checkpointing).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value()).collect()
    }

    /// Restore values from a snapshot produced by [`Self::snapshot`].
    pub fn restore(&self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot arity mismatch");
        for (p, m) in self.params.iter().zip(snapshot) {
            p.set_value(m.clone());
        }
    }

    /// Snapshot the Adam moments `(m, v)` of every parameter, in
    /// registration order (for checkpointing optimiser state).
    pub fn snapshot_moments(&self) -> (Vec<Matrix>, Vec<Matrix>) {
        let m = self.params.iter().map(|p| p.0.borrow().m.clone()).collect();
        let v = self.params.iter().map(|p| p.0.borrow().v.clone()).collect();
        (m, v)
    }

    /// Restore Adam moments from a [`Self::snapshot_moments`] snapshot.
    pub fn restore_moments(&self, m: &[Matrix], v: &[Matrix]) {
        assert_eq!(m.len(), self.params.len(), "moment (m) arity mismatch");
        assert_eq!(v.len(), self.params.len(), "moment (v) arity mismatch");
        for (p, (mm, vv)) in self.params.iter().zip(m.iter().zip(v)) {
            let mut d = p.0.borrow_mut();
            assert_eq!((d.value.rows, d.value.cols), (mm.rows, mm.cols));
            assert_eq!((d.value.rows, d.value.cols), (vv.rows, vv.cols));
            d.m = mm.clone();
            d.v = vv.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_shares_storage_across_clones() {
        let p = Param::new(Matrix::zeros(2, 2));
        let q = p.clone();
        p.set_value(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(q.value().data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn paramset_snapshot_restore_roundtrip() {
        let mut set = ParamSet::new();
        let a = set.register(Param::new(Matrix::scalar(1.0)));
        let b = set.register(Param::new(Matrix::scalar(2.0)));
        let snap = set.snapshot();
        a.set_value(Matrix::scalar(9.0));
        b.set_value(Matrix::scalar(8.0));
        set.restore(&snap);
        assert_eq!(a.value().item(), 1.0);
        assert_eq!(b.value().item(), 2.0);
    }

    #[test]
    fn zero_grad_clears() {
        let p = Param::new(Matrix::scalar(1.0));
        p.0.borrow_mut().grad = Matrix::scalar(5.0);
        p.zero_grad();
        assert_eq!(p.0.borrow().grad.item(), 0.0);
    }

    #[test]
    fn num_scalars_counts_all() {
        let mut set = ParamSet::new();
        set.register(Param::new(Matrix::zeros(2, 3)));
        set.register(Param::new(Matrix::zeros(1, 4)));
        assert_eq!(set.num_scalars(), 10);
    }
}
