//! # spg-nn
//!
//! A minimal reverse-mode automatic-differentiation engine and neural-net
//! toolkit, purpose-built for the CPU REINFORCE training in this
//! reproduction (the paper used PyTorch on a GPU; the models here are small
//! enough — two GNN hops plus MLP heads — that a few dense `f32` matrix
//! kernels suffice).
//!
//! * [`Matrix`] — dense row-major `f32` matrix with the handful of kernels
//!   the models need.
//! * [`Tape`] — a gradient tape: forward ops append nodes, `backward`
//!   walks them in reverse. Graph-structured ops (row gather, segment
//!   mean) make GNN message passing differentiable.
//! * [`Param`] / [`Adam`] — trainable parameters with Adam state.
//! * [`layers`] — `Linear`, `Mlp`, `LstmCell` built on the tape.
//!
//! Every op has a finite-difference gradient check in its tests.

pub mod init;
pub mod layers;
pub mod matrix;
pub mod optim;
pub mod param;
pub mod quant;
pub mod scratch;
pub mod tape;

pub use layers::{Linear, LstmCell, Mlp};
pub use matrix::{matmul_mode, set_matmul_mode, stable_sigmoid, MatmulMode, Matrix};
pub use optim::Adam;
pub use param::{Param, ParamSet};
pub use quant::{QuantScratch, QuantizedLinear, QuantizedMlp};
pub use scratch::InferenceScratch;
pub use tape::{Tape, Var};
