//! Reusable buffer arena for the tape-free inference path.
//!
//! The tape forward allocates a fresh `Matrix` per op (plus a clone of
//! every parameter it touches). Inference never backprops, so those
//! intermediates can come from a pool instead: [`InferenceScratch`] hands
//! out zeroed matrices backed by recycled allocations and takes them back
//! when a pass is done. Steady-state serving does no heap allocation in
//! the forward at all.

use crate::matrix::Matrix;

/// Pool of `Vec<f32>` backing stores for inference intermediates.
///
/// `take` returns a zero-filled matrix (reusing the largest pooled
/// allocation that fits, growing it if needed); `put` returns a matrix's
/// storage to the pool. Dropping a taken matrix instead of `put`ting it
/// back is safe — the arena just loses that buffer's reuse.
#[derive(Debug, Default)]
pub struct InferenceScratch {
    free: Vec<Vec<f32>>,
}

impl InferenceScratch {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled `rows x cols` matrix from the pool.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        // Prefer the largest pooled buffer so small requests don't pin
        // big allocations under short-lived bindings.
        let mut data = match self
            .free
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.capacity())
        {
            Some((idx, _)) => self.free.swap_remove(idx),
            None => Vec::with_capacity(len),
        };
        data.clear();
        data.resize(len, 0.0);
        Matrix { rows, cols, data }
    }

    /// Return a matrix's backing store to the pool.
    pub fn put(&mut self, m: Matrix) {
        self.free.push(m.data);
    }

    /// Number of pooled buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_reuses_capacity() {
        let mut s = InferenceScratch::new();
        let mut m = s.take(4, 8);
        m.data.iter_mut().for_each(|x| *x = 7.0);
        let ptr = m.data.as_ptr();
        let cap = m.data.capacity();
        s.put(m);
        let m2 = s.take(2, 5);
        assert!(m2.data.iter().all(|&x| x == 0.0));
        assert_eq!((m2.rows, m2.cols), (2, 5));
        assert_eq!(m2.data.as_ptr(), ptr, "buffer was not reused");
        assert_eq!(m2.data.capacity(), cap);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn grows_when_needed() {
        let mut s = InferenceScratch::new();
        let m = s.take(1, 2);
        s.put(m);
        let big = s.take(16, 16);
        assert_eq!(big.data.len(), 256);
        assert!(big.data.iter().all(|&x| x == 0.0));
    }
}
