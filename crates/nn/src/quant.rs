//! Int8 quantized inference: per-row symmetric weights, dynamic per-row
//! activation quantization, and i8×i8→i32 integer-accumulated dot kernels.
//!
//! # Determinism policy
//!
//! Unlike the f32 kernels in [`crate::matrix`], which need a strict mode
//! to pin accumulation order, the quantized path is deterministic *by
//! construction*: every dot product accumulates `i32` terms, and integer
//! addition is associative and commutative, so the AVX2 panel and the
//! portable loop produce identical sums no matter how the lanes are
//! grouped. The only floating-point work is one scale per row/column at
//! the layer boundary — `(acc as f32) * x_scale * w_scale + bias` — a
//! fixed scalar expression with one rounding per op on every platform.
//!
//! # Scale selection
//!
//! Weights are quantized once, per *output channel* (one scale per row of
//! the transposed `[out x in]` weight block): `scale = max_abs / 127`,
//! `q = round_ties_even(v * (1/scale))` clamped to `[-127, 127]` —
//! ties-to-even because that is the rounding the vector instruction
//! implements, so the AVX2 and scalar quantizers emit identical codes.
//! Activations are quantized per input row with the same rule at every
//! layer boundary. All-zero rows get `scale = 1.0` so the dequantized
//! output stays an exact zero. Rows are zero-padded to the 16-lane SIMD
//! step: zero codes add zero products, so padded sums equal unpadded
//! ones bit-for-bit while the kernels run tail-free.
//!
//! The quantized path also swaps libm `tanh` for [`tanh_fast`], a fixed
//! rational approximation (~1e-7 absolute error, three orders below the
//! 1/127 activation grid) — libm tanh otherwise dominates the forward
//! and would mask the integer kernels entirely. The f32 serving path is
//! untouched; its response bytes are pinned.
//!
//! # Overflow bound
//!
//! Each product is at most `127 * 127 = 16129`, so a `k`-term i32
//! accumulator is exact for `k < 2^31 / 16129 ≈ 133_000` — far above any
//! layer width in this model family. The widest intermediate inside the
//! AVX2 kernel is the `_mm256_madd_epi16` pair-sum, bounded by
//! `2 * 16129`, which also fits i32 with the same slack.

use crate::layers::{Activation, Linear, Mlp};
use crate::matrix::Matrix;
use crate::scratch::InferenceScratch;

/// Quantize `rows x cols` row-major f32 data with a per-row symmetric
/// scale. Appends `rows * cols` i8 values to `out_q` and `rows` scales to
/// `out_scale` (both cleared first). All-zero rows get scale `1.0`.
pub fn quantize_rows_i8(
    data: &[f32],
    rows: usize,
    cols: usize,
    out_q: &mut Vec<i8>,
    out_scale: &mut Vec<f32>,
) {
    quantize_rows_i8_padded(data, rows, cols, cols, out_q, out_scale);
}

/// [`quantize_rows_i8`] with each output row zero-padded to `padded_cols`
/// (`>= cols`). Zero codes contribute zero products, so a dot over padded
/// rows returns exactly the unpadded i32 sum — padding to the SIMD step
/// (16) lets the kernels drop their scalar tails without changing a bit.
pub fn quantize_rows_i8_padded(
    data: &[f32],
    rows: usize,
    cols: usize,
    padded_cols: usize,
    out_q: &mut Vec<i8>,
    out_scale: &mut Vec<f32>,
) {
    assert_eq!(data.len(), rows * cols, "quantize shape mismatch");
    assert!(padded_cols >= cols, "padding cannot truncate");
    out_q.clear();
    out_scale.clear();
    out_q.reserve(rows * padded_cols);
    out_scale.reserve(rows);
    out_q.resize(rows * padded_cols, 0);
    #[cfg(target_arch = "x86_64")]
    let avx2 = crate::matrix::x86::level() >= crate::matrix::x86::LVL_AVX2;
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let out_row = &mut out_q[r * padded_cols..r * padded_cols + cols];
        // SAFETY (both calls): AVX2 verified by `x86::level` above;
        // slices are equal-length by construction.
        #[cfg(target_arch = "x86_64")]
        let max_abs = if avx2 {
            unsafe { max_abs_avx2(row) }
        } else {
            row.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
        };
        #[cfg(not(target_arch = "x86_64"))]
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        out_scale.push(scale);
        // One division per row, then multiplies: `x * (1/scale)` is the
        // same fixed IEEE expression on every platform, so codes stay
        // bit-reproducible. Rounding is ties-to-even — the mode the
        // vector rounding instruction implements — so the AVX2 and
        // scalar quantizers emit identical codes.
        let inv = 1.0 / scale;
        #[cfg(target_arch = "x86_64")]
        if avx2 {
            unsafe { quantize_row_avx2(row, inv, out_row) };
            continue;
        }
        for (o, &x) in out_row.iter_mut().zip(row) {
            *o = (x * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
    }
}

/// Maximum absolute value of `row` (exact — comparisons don't round, so
/// lane order is irrelevant and the result matches the scalar fold).
///
/// # Safety
/// Caller must verify AVX2 at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn max_abs_avx2(row: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = row.len();
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut m = _mm256_setzero_ps();
    let mut k = 0usize;
    while k + 8 <= n {
        let v = _mm256_and_ps(_mm256_loadu_ps(row.as_ptr().add(k)), abs_mask);
        m = _mm256_max_ps(m, v);
        k += 8;
    }
    let hi = _mm256_extractf128_ps(m, 1);
    let lo = _mm256_castps256_ps128(m);
    let s = _mm_max_ps(hi, lo);
    let s = _mm_max_ps(s, _mm_shuffle_ps(s, s, 0b01_00_11_10));
    let s = _mm_max_ps(s, _mm_shuffle_ps(s, s, 0b00_00_00_01));
    let mut best = _mm_cvtss_f32(s);
    while k < n {
        best = best.max(row.get_unchecked(k).abs());
        k += 1;
    }
    best
}

/// AVX2 row quantizer: 8 lanes of `x * inv`, round-to-nearest-even,
/// clamp, then pack to i8. Bit-identical to the scalar ties-even loop.
///
/// # Safety
/// Caller must verify AVX2 at runtime; `out.len() == row.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_avx2(row: &[f32], inv: f32, out: &mut [i8]) {
    use std::arch::x86_64::*;
    let n = row.len();
    let invv = _mm256_set1_ps(inv);
    let lo = _mm256_set1_ps(-127.0);
    let hi = _mm256_set1_ps(127.0);
    let mut k = 0usize;
    while k + 8 <= n {
        let x = _mm256_loadu_ps(row.as_ptr().add(k));
        let scaled = _mm256_round_ps(
            _mm256_mul_ps(x, invv),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        let clamped = _mm256_min_ps(_mm256_max_ps(scaled, lo), hi);
        let q = _mm256_cvtps_epi32(clamped);
        // 8 i32 -> 8 i8: pack through i16 (values are within ±127, so
        // the saturating packs are exact).
        let q16 = _mm256_packs_epi32(q, _mm256_setzero_si256());
        let q16 = _mm256_permute4x64_epi64(q16, 0b11_01_10_00);
        let q8 = _mm_packs_epi16(_mm256_castsi256_si128(q16), _mm_setzero_si128());
        let bytes = _mm_cvtsi128_si64(q8) as u64;
        std::ptr::copy_nonoverlapping(
            bytes.to_le_bytes().as_ptr() as *const i8,
            out.as_mut_ptr().add(k),
            8,
        );
        k += 8;
    }
    while k < n {
        *out.get_unchecked_mut(k) = (row.get_unchecked(k) * inv)
            .round_ties_even()
            .clamp(-127.0, 127.0) as i8;
        k += 1;
    }
}

/// Round `k` up to the 16-lane SIMD step the i8 kernels consume.
pub fn padded_width(k: usize) -> usize {
    k.div_ceil(16) * 16
}

/// Integer dot product `sum(a[i] * b[i])` with an i32 accumulator.
/// Dispatches to the AVX2 kernel when available; both paths return the
/// same i32 by integer associativity.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if crate::matrix::x86::level() >= crate::matrix::x86::LVL_AVX2 {
        // SAFETY: AVX2 verified by `x86::level`; equal slice lengths
        // checked above.
        return unsafe { dot_i8_avx2(a, b) };
    }
    dot_i8_portable(a, b)
}

/// Portable reference dot: plain scalar loop.
pub fn dot_i8_portable(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum::<i32>()
}

/// AVX2 dot: sign-extend 16 i8 lanes to i16, `madd` adjacent pairs into
/// 8 i32 lanes, accumulate, then horizontal-sum. Exactly equal to the
/// portable loop because i32 addition is associative.
///
/// # Safety
/// Caller must verify AVX2 at runtime and pass equal-length slices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm256_setzero_si256();
    let mut k = 0usize;
    while k + 16 <= n {
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(k) as *const __m128i));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(k) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
        k += 16;
    }
    let mut sum = hsum_i32_avx2(acc);
    while k < n {
        sum += *ap.add(k) as i32 * *bp.add(k) as i32;
        k += 1;
    }
    sum
}

/// Sum the 8 i32 lanes of `v` (lane grouping is free to vary — integer
/// addition associates, so any reduction tree gives the same i32).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum_i32_avx2(v: std::arch::x86_64::__m256i) -> i32 {
    use std::arch::x86_64::*;
    let hi = _mm256_extracti128_si256(v, 1);
    let lo = _mm256_castsi256_si128(v);
    let s = _mm_add_epi32(hi, lo);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

/// `out[i][j] = dot(a row i, bt row j)` — an i8 GEMM against a
/// pre-transposed `[m x k]` right operand, writing i32 accumulators.
/// Both operands are k-contiguous so every dot streams both rows.
/// Dispatches to a 4-column AVX2 micro-kernel when available; both paths
/// produce identical i32 sums by integer associativity.
pub fn gemm_i8(a: &[i8], bt: &[i8], out: &mut [i32], n: usize, k: usize, m: usize) {
    assert!(a.len() >= n * k && bt.len() >= m * k && out.len() >= n * m);
    #[cfg(target_arch = "x86_64")]
    if crate::matrix::x86::level() >= crate::matrix::x86::LVL_AVX2 {
        // SAFETY: AVX2 verified by `x86::level`; bounds asserted above.
        return unsafe { gemm_i8_avx2(a, bt, out, n, k, m) };
    }
    for i in 0..n {
        let ar = &a[i * k..(i + 1) * k];
        let or = &mut out[i * m..(i + 1) * m];
        for (j, o) in or.iter_mut().enumerate() {
            *o = dot_i8(ar, &bt[j * k..(j + 1) * k]);
        }
    }
}

/// AVX2 GEMM micro-kernel: 4 output columns per pass share each 16-lane
/// activation load, quartering the dominant load traffic of the
/// dot-at-a-time loop. Accumulation is i32 throughout, so the result is
/// bit-identical to the portable path regardless of blocking.
///
/// # Safety
/// Caller must verify AVX2 at runtime and the bounds `a >= n*k`,
/// `bt >= m*k`, `out >= n*m`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_i8_avx2(a: &[i8], bt: &[i8], out: &mut [i32], n: usize, k: usize, m: usize) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = bt.as_ptr();
    for i in 0..n {
        let ar = ap.add(i * k);
        let or = &mut out[i * m..(i + 1) * m];
        let mut j = 0usize;
        while j + 4 <= m {
            let b0 = bp.add(j * k);
            let b1 = bp.add((j + 1) * k);
            let b2 = bp.add((j + 2) * k);
            let b3 = bp.add((j + 3) * k);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut p = 0usize;
            while p + 16 <= k {
                let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(ar.add(p) as *const __m128i));
                let b0v = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.add(p) as *const __m128i));
                let b1v = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.add(p) as *const __m128i));
                let b2v = _mm256_cvtepi8_epi16(_mm_loadu_si128(b2.add(p) as *const __m128i));
                let b3v = _mm256_cvtepi8_epi16(_mm_loadu_si128(b3.add(p) as *const __m128i));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, b0v));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(av, b1v));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(av, b2v));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(av, b3v));
                p += 16;
            }
            // One hadd tree reduces all four accumulators at once:
            // t2 = [s0..s3 of lanes 0-3 | s0..s3 of lanes 4-7], one
            // cross-lane add finishes all four sums (integer adds — any
            // grouping gives the same i32s).
            let t0 = _mm256_hadd_epi32(acc0, acc1);
            let t1 = _mm256_hadd_epi32(acc2, acc3);
            let t2 = _mm256_hadd_epi32(t0, t1);
            let mut sums =
                _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256(t2, 1));
            while p < k {
                let x = *ar.add(p) as i32;
                let tail = _mm_mullo_epi32(
                    _mm_set1_epi32(x),
                    _mm_set_epi32(
                        *b3.add(p) as i32,
                        *b2.add(p) as i32,
                        *b1.add(p) as i32,
                        *b0.add(p) as i32,
                    ),
                );
                sums = _mm_add_epi32(sums, tail);
                p += 1;
            }
            _mm_storeu_si128(or.as_mut_ptr().add(j) as *mut __m128i, sums);
            j += 4;
        }
        while j < m {
            or[j] = dot_i8_avx2(
                std::slice::from_raw_parts(ar, k),
                std::slice::from_raw_parts(bp.add(j * k), k),
            );
            j += 1;
        }
    }
}

// Rational tanh approximation (the widely used 13/6-degree float
// fit): tanh(x) ≈ x·P(x²)/Q(x²) on the clamped range, max absolute
// error ~1e-7 — three orders of magnitude below the int8 path's 1/127
// activation grid. libm's `tanhf` costs ~12 ns/element and dominates
// the f32 forward; this costs ~1 ns and vectorizes.
const TANH_CLAMP: f32 = 7.905_311;
const TANH_ALPHA: [f32; 7] = [
    -2.760_768_4e-16,
    2.000_188e-13,
    -8.604_672e-11,
    5.122_297_2e-8,
    1.485_722_4e-5,
    6.372_619_3e-4,
    4.893_525_5e-3,
];
const TANH_BETA: [f32; 4] = [1.198_258_4e-6, 1.185_347_1e-4, 2.268_434_7e-3, 4.893_525e-3];

/// Scalar fast tanh: fixed clamp → Horner → divide sequence, exactly
/// the operation order of the AVX2 variant, so both produce identical
/// bits on every platform.
#[inline]
pub fn tanh_fast(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let mut p = TANH_ALPHA[0];
    for &a in &TANH_ALPHA[1..] {
        p = p * x2 + a;
    }
    let mut q = TANH_BETA[0];
    for &b in &TANH_BETA[1..] {
        q = q * x2 + b;
    }
    (x * p) / q
}

/// In-place fast tanh over a matrix — the quantized path's activation.
/// The f32 serving path keeps libm `tanh` (its bytes are pinned); the
/// quantized path trades that for this approximation, which is noise
/// relative to its own quantization error.
pub fn tanh_assign_fast(m: &mut Matrix) {
    #[cfg(target_arch = "x86_64")]
    if crate::matrix::x86::level() >= crate::matrix::x86::LVL_AVX2 {
        // SAFETY: AVX2 verified by `x86::level`.
        unsafe { tanh_fast_avx2(&mut m.data) };
        return;
    }
    for v in &mut m.data {
        *v = tanh_fast(*v);
    }
}

/// # Safety
/// Caller must verify AVX2 at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tanh_fast_avx2(data: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = data.len();
    let clamp_hi = _mm256_set1_ps(TANH_CLAMP);
    let clamp_lo = _mm256_set1_ps(-TANH_CLAMP);
    let mut k = 0usize;
    while k + 8 <= n {
        let x = _mm256_loadu_ps(data.as_ptr().add(k));
        // Identical sequence to `tanh_fast`: clamp, Horner in x² with
        // separate mul/add (no FMA), one divide.
        let x = _mm256_min_ps(_mm256_max_ps(x, clamp_lo), clamp_hi);
        let x2 = _mm256_mul_ps(x, x);
        let mut p = _mm256_set1_ps(TANH_ALPHA[0]);
        for &a in &TANH_ALPHA[1..] {
            p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(a));
        }
        let mut q = _mm256_set1_ps(TANH_BETA[0]);
        for &b in &TANH_BETA[1..] {
            q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(b));
        }
        let r = _mm256_div_ps(_mm256_mul_ps(x, p), q);
        _mm256_storeu_ps(data.as_mut_ptr().add(k), r);
        k += 8;
    }
    while k < n {
        let v = data.get_unchecked_mut(k);
        *v = tanh_fast(*v);
        k += 1;
    }
}

/// Dequantize one output row: `out[j] = acc[j] as f32 * sx *
/// w_scale[j] + bias[j]`. The AVX2 variant issues the same
/// cvt/mul/mul/add sequence per element (no FMA), so its bits match
/// this loop exactly.
fn dequant_row(acc: &[i32], sx: f32, w_scale: &[f32], bias: &[f32], out: &mut [f32]) {
    for (j, o) in out.iter_mut().enumerate() {
        *o = acc[j] as f32 * sx * w_scale[j] + bias[j];
    }
}

/// # Safety
/// Caller must verify AVX2 at runtime and pass equal-length slices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequant_row_avx2(acc: &[i32], sx: f32, w_scale: &[f32], bias: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let sxv = _mm256_set1_ps(sx);
    let mut j = 0usize;
    while j + 8 <= n {
        let a = _mm256_cvtepi32_ps(_mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i));
        let v = _mm256_add_ps(
            _mm256_mul_ps(
                _mm256_mul_ps(a, sxv),
                _mm256_loadu_ps(w_scale.as_ptr().add(j)),
            ),
            _mm256_loadu_ps(bias.as_ptr().add(j)),
        );
        _mm256_storeu_ps(out.as_mut_ptr().add(j), v);
        j += 8;
    }
    while j < n {
        *out.get_unchecked_mut(j) =
            *acc.get_unchecked(j) as f32 * sx * *w_scale.get_unchecked(j) + *bias.get_unchecked(j);
        j += 1;
    }
}

/// Reusable staging buffers for dynamic activation quantization and the
/// integer accumulators of one layer forward.
#[derive(Debug, Default)]
pub struct QuantScratch {
    x_q: Vec<i8>,
    x_scale: Vec<f32>,
    acc: Vec<i32>,
}

impl QuantScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantize `x` per-row into the internal buffers, each row padded to
    /// `padded_cols` so the kernels run tail-free.
    fn quantize(&mut self, x: &Matrix, padded_cols: usize) {
        quantize_rows_i8_padded(
            &x.data,
            x.rows,
            x.cols,
            padded_cols,
            &mut self.x_q,
            &mut self.x_scale,
        );
    }
}

/// An int8-quantized [`Linear`]: weights stored transposed `[out x in]`
/// with one symmetric scale per output channel, bias kept f32. Rows are
/// zero-padded to the SIMD step (a padded lane multiplies two zero codes,
/// adding exactly 0 to the i32 sum).
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    w_q: Vec<i8>,
    w_scale: Vec<f32>,
    bias: Vec<f32>,
    in_dim: usize,
    padded_in: usize,
    out_dim: usize,
}

impl QuantizedLinear {
    /// Quantize a trained layer. The `[in x out]` weight is transposed so
    /// each output channel's weights are contiguous for the dot kernel.
    pub fn from_linear(l: &Linear) -> Self {
        let w = l.w.0.borrow();
        let b = l.b.0.borrow();
        let (in_dim, out_dim) = (w.value.rows, w.value.cols);
        let mut wt = vec![0.0f32; in_dim * out_dim];
        for i in 0..in_dim {
            for j in 0..out_dim {
                wt[j * in_dim + i] = w.value.get(i, j);
            }
        }
        let padded_in = padded_width(in_dim);
        let mut w_q = Vec::new();
        let mut w_scale = Vec::new();
        quantize_rows_i8_padded(&wt, out_dim, in_dim, padded_in, &mut w_q, &mut w_scale);
        Self {
            w_q,
            w_scale,
            bias: b.value.data.clone(),
            in_dim,
            padded_in,
            out_dim,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.out_dim
    }

    /// Quantized forward into a preallocated `out` (`x.rows x out_dim`):
    /// per-row activation quantization, integer GEMM, then dequantize at
    /// the boundary as `(acc as f32) * x_scale * w_scale + bias`.
    pub fn forward_infer(&self, x: &Matrix, q: &mut QuantScratch, out: &mut Matrix) {
        assert_eq!(x.cols, self.in_dim, "quantized forward width mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (x.rows, self.out_dim),
            "quantized forward out shape mismatch"
        );
        q.quantize(x, self.padded_in);
        // `gemm_i8` overwrites every accumulator, so grow-only: no zero
        // fill of memory that is about to be written anyway.
        let need = x.rows * self.out_dim;
        if q.acc.len() < need {
            q.acc.resize(need, 0);
        }
        gemm_i8(
            &q.x_q,
            &self.w_q,
            &mut q.acc[..need],
            x.rows,
            self.padded_in,
            self.out_dim,
        );
        #[cfg(target_arch = "x86_64")]
        let avx2 = crate::matrix::x86::level() >= crate::matrix::x86::LVL_AVX2;
        for i in 0..x.rows {
            let sx = q.x_scale[i];
            let ar = &q.acc[i * self.out_dim..(i + 1) * self.out_dim];
            let or = out.row_mut(i);
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                // SAFETY: AVX2 verified above; rows share the layer's
                // out_dim length.
                unsafe { dequant_row_avx2(ar, sx, &self.w_scale, &self.bias, or) };
                continue;
            }
            dequant_row(ar, sx, &self.w_scale, &self.bias, or);
        }
    }
}

/// An int8-quantized [`Mlp`]: quantized layers with the original f32
/// activations applied between them (activations re-quantize per row at
/// the next layer boundary).
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLinear>,
    activation: Activation,
}

impl QuantizedMlp {
    /// Quantize every layer of a trained MLP.
    pub fn from_mlp(m: &Mlp) -> Self {
        Self {
            layers: m.layers.iter().map(QuantizedLinear::from_linear).collect(),
            activation: m.activation,
        }
    }

    /// Quantized twin of [`Mlp::forward_infer`]: intermediates ping-pong
    /// through `scratch`, the returned matrix comes from the arena —
    /// `put` it back when done.
    pub fn forward_infer(
        &self,
        x: &Matrix,
        q: &mut QuantScratch,
        scratch: &mut InferenceScratch,
    ) -> Matrix {
        let last = self.layers.len() - 1;
        let mut cur: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let xin = cur.as_ref().unwrap_or(x);
            let mut out = scratch.take(xin.rows, layer.output_dim());
            layer.forward_infer(xin, q, &mut out);
            if i != last {
                // Tanh takes the fast rational form on the quantized
                // path; other activations are already cheap.
                match self.activation {
                    Activation::Tanh => tanh_assign_fast(&mut out),
                    other => other.apply_infer(&mut out),
                }
            }
            if let Some(prev) = cur.take() {
                scratch.put(prev);
            }
            cur = Some(out);
        }
        cur.expect("Mlp has at least one layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Deterministic i8 fill covering the full range including ±127.
    fn filled_i8(n: usize, salt: u32) -> Vec<i8> {
        let mut x = salt.wrapping_mul(2654435761).wrapping_add(7);
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                ((x >> 16) % 255) as i32 as i8
            })
            .collect()
    }

    #[test]
    fn portable_dot_matches_naive() {
        let a: Vec<i8> = vec![1, -2, 3, 127, -127];
        let b: Vec<i8> = vec![-1, 2, 3, 127, 127];
        assert_eq!(dot_i8_portable(&a, &b), -1 - 4 + 9 + 127 * 127 - 127 * 127);
    }

    #[test]
    fn dispatched_dot_is_exactly_portable() {
        // Lengths straddling the 16-wide AVX2 step and its scalar tail.
        for &n in &[0usize, 1, 15, 16, 17, 31, 32, 100, 257, 1024] {
            let a = filled_i8(n, n as u32);
            let b = filled_i8(n, 1000 + n as u32);
            assert_eq!(dot_i8(&a, &b), dot_i8_portable(&a, &b), "len {n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_dot_is_exactly_portable() {
        if crate::matrix::x86::level() < crate::matrix::x86::LVL_AVX2 {
            return; // no AVX2 on this machine; the dispatch test covers it
        }
        for &n in &[1usize, 16, 17, 48, 129, 333] {
            let a = filled_i8(n, 7 + n as u32);
            let b = filled_i8(n, 9000 + n as u32);
            // SAFETY: AVX2 presence checked above.
            let simd = unsafe { dot_i8_avx2(&a, &b) };
            assert_eq!(simd, dot_i8_portable(&a, &b), "len {n}");
        }
    }

    #[test]
    fn gemm_matches_per_element_dots() {
        let (n, k, m) = (5, 33, 7);
        let a = filled_i8(n * k, 1);
        let bt = filled_i8(m * k, 2);
        let mut out = vec![0i32; n * m];
        gemm_i8(&a, &bt, &mut out, n, k, m);
        for i in 0..n {
            for j in 0..m {
                assert_eq!(
                    out[i * m + j],
                    dot_i8_portable(&a[i * k..(i + 1) * k], &bt[j * k..(j + 1) * k])
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_quantizer_matches_scalar_ties_even() {
        if crate::matrix::x86::level() < crate::matrix::x86::LVL_AVX2 {
            return;
        }
        // Widths straddling the 8-lane step, values landing exactly on
        // .5 boundaries where ties-even and ties-away disagree.
        for &n in &[1usize, 7, 8, 9, 23, 64] {
            let row: Vec<f32> = (0..n)
                .map(|i| (i as f32 - n as f32 / 2.0) * 0.5 + if i % 3 == 0 { 0.5 } else { 0.0 })
                .collect();
            let inv = 0.731f32;
            let scalar: Vec<i8> = row
                .iter()
                .map(|&x| (x * inv).round_ties_even().clamp(-127.0, 127.0) as i8)
                .collect();
            let mut simd = vec![0i8; n];
            // SAFETY: AVX2 presence checked above; equal lengths.
            unsafe { quantize_row_avx2(&row, inv, &mut simd) };
            assert_eq!(simd, scalar, "width {n}");
        }
    }

    #[test]
    fn fast_tanh_tracks_libm_and_simd_matches_scalar() {
        // Accuracy: within 1e-6 of libm across the active range and
        // saturated beyond the clamp — noise next to the 1/127 grid.
        let xs: Vec<f32> = (-1000..=1000).map(|i| i as f32 * 0.01).collect();
        for &x in &xs {
            assert!(
                (tanh_fast(x) - x.tanh()).abs() <= 1e-6,
                "x {x}: {} vs {}",
                tanh_fast(x),
                x.tanh()
            );
        }
        assert!((tanh_fast(50.0) - 1.0).abs() < 1e-6);
        assert!((tanh_fast(-50.0) + 1.0).abs() < 1e-6);
        // Bit-identity between the dispatched matrix path and the scalar
        // expression (on AVX2 machines this exercises the SIMD variant,
        // including its 8-lane/tail split).
        let mut m = Matrix::from_vec(1, xs.len(), xs.clone());
        tanh_assign_fast(&mut m);
        for (&x, &y) in xs.iter().zip(&m.data) {
            assert_eq!(y.to_bits(), tanh_fast(x).to_bits(), "x {x}");
        }
    }

    #[test]
    fn padding_never_changes_a_dot() {
        // Zero pad codes multiply to zero products: the padded dot is the
        // exact i32 the unpadded dot produces, at every ragged width.
        for &k in &[1usize, 7, 17, 28, 48] {
            let data: Vec<f32> = (0..2 * k).map(|i| ((i % 19) as f32 - 9.0) * 0.3).collect();
            let kp = padded_width(k);
            assert_eq!(kp % 16, 0);
            assert!(kp >= k && kp < k + 16);
            let (mut q, mut s) = (Vec::new(), Vec::new());
            let (mut qp, mut sp) = (Vec::new(), Vec::new());
            quantize_rows_i8(&data, 2, k, &mut q, &mut s);
            quantize_rows_i8_padded(&data, 2, k, kp, &mut qp, &mut sp);
            assert_eq!(s, sp, "k {k}: padding changed scales");
            assert_eq!(
                dot_i8(&q[..k], &q[k..]),
                dot_i8(&qp[..kp], &qp[kp..]),
                "k {k}: padded dot diverged"
            );
        }
    }

    #[test]
    fn gemm_dispatch_matches_portable_dots_at_ragged_shapes() {
        // Shapes exercising the 4-column micro-kernel's j tail (m % 4)
        // and k tails on both sides of the 16-lane step.
        for &(n, k, m) in &[
            (3usize, 16usize, 4usize),
            (5, 28, 24),
            (2, 48, 1),
            (7, 15, 6),
        ] {
            let a = filled_i8(n * k, 3);
            let bt = filled_i8(m * k, 4);
            let mut out = vec![0i32; n * m];
            gemm_i8(&a, &bt, &mut out, n, k, m);
            for i in 0..n {
                for j in 0..m {
                    assert_eq!(
                        out[i * m + j],
                        dot_i8_portable(&a[i * k..(i + 1) * k], &bt[j * k..(j + 1) * k]),
                        "({n},{k},{m}) at [{i},{j}]"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_rows_round_trips_representable_values() {
        // Values that are exact multiples of max_abs/127 survive the
        // round trip exactly.
        let data = vec![127.0f32, -127.0, 0.0, 64.0];
        let mut q = Vec::new();
        let mut s = Vec::new();
        quantize_rows_i8(&data, 1, 4, &mut q, &mut s);
        assert_eq!(s, vec![1.0]);
        assert_eq!(q, vec![127, -127, 0, 64]);
    }

    #[test]
    fn all_zero_row_gets_unit_scale_and_zero_codes() {
        let data = vec![0.0f32; 6];
        let mut q = Vec::new();
        let mut s = Vec::new();
        quantize_rows_i8(&data, 2, 3, &mut q, &mut s);
        assert_eq!(s, vec![1.0, 1.0]);
        assert!(q.iter().all(|&x| x == 0));
    }

    #[test]
    fn quantized_linear_tracks_f32_linear() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let l = Linear::new(24, 16, &mut set, &mut rng);
        let ql = QuantizedLinear::from_linear(&l);
        assert_eq!((ql.input_dim(), ql.output_dim()), (24, 16));

        let x = Matrix::from_vec(
            5,
            24,
            (0..5 * 24).map(|i| ((i % 17) as f32 - 8.0) * 0.1).collect(),
        );
        let mut exact = Matrix::zeros(5, 16);
        l.forward_infer(&x, &mut exact);
        let mut quant = Matrix::zeros(5, 16);
        let mut qs = QuantScratch::new();
        ql.forward_infer(&x, &mut qs, &mut quant);

        // Two 1/127 relative quantization grids (weights + activations)
        // compose to roughly 2% of the row magnitude.
        for r in 0..5 {
            let bound = x.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            for (e, q) in exact.row(r).iter().zip(quant.row(r)) {
                assert!(
                    (e - q).abs() <= 0.05 * bound.max(1.0),
                    "row {r}: exact {e} vs quant {q}"
                );
            }
        }
    }

    #[test]
    fn quantized_forward_is_deterministic_across_calls() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mlp = Mlp::new(&[10, 12, 4], Activation::Tanh, &mut set, &mut rng);
        let qmlp = QuantizedMlp::from_mlp(&mlp);
        let x = Matrix::from_vec(
            3,
            10,
            (0..30).map(|i| ((i % 13) as f32 - 6.0) * 0.25).collect(),
        );
        let mut scratch = InferenceScratch::new();
        let mut qs = QuantScratch::new();
        let a = qmlp.forward_infer(&x, &mut qs, &mut scratch);
        let first = a.data.clone();
        scratch.put(a);
        let b = qmlp.forward_infer(&x, &mut qs, &mut scratch);
        assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "repeat quantized forward changed bits"
        );
        scratch.put(b);
    }

    #[test]
    fn quantized_mlp_tracks_f32_mlp() {
        let mut set = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mlp = Mlp::new(&[8, 16, 8, 1], Activation::Relu, &mut set, &mut rng);
        let qmlp = QuantizedMlp::from_mlp(&mlp);
        let x = Matrix::from_vec(
            4,
            8,
            (0..32).map(|i| ((i % 11) as f32 - 5.0) * 0.2).collect(),
        );
        let mut scratch = InferenceScratch::new();
        let mut qs = QuantScratch::new();
        let exact = mlp.forward_infer(&x, &mut scratch);
        let quant = qmlp.forward_infer(&x, &mut qs, &mut scratch);
        for (e, q) in exact.data.iter().zip(&quant.data) {
            assert!((e - q).abs() <= 0.1, "exact {e} vs quant {q}");
        }
        scratch.put(exact);
        scratch.put(quant);
    }
}
