//! The gradient tape.
//!
//! Forward ops append nodes (so the node list is already in topological
//! order); [`Tape::backward`] walks it in reverse accumulating gradients.
//! Parameter gradients are accumulated directly into the shared
//! [`Param`] storage, so a training step is: build tape → `backward` →
//! `Adam::step` → drop tape.

use crate::matrix::Matrix;
use crate::param::Param;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Constant input (no gradient flows out).
    Leaf,
    /// Trainable parameter; backward accumulates into the `Param`.
    Param(Param),
    /// `C = A @ B`.
    MatMul(usize, usize),
    /// `C = A @ B^T`.
    MatMulT(usize, usize),
    /// Elementwise sum of same-shape matrices.
    Add(usize, usize),
    /// `[n×d] + [1×d]` broadcast add (bias).
    AddRow(usize, usize),
    /// Elementwise product.
    Mul(usize, usize),
    /// Scalar scale.
    Scale(usize, f32),
    /// tanh.
    Tanh(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// max(0, x).
    Relu(usize),
    /// Horizontal concatenation.
    ConcatCols(Vec<usize>),
    /// Column slice `[start, start+len)`.
    SliceCols(usize, usize),
    /// Output row i = input row idx[i].
    GatherRows(usize, Vec<u32>),
    /// Output row s = mean of input rows with seg[i] == s (empty: zero).
    SegmentMean(usize, Vec<u32>, Vec<f32>),
    /// Sum of all entries, 1x1.
    SumAll(usize),
    /// Row-wise softmax.
    RowSoftmax(usize),
    /// Σ_i a_i·logσ(z_i) + (1-a_i)·log(1-σ(z_i)) over a column vector of
    /// logits; 1x1 output.
    BernoulliLogProb(usize, Vec<f32>),
    /// Σ_i log softmax(z_i)[a_i] over rows of logits; 1x1 output.
    CategoricalLogProb(usize, Vec<u32>),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A gradient tape. Build with forward ops, differentiate with
/// [`Tape::backward`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after `backward` (None if it never received one).
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Constant input.
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf)
    }

    /// Trainable parameter (gradient accumulates into `p`).
    pub fn param(&mut self, p: &Param) -> Var {
        let value = p.value();
        self.push(value, Op::Param(p.clone()))
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// `a @ b^T`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul_t(&self.nodes[b.0].value);
        self.push(v, Op::MatMulT(a.0, b.0))
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!((ma.rows, ma.cols), (mb.rows, mb.cols), "add shape mismatch");
        let mut v = ma.clone();
        v.add_assign(mb);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// `[n×d] + [1×d]` broadcast (bias add).
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[bias.0].value);
        assert_eq!(mb.rows, 1, "bias must be a row vector");
        assert_eq!(ma.cols, mb.cols, "bias width mismatch");
        let mut v = ma.clone();
        for r in 0..v.rows {
            for c in 0..v.cols {
                v.data[r * v.cols + c] += mb.data[c];
            }
        }
        self.push(v, Op::AddRow(a.0, bias.0))
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ma, mb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!((ma.rows, ma.cols), (mb.rows, mb.cols), "mul shape mismatch");
        let data = ma.data.iter().zip(&mb.data).map(|(&x, &y)| x * y).collect();
        let v = Matrix::from_vec(ma.rows, ma.cols, data);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// `a * s` for scalar `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        v.scale_assign(s);
        self.push(v, Op::Scale(a.0, s))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let data = m.data.iter().map(|&x| x.tanh()).collect();
        let v = Matrix::from_vec(m.rows, m.cols, data);
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let data = m.data.iter().map(|&x| sigmoid(x)).collect();
        let v = Matrix::from_vec(m.rows, m.cols, data);
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let data = m.data.iter().map(|&x| x.max(0.0)).collect();
        let v = Matrix::from_vec(m.rows, m.cols, data);
        self.push(v, Op::Relu(a.0))
    }

    /// Concatenate matrices horizontally (equal row counts).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty());
        let rows = self.nodes[parts[0].0].value.rows;
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols).sum();
        let mut v = Matrix::zeros(rows, total);
        let mut off = 0usize;
        for p in parts {
            let m = &self.nodes[p.0].value;
            assert_eq!(m.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                v.data[r * total + off..r * total + off + m.cols].copy_from_slice(m.row(r));
            }
            off += m.cols;
        }
        self.push(v, Op::ConcatCols(parts.iter().map(|p| p.0).collect()))
    }

    /// Columns `[start, start+len)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let m = &self.nodes[a.0].value;
        assert!(start + len <= m.cols, "slice out of range");
        let mut v = Matrix::zeros(m.rows, len);
        for r in 0..m.rows {
            v.row_mut(r).copy_from_slice(&m.row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols(a.0, start))
    }

    /// Output row `i` = input row `idx[i]` (rows may repeat).
    pub fn gather_rows(&mut self, a: Var, idx: &[u32]) -> Var {
        let m = &self.nodes[a.0].value;
        let mut v = Matrix::zeros(idx.len(), m.cols);
        for (i, &r) in idx.iter().enumerate() {
            v.row_mut(i).copy_from_slice(m.row(r as usize));
        }
        self.push(v, Op::GatherRows(a.0, idx.to_vec()))
    }

    /// Segment mean: output row `s` is the mean of input rows `i` with
    /// `seg[i] == s`; segments with no members produce a zero row.
    pub fn segment_mean(&mut self, a: Var, seg: &[u32], num_segments: usize) -> Var {
        let m = &self.nodes[a.0].value;
        assert_eq!(seg.len(), m.rows, "one segment id per row");
        let mut counts = vec![0.0f32; num_segments];
        for &s in seg {
            counts[s as usize] += 1.0;
        }
        let mut v = Matrix::zeros(num_segments, m.cols);
        for (i, &s) in seg.iter().enumerate() {
            let row = m.row(i);
            let out = v.row_mut(s as usize);
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > 0.0 {
                for x in v.row_mut(s) {
                    *x /= c;
                }
            }
        }
        self.push(v, Op::SegmentMean(a.0, seg.to_vec(), counts))
    }

    /// Sum of all entries (1x1).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s: f32 = self.nodes[a.0].value.data.iter().sum();
        self.push(Matrix::scalar(s), Op::SumAll(a.0))
    }

    /// Row-wise softmax.
    pub fn row_softmax(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let mut v = Matrix::zeros(m.rows, m.cols);
        for r in 0..m.rows {
            let row = m.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &x) in v.row_mut(r).iter_mut().zip(row) {
                *o = (x - max).exp();
                denom += *o;
            }
            for o in v.row_mut(r) {
                *o /= denom;
            }
        }
        self.push(v, Op::RowSoftmax(a.0))
    }

    /// Log-likelihood of Bernoulli `actions` (0.0/1.0) under a column of
    /// `logits`: `Σ a·logσ(z) + (1-a)·log(1-σ(z))`, numerically stable.
    pub fn bernoulli_log_prob(&mut self, logits: Var, actions: &[f32]) -> Var {
        let m = &self.nodes[logits.0].value;
        assert_eq!(m.cols, 1, "logits must be a column vector");
        assert_eq!(m.rows, actions.len(), "one action per logit");
        let mut ll = 0.0f64;
        for (&z, &a) in m.data.iter().zip(actions) {
            // a·logσ(z) + (1-a)·log(1-σ(z)) = a·z - softplus(z)
            ll += (a as f64) * (z as f64) - softplus(z as f64);
        }
        self.push(
            Matrix::scalar(ll as f32),
            Op::BernoulliLogProb(logits.0, actions.to_vec()),
        )
    }

    /// Log-likelihood of categorical `actions` under rows of `logits`:
    /// `Σ_i log softmax(z_i)[a_i]`.
    pub fn categorical_log_prob(&mut self, logits: Var, actions: &[u32]) -> Var {
        let m = &self.nodes[logits.0].value;
        assert_eq!(m.rows, actions.len(), "one action per row");
        let mut ll = 0.0f64;
        for (r, &a) in actions.iter().enumerate() {
            let row = m.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
            let lse: f64 = max
                + row
                    .iter()
                    .map(|&x| ((x as f64) - max).exp())
                    .sum::<f64>()
                    .ln();
            ll += row[a as usize] as f64 - lse;
        }
        self.push(
            Matrix::scalar(ll as f32),
            Op::CategoricalLogProb(logits.0, actions.to_vec()),
        )
    }

    fn accumulate(&mut self, idx: usize, g: Matrix) {
        match &mut self.nodes[idx].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run reverse-mode accumulation from `loss` (must be 1x1) with seed
    /// gradient 1. Parameter gradients accumulate into their `Param`s.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            (self.nodes[loss.0].value.rows, self.nodes[loss.0].value.cols),
            (1, 1),
            "backward seed must be scalar"
        );
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            // Re-insert so callers can inspect grads afterwards.
            self.nodes[i].grad = Some(g.clone());

            // Split borrows: clone small things we need from the node.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Param(p) => {
                    p.0.borrow_mut().grad.add_assign(&g);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = g.matmul_t(&self.nodes[b].value);
                    let db = self.nodes[a].value.t_matmul(&g);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::MatMulT(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = g.matmul(&self.nodes[b].value);
                    let db = g.t_matmul(&self.nodes[a].value);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                Op::AddRow(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    let mut db = Matrix::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            db.data[c] += g.data[r * g.cols + c];
                        }
                    }
                    self.accumulate(a, g);
                    self.accumulate(bias, db);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = {
                        let mb = &self.nodes[b].value;
                        let data = g.data.iter().zip(&mb.data).map(|(&x, &y)| x * y).collect();
                        Matrix::from_vec(g.rows, g.cols, data)
                    };
                    let db = {
                        let ma = &self.nodes[a].value;
                        let data = g.data.iter().zip(&ma.data).map(|(&x, &y)| x * y).collect();
                        Matrix::from_vec(g.rows, g.cols, data)
                    };
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    let mut da = g;
                    da.scale_assign(s);
                    self.accumulate(a, da);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let data = g
                        .data
                        .iter()
                        .zip(&y.data)
                        .map(|(&gg, &yy)| gg * (1.0 - yy * yy))
                        .collect();
                    let da = Matrix::from_vec(g.rows, g.cols, data);
                    self.accumulate(a, da);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let data = g
                        .data
                        .iter()
                        .zip(&y.data)
                        .map(|(&gg, &yy)| gg * yy * (1.0 - yy))
                        .collect();
                    let da = Matrix::from_vec(g.rows, g.cols, data);
                    self.accumulate(a, da);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let data = g
                        .data
                        .iter()
                        .zip(&y.data)
                        .map(|(&gg, &yy)| if yy > 0.0 { gg } else { 0.0 })
                        .collect();
                    let da = Matrix::from_vec(g.rows, g.cols, data);
                    self.accumulate(a, da);
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let mut off = 0usize;
                    for p in parts {
                        let cols = self.nodes[p].value.cols;
                        let mut dp = Matrix::zeros(g.rows, cols);
                        for r in 0..g.rows {
                            dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + cols]);
                        }
                        off += cols;
                        self.accumulate(p, dp);
                    }
                }
                Op::SliceCols(a, start) => {
                    let (a, start) = (*a, *start);
                    let src_cols = self.nodes[a].value.cols;
                    let mut da = Matrix::zeros(g.rows, src_cols);
                    for r in 0..g.rows {
                        da.row_mut(r)[start..start + g.cols].copy_from_slice(g.row(r));
                    }
                    self.accumulate(a, da);
                }
                Op::GatherRows(a, idx) => {
                    let a = *a;
                    let idx = idx.clone();
                    let src_rows = self.nodes[a].value.rows;
                    let mut da = Matrix::zeros(src_rows, g.cols);
                    for (i2, &r) in idx.iter().enumerate() {
                        let dst = da.row_mut(r as usize);
                        for (o, &x) in dst.iter_mut().zip(g.row(i2)) {
                            *o += x;
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::SegmentMean(a, seg, counts) => {
                    let a = *a;
                    let (seg, counts) = (seg.clone(), counts.clone());
                    let src_rows = self.nodes[a].value.rows;
                    let mut da = Matrix::zeros(src_rows, g.cols);
                    for (i2, &s) in seg.iter().enumerate() {
                        let c = counts[s as usize];
                        if c == 0.0 {
                            continue;
                        }
                        let grow = g.row(s as usize);
                        let drow = da.row_mut(i2);
                        for (o, &x) in drow.iter_mut().zip(grow) {
                            *o += x / c;
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::SumAll(a) => {
                    let a = *a;
                    let (r, c) = (self.nodes[a].value.rows, self.nodes[a].value.cols);
                    let da = Matrix::from_vec(r, c, vec![g.item(); r * c]);
                    self.accumulate(a, da);
                }
                Op::RowSoftmax(a) => {
                    let a = *a;
                    let y = self.nodes[i].value.clone();
                    let mut da = Matrix::zeros(g.rows, g.cols);
                    for r in 0..g.rows {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&gg, &yy)| gg * yy)
                            .sum();
                        for c in 0..g.cols {
                            da.data[r * g.cols + c] = (g.get(r, c) - dot) * y.get(r, c);
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::BernoulliLogProb(a, actions) => {
                    let a = *a;
                    let actions = actions.clone();
                    let z = &self.nodes[a].value;
                    let gi = g.item();
                    let data = z
                        .data
                        .iter()
                        .zip(&actions)
                        .map(|(&zz, &aa)| gi * (aa - sigmoid(zz)))
                        .collect();
                    let da = Matrix::from_vec(z.rows, 1, data);
                    self.accumulate(a, da);
                }
                Op::CategoricalLogProb(a, actions) => {
                    let a = *a;
                    let actions = actions.clone();
                    let z = self.nodes[a].value.clone();
                    let gi = g.item();
                    let mut da = Matrix::zeros(z.rows, z.cols);
                    for (r, &act) in actions.iter().enumerate() {
                        let row = z.row(r);
                        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let denom: f32 = row.iter().map(|&x| (x - max).exp()).sum();
                        for c in 0..z.cols {
                            let p = (z.get(r, c) - max).exp() / denom;
                            let onehot = if c as u32 == act { 1.0 } else { 0.0 };
                            da.set(r, c, gi * (onehot - p));
                        }
                    }
                    self.accumulate(a, da);
                }
            }
        }
    }
}

use crate::matrix::stable_sigmoid as sigmoid;

#[inline]
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    /// Finite-difference check: perturb each entry of `p`, recompute the
    /// scalar loss with `f`, compare to the recorded gradient.
    fn grad_check<F: Fn(&mut Tape) -> Var>(p: &Param, f: F, tol: f32) {
        p.zero_grad();
        let mut tape = Tape::new();
        let loss = f(&mut tape);
        tape.backward(loss);
        let analytic = p.0.borrow().grad.clone();

        let eps = 1e-3f32;
        let base = p.value();
        for i in 0..base.data.len() {
            let mut up = base.clone();
            up.data[i] += eps;
            p.set_value(up);
            let mut t1 = Tape::new();
            let l1 = f(&mut t1);
            let f1 = t1.value(l1).item();

            let mut down = base.clone();
            down.data[i] -= eps;
            p.set_value(down);
            let mut t2 = Tape::new();
            let l2 = f(&mut t2);
            let f2 = t2.value(l2).item();

            p.set_value(base.clone());
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn matmul_grad() {
        let p = Param::new(Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]));
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]);
        grad_check(
            &p,
            |t| {
                let xv = t.input(x.clone());
                let pv = t.param(&p);
                let y = t.matmul(xv, pv);
                let y = t.tanh(y);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn matmul_t_grad() {
        let p = Param::new(Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]));
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]);
        grad_check(
            &p,
            |t| {
                let xv = t.input(x.clone());
                let pv = t.param(&p);
                let y = t.matmul_t(xv, pv);
                let y = t.sigmoid(y);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn add_row_and_mul_grad() {
        let p = Param::new(Matrix::from_vec(1, 3, vec![0.5, -0.5, 0.25]));
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        grad_check(
            &p,
            |t| {
                let xv = t.input(x.clone());
                let pv = t.param(&p);
                let y = t.add_row(xv, pv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            1e-2,
        );
    }

    #[test]
    fn concat_slice_relu_grad() {
        let p = Param::new(Matrix::from_vec(2, 2, vec![0.3, -0.7, 0.2, 0.9]));
        grad_check(
            &p,
            |t| {
                let pv = t.param(&p);
                let both = t.concat_cols(&[pv, pv]);
                let sl = t.slice_cols(both, 1, 2);
                let r = t.relu(sl);
                t.sum_all(r)
            },
            1e-2,
        );
    }

    #[test]
    fn gather_segment_grad() {
        let p = Param::new(Matrix::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]));
        let idx = vec![0u32, 2, 1, 0];
        let seg = vec![0u32, 1, 1, 0];
        grad_check(
            &p,
            |t| {
                let pv = t.param(&p);
                let gathered = t.gather_rows(pv, &idx);
                let pooled = t.segment_mean(gathered, &seg, 3); // seg 2 empty
                let th = t.tanh(pooled);
                t.sum_all(th)
            },
            1e-2,
        );
    }

    #[test]
    fn bernoulli_log_prob_grad() {
        let p = Param::new(Matrix::from_vec(4, 1, vec![0.5, -1.0, 2.0, 0.0]));
        let actions = vec![1.0f32, 0.0, 1.0, 0.0];
        grad_check(
            &p,
            |t| {
                let z = t.param(&p);
                t.bernoulli_log_prob(z, &actions)
            },
            1e-2,
        );
    }

    #[test]
    fn bernoulli_log_prob_value() {
        let mut t = Tape::new();
        let z = t.input(Matrix::from_vec(2, 1, vec![0.0, 0.0]));
        let ll = t.bernoulli_log_prob(z, &[1.0, 0.0]);
        // log 0.5 + log 0.5
        assert!((t.value(ll).item() - (0.5f32.ln() * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn categorical_log_prob_grad() {
        let p = Param::new(Matrix::from_vec(2, 3, vec![0.5, -1.0, 0.3, 2.0, 0.1, -0.2]));
        let actions = vec![2u32, 0];
        grad_check(
            &p,
            |t| {
                let z = t.param(&p);
                t.categorical_log_prob(z, &actions)
            },
            1e-2,
        );
    }

    #[test]
    fn categorical_log_prob_value() {
        let mut t = Tape::new();
        let z = t.input(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let ll = t.categorical_log_prob(z, &[1]);
        assert!((t.value(ll).item() - 0.5f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn row_softmax_grad() {
        let p = Param::new(Matrix::from_vec(2, 3, vec![0.5, -1.0, 0.3, 2.0, 0.1, -0.2]));
        let w = Matrix::from_vec(3, 1, vec![1.0, -2.0, 0.5]);
        grad_check(
            &p,
            |t| {
                let z = t.param(&p);
                let sm = t.row_softmax(z);
                let wv = t.input(w.clone());
                let y = t.matmul(sm, wv);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let z = t.input(Matrix::from_vec(2, 3, vec![5.0, 1.0, -3.0, 0.0, 0.0, 0.0]));
        let sm = t.row_softmax(z);
        for r in 0..2 {
            let s: f32 = t.value(sm).row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_accumulates_on_reuse() {
        // Using the same param twice must double its gradient.
        let p = Param::new(Matrix::scalar(3.0));
        p.zero_grad();
        let mut t = Tape::new();
        let a = t.param(&p);
        let b = t.param(&p);
        let s = t.add(a, b);
        let loss = t.sum_all(s);
        t.backward(loss);
        assert_eq!(p.0.borrow().grad.item(), 2.0);
    }

    #[test]
    fn scale_grad() {
        let p = Param::new(Matrix::scalar(2.0));
        grad_check(
            &p,
            |t| {
                let a = t.param(&p);
                let b = t.scale(a, -3.5);
                t.sum_all(b)
            },
            1e-3,
        );
    }

    #[test]
    fn deep_chain_grad() {
        // GNN-like composition: two rounds of gather + segment mean + matmul.
        let p = Param::new(Matrix::from_vec(2, 2, vec![0.2, -0.1, 0.3, 0.05]));
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.5, -0.5, 1.5, 0.7, -0.2]);
        let idx = vec![0u32, 1, 2, 0];
        let seg = vec![1u32, 2, 0, 2];
        grad_check(
            &p,
            |t| {
                let xv = t.input(x.clone());
                let w = t.param(&p);
                let mut h = xv;
                for _ in 0..2 {
                    let msgs = t.gather_rows(h, &idx);
                    let msgs = t.matmul(msgs, w);
                    let msgs = t.tanh(msgs);
                    let pooled = t.segment_mean(msgs, &seg, 3);
                    h = t.add(h, pooled);
                }
                t.sum_all(h)
            },
            2e-2,
        );
    }
}
