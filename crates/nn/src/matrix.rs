//! Dense row-major `f32` matrices.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data, `rows * cols` entries.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// 1x1 matrix.
    pub fn scalar(x: f32) -> Self {
        Self::from_vec(1, 1, vec![x])
    }

    /// The single element of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!((self.rows, self.cols), (1, 1), "item() requires 1x1");
        self.data[0]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, x: f32) {
        self.data[r * self.cols + c] = x;
    }

    /// `self @ other` with an ikj loop (cache-friendly row-major kernel).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * m..(i + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            for j in 0..m {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                out.data[i * m + j] = acc;
            }
        }
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Fill with zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        // a^T @ b computed by hand: a^T is 2x3.
        let at = Matrix::from_vec(2, 3, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(a.t_matmul(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let bt = Matrix::from_vec(
            3,
            4,
            vec![0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(a.matmul_t(&b), a.matmul(&bt));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn norm_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![6.0, 8.0]);
    }
}
