//! Dense row-major `f32` matrices.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data, `rows * cols` entries.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// 1x1 matrix.
    pub fn scalar(x: f32) -> Self {
        Self::from_vec(1, 1, vec![x])
    }

    /// The single element of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!((self.rows, self.cols), (1, 1), "item() requires 1x1");
        self.data[0]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, x: f32) {
        self.data[r * self.cols + c] = x;
    }

    /// `self @ other` with a blocked ikj kernel (row-major, tiled over
    /// `i`/`k` with a 4-wide unrolled inner axpy). The `k` tiles advance
    /// in ascending order, so every output element accumulates its terms
    /// in exactly the sequence of the untiled ikj loop — the result is
    /// bitwise identical, just faster.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for i0 in (0..n).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(n);
            for k0 in (0..k).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(k);
                for i in i0..i1 {
                    let a_row = &self.data[i * k..(i + 1) * k];
                    let out_row = &mut out.data[i * m..(i + 1) * m];
                    for (kk, &a) in a_row.iter().enumerate().take(k1).skip(k0) {
                        if a == 0.0 {
                            continue;
                        }
                        axpy(out_row, a, &other.data[kk * m..(kk + 1) * m]);
                    }
                }
            }
        }
        out
    }

    /// `self^T @ other` without materialising the transpose. Tiled over
    /// `k`/`i` with the same ascending-`k` accumulation order as the
    /// untiled kij loop (bitwise-identical results).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i0 in (0..n).step_by(BLOCK) {
                let i1 = (i0 + BLOCK).min(n);
                for kk in k0..k1 {
                    let a_row = self.row(kk);
                    let b_row = other.row(kk);
                    for (i, &a) in a_row.iter().enumerate().take(i1).skip(i0) {
                        if a == 0.0 {
                            continue;
                        }
                        axpy(&mut out.data[i * m..(i + 1) * m], a, b_row);
                    }
                }
            }
        }
        out
    }

    /// `self @ other^T` without materialising the transpose. Tiled over
    /// `i`/`j` so a block of `other` rows stays cache-hot; each dot
    /// product keeps a single accumulator over ascending `k` (the 4-wide
    /// unroll only removes loop overhead, it does not reassociate), so
    /// the result is bitwise identical to the naive loop.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(n, m);
        for i0 in (0..n).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(n);
            for j0 in (0..m).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(m);
                for i in i0..i1 {
                    let a_row = &self.data[i * k..(i + 1) * k];
                    for j in j0..j1 {
                        out.data[i * m + j] = dot(a_row, other.row(j));
                    }
                }
            }
        }
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Fill with zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Cache-block edge for the matmul kernels: 64×64 f32 tiles (16 KiB per
/// operand) fit in L1 alongside the streamed operand.
const BLOCK: usize = 64;

/// `out[j] += a * b[j]`, unrolled 4-wide. Element order is unchanged —
/// each `out[j]` receives exactly one add — so this is bitwise
/// equivalent to the scalar loop, minus most of the bounds checks.
#[inline]
fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
    let n = out.len();
    let n4 = n / 4 * 4;
    let (o4, o_tail) = out.split_at_mut(n4);
    let (b4, b_tail) = b[..n].split_at(n4);
    for (oc, bc) in o4.chunks_exact_mut(4).zip(b4.chunks_exact(4)) {
        oc[0] += a * bc[0];
        oc[1] += a * bc[1];
        oc[2] += a * bc[2];
        oc[3] += a * bc[3];
    }
    for (o, &bb) in o_tail.iter_mut().zip(b_tail) {
        *o += a * bb;
    }
}

/// Sequential-order dot product, unrolled 4-wide into a single
/// accumulator (no partial-sum reassociation, so the float result
/// matches the naive `for kk { acc += a[kk] * b[kk] }` loop exactly).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n4 = a.len() / 4 * 4;
    let (a4, a_tail) = a.split_at(n4);
    let (b4, b_tail) = b[..a.len()].split_at(n4);
    let mut acc = 0.0f32;
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc += ac[0] * bc[0];
        acc += ac[1] * bc[1];
        acc += ac[2] * bc[2];
        acc += ac[3] * bc[3];
    }
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        // a^T @ b computed by hand: a^T is 2x3.
        let at = Matrix::from_vec(2, 3, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(a.t_matmul(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let bt = Matrix::from_vec(
            3,
            4,
            vec![0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(a.matmul_t(&b), a.matmul(&bt));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Deterministic pseudo-random fill with exact zeros sprinkled in to
    /// exercise the kernels' zero-skip path.
    fn filled(rows: usize, cols: usize, salt: u32) -> Matrix {
        let mut x = salt.wrapping_mul(2654435761).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                if x.is_multiple_of(7) {
                    0.0
                } else {
                    ((x >> 8) % 2003) as f32 / 1001.0 - 1.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// The pre-blocking ikj kernel, kept as the bitwise reference.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (n, k, m) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for kk in 0..k {
                let av = a.get(i, kk);
                if av == 0.0 {
                    continue;
                }
                for j in 0..m {
                    out.data[i * m + j] += av * b.get(kk, j);
                }
            }
        }
        out
    }

    fn naive_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (k, n, m) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(n, m);
        for kk in 0..k {
            for i in 0..n {
                let av = a.get(kk, i);
                if av == 0.0 {
                    continue;
                }
                for j in 0..m {
                    out.data[i * m + j] += av * b.get(kk, j);
                }
            }
        }
        out
    }

    fn naive_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        let (n, k, m) = (a.rows, a.cols, b.rows);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(j, kk);
                }
                out.data[i * m + j] = acc;
            }
        }
        out
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols));
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    /// Shapes straddling the 64-wide block edge and the 4-wide unroll
    /// tail in every dimension.
    const SHAPES: [(usize, usize, usize); 5] = [
        (1, 1, 1),
        (3, 5, 2),
        (17, 64, 9),
        (65, 63, 66),
        (70, 129, 67),
    ];

    #[test]
    fn blocked_matmul_is_bitwise_identical_to_naive() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(n, k, si as u32);
            let b = filled(k, m, 100 + si as u32);
            assert_bits_eq(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn blocked_t_matmul_is_bitwise_identical_to_naive() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(k, n, 200 + si as u32);
            let b = filled(k, m, 300 + si as u32);
            assert_bits_eq(&a.t_matmul(&b), &naive_t_matmul(&a, &b));
        }
    }

    #[test]
    fn blocked_matmul_t_is_bitwise_identical_to_naive() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(n, k, 400 + si as u32);
            let b = filled(m, k, 500 + si as u32);
            assert_bits_eq(&a.matmul_t(&b), &naive_matmul_t(&a, &b));
        }
    }

    #[test]
    fn norm_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![6.0, 8.0]);
    }
}
